//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the API subset used by this workspace's `benches/`:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery it takes `sample_size` timed
//! samples after one warm-up and reports min/mean per-iteration wall-clock
//! times (plus throughput when configured) on stdout.  Good enough to compare
//! engines and catch order-of-magnitude regressions in CI; swap the workspace
//! manifest back to the real crate for publication-grade statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Times closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the measured closure, filled by `iter`.
    last_mean: Duration,
    last_min: Duration,
}

impl Bencher {
    /// Measure `f`, running one warm-up call followed by the configured number
    /// of timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total / self.samples.max(1) as u32;
        self.last_min = min;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mut line = format!(
            "{}/{}: mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            self.name, id.id, b.last_mean, b.last_min, self.sample_size
        );
        if let Some(tp) = self.throughput {
            let secs = b.last_mean.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:.3e} elem/s", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  {:.3e} B/s", n as f64 / secs));
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Finish the group (reporting is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("id", 5), &5u32, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            });
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        // one warm-up + two samples
        assert_eq!(runs, 3);
    }
}
