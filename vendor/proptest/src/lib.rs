//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the proptest API used by this workspace: the
//! [`proptest!`] macro, `any::<T>()`, range strategies, tuple strategies,
//! [`Strategy::prop_map`], `collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.  Differences from the real crate:
//!
//! * **no shrinking** — failing inputs are reported as generated;
//! * cases per property default to 256 (`PROPTEST_CASES` env overrides);
//! * generation is deterministic per test (seeded from the property name), so
//!   failures are reproducible run-to-run.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// Strategy combinators and the [`Strategy`] trait.
pub mod strategy {
    use super::SmallRng;

    /// A source of generated values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for types with a canonical "any value" distribution.
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// Types usable with [`any`](crate::arbitrary::any).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: core::marker::PhantomData,
            }
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`](strategy::Arbitrary) trait.
pub mod arbitrary {
    use super::strategy::{Any, Arbitrary};

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::SmallRng;

    /// Strategy for `Vec<T>` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generate vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rand::Rng::gen_range(rng, self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration (the subset of the real crate's
/// `ProptestConfig` this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: default_cases(),
        }
    }
}

/// Default number of cases per property (`PROPTEST_CASES` env overrides).
fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The test runner driving property executions.
pub mod test_runner {
    use super::SmallRng;
    use rand::SeedableRng;

    pub use super::ProptestConfig;

    /// Number of cases to run per property by default.
    pub fn cases() -> u32 {
        super::default_cases()
    }

    /// Drive one property: `body` receives an RNG, generates its inputs, and
    /// returns a human-readable description of the case plus the verdict
    /// (`Ok(())`, or `Err(reason)` from a `prop_assert!`).
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut SmallRng) -> (String, Result<(), String>),
    {
        run_with(&ProptestConfig::default(), name, &mut body);
    }

    /// [`run`] with an explicit configuration.
    pub fn run_with<F>(config: &ProptestConfig, name: &str, body: &mut F)
    where
        F: FnMut(&mut SmallRng) -> (String, Result<(), String>),
    {
        // Deterministic per-property seed so failures reproduce.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..config.cases {
            let (desc, verdict) = body(&mut rng);
            if let Err(reason) = verdict {
                panic!(
                    "property `{name}` failed at case {case}\n  inputs: {desc}\n  {reason}\n  \
                     (minimal-failure shrinking is not implemented in this offline stand-in)"
                );
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property; on failure the current case is
/// reported with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                ::core::stringify!($left), ::core::stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({})\n    left: {:?}\n   right: {:?}",
                ::core::stringify!($left), ::core::stringify!($right),
                ::std::format!($($fmt)*), l, r
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                ::core::stringify!($left), ::core::stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` ({})\n    both: {:?}",
                ::core::stringify!($left), ::core::stringify!($right),
                ::std::format!($($fmt)*), l
            ));
        }
    }};
}

/// Discard the current case if the assumption does not hold.
///
/// The offline stand-in simply skips the case (it does not retry with fresh
/// inputs, and does not count discards against a maximum).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run_with(
                    &__proptest_config,
                    ::core::stringify!($name),
                    &mut $crate::__proptest_body!($($arg in $strat),* => $body),
                );
            }
        )*
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    ::core::stringify!($name),
                    $crate::__proptest_body!($($arg in $strat),* => $body),
                );
            }
        )*
    };
}

/// Internal: the per-case closure shared by both [`proptest!`] arms.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($($arg:ident in $strat:expr),* => $body:block) => {
        |__proptest_rng: &mut rand::rngs::SmallRng| {
            $(
                let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
            )*
            let __proptest_desc = {
                let mut s = ::std::string::String::new();
                $(
                    s.push_str(::core::concat!(::core::stringify!($arg), " = "));
                    s.push_str(&::std::format!("{:?}, ", $arg));
                )*
                s
            };
            let __proptest_verdict: ::core::result::Result<(), ::std::string::String> =
                (|| { $body ::core::result::Result::Ok(()) })();
            (__proptest_desc, __proptest_verdict)
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -2i32..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0u32..10, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(p.0 % 2 == 0);
            prop_assert!(p.0 < 20);
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    mod configured {
        use crate::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(7))]

            #[test]
            fn config_arm_limits_cases(x in 0u32..1000) {
                // Cheap marker property; the case count is checked below by
                // construction (the runner would fail if the macro ignored the
                // config and this property were expensive).
                prop_assert!(x < 1000);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run("always_fails", |_rng| {
            (
                "x = 1".to_string(),
                Err("assertion failed: false".to_string()),
            )
        });
    }
}
