//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: thin facades over `std::sync` primitives exposing the (non-poisoning)
//! `parking_lot` API subset used by this workspace.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot` API (no lock poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does not
    /// poison it (matching `parking_lot` semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock with the `parking_lot` API (no lock poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
