//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates.io mirror, so this vendored
//! crate provides exactly the subset of the `rand` 0.8 API that the workspace
//! uses: the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and
//! [`rngs::SmallRng`], implemented as xoshiro256++ seeded via SplitMix64 (the
//! same construction the real `SmallRng` uses on 64-bit platforms).
//!
//! It is intentionally API-compatible so that swapping back to the real crate
//! is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Values samplable uniformly from an RNG's raw output (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` via bitmask rejection (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "cannot sample from an empty range");
    if bound == 1 {
        return 0;
    }
    let mask = u64::MAX >> (bound - 1).leading_zeros();
    loop {
        let x = rng.next_u64() & mask;
        if x < bound {
            return x;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64/u128-width range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * <f64 as Standard>::sample(rng)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard (uniform) distribution of its type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64 expansion, as in the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 output function.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    ///
    /// Mirrors `rand::rngs::SmallRng` (which is xoshiro256++ on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing.  Feeding the
        /// returned array back through [`Self::from_state`] reproduces the
        /// generator exactly (same stream from the same position).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstruct a generator from raw state words previously returned
        /// by [`Self::state`].  The all-zero state (a fixed point of xoshiro,
        /// unreachable from any seeded generator) is nudged to the same
        /// constants `from_seed` uses, so round-trips are always well-formed.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return SmallRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ],
                };
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: i64 = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        let expected = draws as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expected).abs() < 0.05 * expected,
                "bucket {i} has {c} draws, expected ~{expected}"
            );
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream_exactly() {
        let mut a = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn from_state_nudges_the_all_zero_fixed_point() {
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.state(), [0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 zero bytes after filling would be astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
