//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, providing the `crossbeam::thread::scope` API over the standard
//! library's scoped threads (`std::thread::scope`, stable since Rust 1.63).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API shape.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope in which threads borrowing local data can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.  As in `crossbeam`, the closure
        /// receives the scope itself so that it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` inside a scope; all spawned threads are joined before this
    /// returns.  Returns `Err` (with the panic payload) if any spawned thread
    /// panicked, matching `crossbeam::thread::scope` semantics.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panics_are_reported_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawns_work() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
