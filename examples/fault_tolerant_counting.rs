//! Stability in action: the stable hybrid protocols keep working even when the fast
//! path is sabotaged.  We corrupt one agent's error flag by hand (standing in for
//! any failure the error-detection stage would catch) and watch the population
//! switch over to the always-correct backup protocol.
//!
//! ```text
//! cargo run --release --example fault_tolerant_counting -- 400
//! ```

use popcount::{all_exact, StableCountExact};
use ppsim::Simulator;

fn main() -> Result<(), ppsim::SimError> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);

    // A clean run: the fast path validates and outputs n quickly.
    let mut clean = Simulator::new(StableCountExact::default(), n, 7)?;
    let t_clean = clean
        .run_until(
            move |s| all_exact(s.protocol(), s.states(), n),
            (n * 20) as u64,
            50_000_000_000,
        )
        .expect_converged("stable CountExact (clean)");
    let fallbacks = clean.states().iter().filter(|a| a.error).count();
    println!("clean run:     all {n} agents output {n} after {t_clean:>12} interactions ({fallbacks} agents on the backup path)");

    // A sabotaged run: raise an error flag by hand; the flag spreads by one-way
    // epidemics and every agent falls back to the exact backup protocol.
    let mut faulty = Simulator::new(StableCountExact::default(), n, 7)?;
    faulty.states_mut()[0].error = true;
    let t_faulty = faulty
        .run_until(
            move |s| all_exact(s.protocol(), s.states(), n),
            (n * 20) as u64,
            50_000_000_000,
        )
        .expect_converged("stable CountExact (faulty)");
    let on_backup = faulty.states().iter().filter(|a| a.error).count();
    println!("sabotaged run: all {n} agents output {n} after {t_faulty:>12} interactions ({on_backup} agents on the backup path)");
    println!("\nthe hybrid protocol trades speed for certainty: the backup is Θ(n² log n) but never wrong");
    Ok(())
}
