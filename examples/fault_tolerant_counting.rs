//! The adversarial fault model in action (`ppsim::adversary`): a
//! self-stabilizing protocol is started from an adversarial configuration,
//! corrupted and silenced mid-run on a deterministic fault plan, and probed
//! for its recovery time — then a worst-case-init search hunts for the
//! starting configuration that takes longest to recover from.
//!
//! ```text
//! cargo run --release --example fault_tolerant_counting -- 64
//! ```
//!
//! The workload is the ported self-stabilizing ranking protocol
//! ([`SelfStabRanking`]): whatever configuration the adversary picks, the
//! collision rule drives the population back to one agent per rank.

use ppproto::SelfStabRanking;
use ppsim::{
    AdversarialRun, CorruptionTarget, Engine, FaultEvent, FaultKind, FaultPlan, InitStrategy,
    WorstCaseSearch,
};

fn main() -> Result<(), ppsim::SimError> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let protocol = SelfStabRanking::new(n);
    let states = 2 * n; // (rank, coin) pairs
    let cap = 2_000 * (n as u64) * (n as u64);
    let check = ((n * n) as u64 / 8).max(64);
    let ranked =
        move |s: &ppsim::DenseSimulator<SelfStabRanking>| s.with_counts(|c| protocol.is_ranked(c));

    // 1. An adversarial start plus two transient faults mid-run: pile 25%
    //    of the agents onto one rank at t₁, then silence an eighth of the
    //    population for a window at t₂.  The plan is deterministic — the
    //    same (seed, plan) pair replays the identical trajectory, faults
    //    included, on every engine.
    let t1 = 8 * (n as u64) * (n as u64);
    let t2 = 16 * (n as u64) * (n as u64);
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: t1,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 4).max(1),
                target: CorruptionTarget::State(2), // everyone to (rank 1, heads)
            },
        },
        FaultEvent {
            at: t2,
            kind: FaultKind::Silence {
                agents: (n as u64 / 8).max(1),
                window: 4 * (n as u64) * (n as u64),
            },
        },
    ])?;
    let mut run = AdversarialRun::new(
        Engine::Hybrid,
        protocol,
        n,
        7,
        InitStrategy::SeededArbitrary { states, seed: 99 },
        plan,
    )?;
    let outcome = run.run_until(ranked, check, cap)?;
    assert!(outcome.converged(), "ranking failed to self-stabilize");
    println!(
        "arbitrary init, n = {n}: ranked after {} interactions",
        outcome.interactions().unwrap_or(u64::MAX)
    );
    for (event, record) in run.plan().events().iter().zip(run.records()) {
        let what = match event.kind {
            FaultKind::Corrupt { agents, .. } => format!("corrupted {agents} agents"),
            FaultKind::Silence { agents, window } => {
                format!("silenced {agents} agents for {window} interactions")
            }
        };
        println!(
            "  fault at {:>9}: {what:<42} recovered in {} interactions",
            record.injected_at,
            record
                .recovery_time()
                .map_or_else(|| "∞".into(), |t| t.to_string()),
        );
    }

    // 2. The worst-case-init search: random restarts plus coordinate-wise
    //    perturbation, maximizing the observed reconvergence time.  The
    //    protocol is self-stabilizing, so even the worst configuration the
    //    adversary finds still recovers — it just takes longer.
    let search = WorstCaseSearch {
        states,
        restarts: 3,
        steps: 8,
        move_fraction: 0.25,
        seed: 1234,
        // Maximin objective: the worst init must be slow on two independent
        // schedules, not a fluke of one.
        eval_seeds: 2,
    };
    let report = search.run(Engine::Batched, &protocol, n, ranked, check, cap)?;
    let occupied = report.configuration.iter().filter(|&&c| c > 0).count();
    println!(
        "worst init found ({} candidates evaluated): {} occupied states, ranked after {} interactions",
        report.evaluations,
        occupied,
        report
            .interactions
            .map_or_else(|| "∞ (budget exhausted)".into(), |t| t.to_string()),
    );
    println!("\nself-stabilization is unconditional: every start recovers, the adversary only picks how long it takes");
    Ok(())
}
