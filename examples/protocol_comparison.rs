//! Compare every counter in the crate on the same population: the Θ(n²) uniform
//! baseline from the paper's introduction, the slow backup protocols, and the two
//! fast protocols of the paper.  This reproduces the "who wins, and by how much"
//! story of the paper in one table.
//!
//! ```text
//! cargo run --release --example protocol_comparison -- 600
//! ```

use popcount::{
    all_counted, all_estimated, all_output_n, Approximate, ApproximateBackup, ApproximateParams,
    CountExact, CountExactParams, ExactBackup, TokenMergingCounter,
};
use ppsim::{Protocol, Simulator};

fn run<P, F>(name: &str, protocol: P, n: usize, seed: u64, done: F, rows: &mut Vec<(String, u64)>)
where
    P: Protocol,
    F: Fn(&Simulator<P>) -> bool,
{
    let mut sim = Simulator::new(protocol, n, seed).expect("population is large enough");
    let outcome = sim.run_until(|s| done(s), (n * 10) as u64, 100_000_000_000);
    rows.push((name.to_owned(), outcome.expect_converged(name)));
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);
    let mut rows = Vec::new();

    run(
        "token-merging baseline (Θ(n²), exact)",
        TokenMergingCounter::new(),
        n,
        1,
        move |s| all_output_n(s.states(), n),
        &mut rows,
    );
    run(
        "approximate backup (Appendix C.1, ⌊log n⌋)",
        ApproximateBackup::new(),
        n,
        2,
        move |s| {
            let expected = (n as f64).log2().floor() as i32;
            s.states().iter().all(|st| st.k_max == expected)
        },
        &mut rows,
    );
    run(
        "exact backup (Appendix C.2, exact)",
        ExactBackup::new(),
        n,
        3,
        move |s| s.states().iter().all(|st| st.count == n as u64),
        &mut rows,
    );
    run(
        "Approximate (Theorem 1, ⌊log n⌋/⌈log n⌉)",
        Approximate::new(ApproximateParams::default()),
        n,
        4,
        |s| all_estimated(s.states()),
        &mut rows,
    );
    run(
        "CountExact (Theorem 2, exact)",
        CountExact::new(CountExactParams::default()),
        n,
        5,
        move |s| all_counted(s.protocol(), s.states(), n),
        &mut rows,
    );

    let n_f = n as f64;
    println!("population size n = {n}\n");
    println!(
        "{:<46} {:>14} {:>12} {:>12}",
        "protocol", "interactions", "per n²", "per n·log2 n"
    );
    for (name, t) in &rows {
        println!(
            "{:<46} {:>14} {:>12.2} {:>12.1}",
            name,
            t,
            *t as f64 / (n_f * n_f),
            *t as f64 / (n_f * n_f.log2())
        );
    }
    println!("\nthe paper's protocols replace the quadratic interaction bill with an (almost) linear one");
}
