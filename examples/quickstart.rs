//! Quickstart: count a population exactly with `CountExact` (Theorem 2).
//!
//! ```text
//! cargo run --release --example quickstart -- 2000
//! ```

use popcount::{all_counted, CountExact, CountExactParams};
use ppsim::Simulator;

fn main() -> Result<(), ppsim::SimError> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    println!("simulating CountExact on a population of {n} anonymous agents (seed {seed})");
    let protocol = CountExact::new(CountExactParams::default());
    let mut sim = Simulator::new(protocol, n, seed)?;

    let outcome = sim.run_until(
        move |s| all_counted(s.protocol(), s.states(), n),
        (n * 20) as u64,
        20_000_000_000,
    );

    let interactions = outcome.expect_converged("CountExact");
    let n_f = n as f64;
    println!("every agent outputs {n} after {interactions} interactions");
    println!(
        "that is {:.1} × n·log2(n)  (Theorem 2: O(n log n) interactions)",
        interactions as f64 / (n_f * n_f.log2())
    );
    Ok(())
}
