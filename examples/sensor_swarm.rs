//! A motivating scenario from the population-protocol literature: a swarm of
//! resource-limited sensors wants to know (approximately) how many of them were
//! deployed, without identifiers, coordinators or knowledge of `n` — exactly the
//! setting of protocol `Approximate` (Theorem 1).
//!
//! The example deploys several swarm sizes and reports the estimate `2^k` each
//! swarm converges to, alongside the true size.
//!
//! ```text
//! cargo run --release --example sensor_swarm
//! ```

use popcount::{all_estimated, valid_estimates, Approximate, ApproximateParams};
use ppsim::Simulator;

fn main() -> Result<(), ppsim::SimError> {
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>10}",
        "sensors", "estimate k", "2^k", "interactions", "valid?"
    );
    for (i, &n) in [300usize, 700, 1500, 3000].iter().enumerate() {
        let protocol = Approximate::new(ApproximateParams::default());
        let mut sim = Simulator::new(protocol, n, 1_000 + i as u64)?;
        let outcome = sim.run_until(
            |s| all_estimated(s.states()),
            (n * 20) as u64,
            20_000_000_000,
        );
        let interactions = outcome.expect_converged("Approximate");
        let estimate = sim
            .output_stats()
            .unanimous()
            .cloned()
            .flatten()
            .expect("all agents agree once the broadcast stage finished");
        let (floor, ceil) = valid_estimates(n);
        println!(
            "{:>8} {:>10} {:>12} {:>14} {:>10}",
            n,
            estimate,
            1u64 << estimate.max(0) as u32,
            interactions,
            if estimate == floor || estimate == ceil {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!("\neach swarm outputs ⌊log2 n⌋ or ⌈log2 n⌉ — a constant-factor size estimate");
    Ok(())
}
