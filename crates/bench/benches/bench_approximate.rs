//! E07/E08 — Theorem 1: protocol Approximate end to end.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popcount::{all_estimated, Approximate, ApproximateParams};
use ppsim::Simulator;

fn bench_approximate(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate_theorem1");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto = Approximate::new(ApproximateParams::default());
                let mut sim = Simulator::new(proto, n, seed).unwrap();
                sim.run_until(|s| all_estimated(s.states()), (n * 20) as u64, u64::MAX)
                    .expect_converged("approximate")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approximate);
criterion_main!(benches);
