//! E06 — Lemma 8: powers-of-two load balancing from a single source.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppproto::PowersOfTwoLoadBalancing;
use ppsim::Simulator;

fn bench_load_balancing(c: &mut Criterion) {
    let mut group = c.benchmark_group("po2_load_balancing_lemma8");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let kappa = ((0.75 * n as f64).log2().floor()) as i32;
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(PowersOfTwoLoadBalancing::new(), n, seed).unwrap();
                sim.states_mut()[0] = kappa;
                sim.run_until(|s| s.states().iter().all(|&k| k <= 0), n as u64, u64::MAX)
                    .expect_converged("load balancing")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_balancing);
criterion_main!(benches);
