//! Sequential vs batched vs sharded vs hybrid engine: epidemic convergence
//! wall-clock at growing population sizes and shard counts.
//!
//! The protocols are the *same transition system* (the dense epidemic run via
//! `DenseAdapter` on the sequential engine), so differences are pure engine
//! overhead — for the hybrid engine, the cost of its occupancy monitor on a
//! workload that never migrates.  `bench_batched_json` (a `ppbench` binary)
//! emits the same comparisons as machine-readable `BENCH_batched.json` /
//! `BENCH_sharded.json` / `BENCH_hybrid.ci.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popcount::{ApproximateParams, CountExactParams, DenseApproximate, DenseCountExact};
use ppproto::DenseEpidemic;
use ppsim::{
    BatchedSimulator, DenseAdapter, HybridSimulator, ShardedBatchedSimulator, ShardedConfig,
    Simulator,
};

fn epidemic_batched(n: usize, seed: u64) -> u64 {
    let mut sim = BatchedSimulator::new(DenseEpidemic, n, seed).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.run_until(|s| s.count_of(1) == s.population(), n as u64, u64::MAX >> 1)
        .expect_converged("batched epidemic")
}

fn epidemic_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(DenseAdapter(DenseEpidemic), n, seed).unwrap();
    sim.states_mut()[0] = 1;
    sim.run_until(
        |s| s.states().iter().all(|&x| x == 1),
        n as u64,
        u64::MAX >> 1,
    )
    .expect_converged("sequential epidemic")
}

fn epidemic_sharded(n: usize, seed: u64, shards: usize, threads: usize) -> u64 {
    let config = ShardedConfig {
        shards,
        threads,
        epoch_interactions: None,
    };
    let mut sim = ShardedBatchedSimulator::new(DenseEpidemic, n, seed, config).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.run_until(|s| s.count_of(1) == s.population(), n as u64, u64::MAX >> 1)
        .expect_converged("sharded epidemic")
}

fn epidemic_hybrid(n: usize, seed: u64) -> u64 {
    let mut sim = HybridSimulator::new(DenseEpidemic, n, seed).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    let t = sim
        .run_until(|s| s.count_of(1) == s.population(), n as u64, u64::MAX >> 1)
        .expect_converged("hybrid epidemic");
    assert!(
        sim.switches().is_empty(),
        "a two-state epidemic stays dense"
    );
    t
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_epidemic_convergence");
    group.sample_size(5);
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter(|| epidemic_batched(n, 1));
        });
        // Hybrid vs batched on the same workload isolates the occupancy
        // monitor's overhead (the epidemic never leaves dense mode).
        group.bench_with_input(BenchmarkId::new("hybrid", n), &n, |b, &n| {
            b.iter(|| epidemic_hybrid(n, 1));
        });
        // The sequential engine is benchmarked up to 10⁵ only; at 10⁶ a single
        // converged run costs ~10⁸ scheduler draws and dominates the suite
        // (that point lives in BENCH_batched.json, measured once).
        if n <= 100_000 {
            group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
                b.iter(|| epidemic_sequential(n, 1));
            });
        }
    }
    group.finish();
}

/// The sharded engine across shard counts at a fixed large population
/// (single worker thread, so the numbers isolate the algorithmic effect of
/// sharding — longer per-shard blocks, bulk cross-shard resolution — from
/// hardware parallelism).
fn bench_sharded(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut group = c.benchmark_group("engine_epidemic_sharded");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
        b.iter(|| epidemic_batched(n, 1));
    });
    for &shards in &[2usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new(format!("sharded{shards}x1"), n),
            &n,
            |b, &n| {
                b.iter(|| epidemic_sharded(n, 1, shards, 1));
            },
        );
    }
    group.finish();
}

/// The interned dense counting protocols (Theorems 1/2) on the batched
/// engine: throughput over a fixed interaction budget (full convergence at
/// these sizes is minutes of wall-clock and lives in E19 / the
/// `bench_batched_json --workload` snapshots, not in the smoke suite).
fn bench_dense_counting(c: &mut Criterion) {
    let n = 100_000usize;
    let budget = 20_000_000u64;
    let mut group = c.benchmark_group("engine_dense_counting");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("approximate_batched", n), &n, |b, &n| {
        b.iter(|| {
            let proto = DenseApproximate::new(ApproximateParams::default());
            let mut sim = BatchedSimulator::new(proto, n, 1).unwrap();
            sim.run(budget);
            sim.interactions()
        });
    });
    group.bench_with_input(BenchmarkId::new("count_exact_batched", n), &n, |b, &n| {
        b.iter(|| {
            let proto = DenseCountExact::new(CountExactParams::dense_at_scale(n));
            let mut sim = BatchedSimulator::new(proto, n, 1).unwrap();
            sim.run(budget);
            sim.interactions()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_sharded, bench_dense_counting);
criterion_main!(benches);
