//! Sequential vs batched engine: epidemic convergence wall-clock at growing
//! population sizes.
//!
//! The protocols are the *same transition system* (the dense epidemic run via
//! `DenseAdapter` on the sequential engine), so differences are pure engine
//! overhead.  `bench_batched_json` (a `ppbench` binary) emits the same
//! comparison as machine-readable `BENCH_batched.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppproto::DenseEpidemic;
use ppsim::{BatchedSimulator, DenseAdapter, Simulator};

fn epidemic_batched(n: usize, seed: u64) -> u64 {
    let mut sim = BatchedSimulator::new(DenseEpidemic, n, seed).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.run_until(|s| s.count_of(1) == s.population(), n as u64, u64::MAX >> 1)
        .expect_converged("batched epidemic")
}

fn epidemic_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(DenseAdapter(DenseEpidemic), n, seed).unwrap();
    sim.states_mut()[0] = 1;
    sim.run_until(
        |s| s.states().iter().all(|&x| x == 1),
        n as u64,
        u64::MAX >> 1,
    )
    .expect_converged("sequential epidemic")
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_epidemic_convergence");
    group.sample_size(5);
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter(|| epidemic_batched(n, 1));
        });
        // The sequential engine is benchmarked up to 10⁵ only; at 10⁶ a single
        // converged run costs ~10⁸ scheduler draws and dominates the suite
        // (that point lives in BENCH_batched.json, measured once).
        if n <= 100_000 {
            group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
                b.iter(|| epidemic_sequential(n, 1));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
