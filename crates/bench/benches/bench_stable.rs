//! E14 — the stable hybrid variants (error detection + backup).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popcount::{all_estimates_valid, all_exact, StableApproximate, StableCountExact};
use ppsim::Simulator;

fn bench_stable(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_variants");
    group.sample_size(10);
    for &n in &[200usize, 400] {
        group.bench_with_input(BenchmarkId::new("stable_approximate", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(StableApproximate::default(), n, seed).unwrap();
                sim.run_until(
                    move |s| all_estimates_valid(s.protocol(), s.states(), n),
                    (n * 20) as u64,
                    u64::MAX,
                )
                .expect_converged("stable approximate")
            });
        });
        group.bench_with_input(BenchmarkId::new("stable_count_exact", n), &n, |b, &n| {
            let mut seed = 50u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(StableCountExact::default(), n, seed).unwrap();
                sim.run_until(
                    move |s| all_exact(s.protocol(), s.states(), n),
                    (n * 20) as u64,
                    u64::MAX,
                )
                .expect_converged("stable count exact")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stable);
criterion_main!(benches);
