//! E12/E13 — the Θ(n²) baselines: token merging and the backup protocols.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popcount::{all_output_n, ApproximateBackup, ExactBackup, TokenMergingCounter};
use ppsim::Simulator;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::new("token_merging", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(TokenMergingCounter::new(), n, seed).unwrap();
                sim.run_until(
                    move |s| all_output_n(s.states(), n),
                    (n * n / 8) as u64,
                    u64::MAX,
                )
                .expect_converged("baseline")
            });
        });
        group.bench_with_input(BenchmarkId::new("approx_backup", n), &n, |b, &n| {
            let mut seed = 10u64;
            let expected = (n as f64).log2().floor() as i32;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(ApproximateBackup::new(), n, seed).unwrap();
                sim.run_until(
                    move |s| s.states().iter().all(|st| st.k_max == expected),
                    (n * n / 8) as u64,
                    u64::MAX,
                )
                .expect_converged("approx backup")
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_backup", n), &n, |b, &n| {
            let mut seed = 20u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(ExactBackup::new(), n, seed).unwrap();
                sim.run_until(
                    move |s| s.states().iter().all(|st| st.count == n as u64),
                    (n * n / 8) as u64,
                    u64::MAX,
                )
                .expect_converged("exact backup")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
