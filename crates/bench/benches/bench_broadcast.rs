//! E01 — Lemma 3: wall-clock cost of simulating one-way epidemics to completion.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppproto::OneWayEpidemic;
use ppsim::Simulator;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_lemma3");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(OneWayEpidemic::new(), n, seed).unwrap();
                sim.states_mut()[0] = 1;
                sim.run_until(|s| s.states().iter().all(|&x| x == 1), n as u64, u64::MAX)
                    .expect_converged("broadcast")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
