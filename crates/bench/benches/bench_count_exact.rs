//! E09–E11 — Theorem 2: protocol CountExact end to end.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popcount::{all_counted, CountExact, CountExactParams};
use ppsim::Simulator;

fn bench_count_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_exact_theorem2");
    group.sample_size(10);
    for &n in &[300usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto = CountExact::new(CountExactParams::default());
                let mut sim = Simulator::new(proto, n, seed).unwrap();
                sim.run_until(
                    move |s| all_counted(s.protocol(), s.states(), n),
                    (n * 20) as u64,
                    u64::MAX,
                )
                .expect_converged("count exact")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_count_exact);
criterion_main!(benches);
