//! Raw simulator throughput: interactions per second for a trivial protocol and for
//! the full CountExact composition.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use popcount::{CountExact, CountExactParams, TokenMergingCounter};
use ppsim::Simulator;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    let steps = 200_000u64;
    group.throughput(Throughput::Elements(steps));
    for &n in &[1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("token_merging_steps", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulator::new(TokenMergingCounter::new(), n, 1).unwrap();
                sim.run(steps);
                sim.interactions()
            });
        });
        group.bench_with_input(BenchmarkId::new("count_exact_steps", n), &n, |b, &n| {
            b.iter(|| {
                let proto = CountExact::new(CountExactParams::default());
                let mut sim = Simulator::new(proto, n, 1).unwrap();
                sim.run(steps);
                sim.interactions()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
