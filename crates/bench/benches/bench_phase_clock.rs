//! E03 — Lemma 5: cost of three full phases of the junta-driven phase clock.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppproto::SynchronizedClockProtocol;
use ppsim::Simulator;

fn bench_phase_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_clock_lemma5");
    group.sample_size(10);
    for &n in &[512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(SynchronizedClockProtocol::new(16), n, seed).unwrap();
                sim.run_until(
                    |s| s.states().iter().all(|a| a.clock.phase >= 3),
                    n as u64,
                    u64::MAX,
                )
                .expect_converged("phase clock")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase_clock);
criterion_main!(benches);
