//! E02 — Lemma 4: cost of running the junta process until all agents are inactive.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppproto::junta::{all_inactive, JuntaProtocol};
use ppsim::Simulator;

fn bench_junta(c: &mut Criterion) {
    let mut group = c.benchmark_group("junta_lemma4");
    group.sample_size(10);
    for &n in &[512usize, 2048, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(JuntaProtocol::new(), n, seed).unwrap();
                sim.run_until(|s| all_inactive(s.states()), n as u64, u64::MAX)
                    .expect_converged("junta")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_junta);
criterion_main!(benches);
