//! E04/E05 — Lemmas 6 and 7: leader election of \[18\] vs FastLeaderElection.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppproto::fast_leader_election::FastLeaderElectionProtocol;
use ppproto::leader_election::LeaderElectionProtocol;
use ppproto::{FastLeaderElectionConfig, LeaderElectionConfig};
use ppsim::Simulator;

fn bench_leader_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_election");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("slow_lemma6", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto =
                    LeaderElectionProtocol::new(16, LeaderElectionConfig { outer_hours: 32 });
                let mut sim = Simulator::new(proto, n, seed).unwrap();
                sim.run_until(
                    |s| s.states().iter().all(|a| a.election.done),
                    (n * 10) as u64,
                    u64::MAX,
                )
                .expect_converged("leader election")
            });
        });
        group.bench_with_input(BenchmarkId::new("fast_lemma7", n), &n, |b, &n| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                let proto = FastLeaderElectionProtocol::new(
                    16,
                    FastLeaderElectionConfig {
                        level_offset: 2,
                        total_phases: 32,
                    },
                );
                let mut sim = Simulator::new(proto, n, seed).unwrap();
                sim.run_until(
                    |s| s.states().iter().all(|a| a.election.done),
                    (n * 10) as u64,
                    u64::MAX,
                )
                .expect_converged("fast leader election")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leader_election);
criterion_main!(benches);
