//! `ppbench` — Criterion benchmarks for the population-size-counting reproduction.
//!
//! The crate itself only hosts the bench targets (one per experiment family, see
//! `benches/`); the measurements that reproduce the paper's claims in terms of
//! *interaction counts* are produced by the `ppanalysis` experiment harness.
#![forbid(unsafe_code)]
