//! Emit machine-readable engine benchmarks (`BENCH_batched.json`,
//! `BENCH_sharded.json`): wall-clock comparison of the simulation engines on
//! the epidemic workload across population sizes.
//!
//! ```text
//! # Legacy snapshot (BENCH_batched.json): sequential vs batched.
//! cargo run --release -p ppbench --bin bench_batched_json [--full] > BENCH_batched.json
//!
//! # Engine/size/thread selection from the CLI (BENCH_sharded.json):
//! cargo run --release -p ppbench --bin bench_batched_json -- \
//!     --name epidemic_batched_vs_sharded \
//!     --engines batched,sharded,hybrid --sizes 1e6,1e7,1e8,1e9 \
//!     --shards 8 --threads 8 > BENCH_sharded.json
//!
//! # Counting workloads (Theorems 1/2 on the dense engines):
//! cargo run --release -p ppbench --bin bench_batched_json -- \
//!     --workload approximate --engines batched --sizes 1e5,1e6 > BENCH_counting.json
//!
//! # Decoded-vs-interned stint comparison (hybrid per-agent legs):
//! cargo run --release -p ppbench --bin bench_batched_json -- \
//!     --workload countexact --engines hybrid --sizes 1e5 > BENCH_countexact.json
//! cargo run --release -p ppbench --bin bench_batched_json -- \
//!     --workload countexact --engines hybrid --sizes 1e5 --interned-stints
//!
//! # Crash-safe output: write the JSON atomically (temp + fsync + rename)
//! # instead of redirecting stdout, so a kill mid-write never truncates a
//! # checked-in benchmark file:
//! cargo run --release -p ppbench --bin bench_batched_json -- \
//!     --full --out BENCH_batched.json
//! ```
//!
//! Hybrid rows additionally emit `dense_mips` / `agent_mips` (per-leg
//! throughput in millions of interactions per second) and the stint kind, so
//! the refinement-leg win of the decoded stint is tracked per PR.
//!
//! The default workload is the one-way epidemic run to full convergence —
//! the same transition system on every engine (`DenseSimulator` dispatch),
//! so the ratio columns are pure engine speedup.  `--workload approximate`
//! and `--workload countexact` run the composed counting protocols
//! (`DenseApproximate` / `DenseCountExact`, interned dense encodings) to a
//! unanimous valid output instead — the Theorem 1/2 experiments E19 report
//! as tables.  `--trials` overrides the per-size default (5 below 10⁶, 3
//! below 10⁸, 2 below 10⁹, then 1); the sequential engine is skipped above
//! 2·10⁶ where a single converged run takes minutes.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use popcount::{
    count_exact_dense_staged_with, valid_estimates, ApproximateParams, CountExactParams,
    DenseApproximate, StintMode,
};
use ppproto::DenseEpidemic;
use ppsim::snapshot::write_bytes_atomic;
use ppsim::{derive_seed, DenseSimulator, Engine, HybridLegs};

/// Which protocol the benchmark drives to convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Epidemic,
    Approximate,
    CountExact,
}

impl Workload {
    fn parse(raw: &str) -> Self {
        match raw {
            "epidemic" => Workload::Epidemic,
            "approximate" => Workload::Approximate,
            "countexact" => Workload::CountExact,
            other => panic!("unknown workload `{other}` (epidemic|approximate|countexact)"),
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Workload::Epidemic => "one-way epidemic (DenseEpidemic) run until all agents informed",
            Workload::Approximate => {
                "Approximate (Theorem 1, DenseApproximate) run until a unanimous \
                 floor/ceil log2 n estimate"
            }
            Workload::CountExact => {
                "CountExact (Theorem 2, dense_at_scale params) run on the hybrid engine \
                 until every agent outputs exactly n: count-based while the census stays \
                 narrow, per-agent through the refinement (count_exact_dense_staged); \
                 hybrid rows report switch_interactions"
            }
        }
    }

    fn default_name(self) -> &'static str {
        match self {
            Workload::Epidemic => "epidemic_convergence_seq_vs_batched",
            Workload::Approximate => "approximate_convergence_dense",
            Workload::CountExact => "count_exact_convergence_dense",
        }
    }
}

struct Measurement {
    n: usize,
    engine: Engine,
    trials: usize,
    mean_seconds: f64,
    min_seconds: f64,
    mean_interactions: f64,
    interactions_per_second: f64,
    /// Hybrid-engine representation migrations of the last trial, as
    /// total-interaction counts (empty off the hybrid path).
    switch_points: Vec<u64>,
    /// Best-of-N per-leg accounting of the hybrid trials (the trial with
    /// the highest agent-leg throughput — the same less-noise-sensitive
    /// choice as `min_seconds`, which the CI regression gate reads).
    /// `None` off the hybrid path.
    legs: Option<HybridLegs>,
}

/// Per-leg accounting emitted on hybrid rows: throughput of each
/// representation in millions of interactions per second, so the
/// refinement-leg win of the decoded stint is tracked per PR.
fn legs_json(legs: Option<HybridLegs>) -> String {
    let Some(legs) = legs else {
        return String::new();
    };
    format!(
        ", \"dense_mips\": {:.2}, \"agent_mips\": {:.2}, \"stint\": \"{}\"",
        legs.dense_throughput() / 1e6,
        legs.agent_throughput() / 1e6,
        legs.stint_kind.unwrap_or("none")
    )
}

/// Wall-clock, interaction count, hybrid switch points and per-leg
/// accounting of one run to convergence.
type TimedRun = (f64, u64, Vec<u64>, Option<HybridLegs>);

fn time_engine(
    workload: Workload,
    engine: Engine,
    n: usize,
    seed: u64,
    stints: StintMode,
) -> TimedRun {
    match workload {
        Workload::Epidemic => {
            let start = Instant::now();
            let mut sim = DenseSimulator::new(engine, DenseEpidemic, n, seed)
                .expect("engine construction must succeed");
            sim.transfer(0, 1, 1).expect("plant the rumour");
            let t = sim
                .run_until(|s| s.count_of(1) == s.population(), n as u64, u64::MAX >> 1)
                .expect_converged("epidemic");
            (
                start.elapsed().as_secs_f64(),
                t,
                sim.switch_points(),
                sim.hybrid_legs(),
            )
        }
        Workload::Approximate => {
            let start = Instant::now();
            let proto = DenseApproximate::new(ApproximateParams::default());
            let mut sim = DenseSimulator::new(engine, proto, n, seed)
                .expect("engine construction must succeed");
            // Stop at the first unanimous output (the stable configuration);
            // validity is reported, not awaited — a rare overshot search
            // would otherwise spin forever.
            let t = sim
                .run_until(
                    |s| matches!(s.output_stats().unanimous(), Some(&Some(_))),
                    (n as u64) * 8,
                    u64::MAX >> 1,
                )
                .expect_converged("dense approximate");
            let (floor, ceil) = valid_estimates(n);
            if !matches!(sim.output_stats().unanimous(), Some(&Some(k)) if k == floor || k == ceil)
            {
                eprintln!(
                    "note: run at n = {n} (seed {seed}) reached unanimity on an \
                     out-of-range estimate"
                );
            }
            (
                start.elapsed().as_secs_f64(),
                t,
                sim.switch_points(),
                sim.hybrid_legs(),
            )
        }
        Workload::CountExact => {
            // Staged: stages 1–2 on the dense engine, refinement per-agent
            // (see `popcount::exact::staged` for the Õ(n)-states rationale).
            // `stints` selects native-struct or interned-index stepping for
            // the per-agent legs (`--interned-stints`).
            let start = Instant::now();
            let outcome = count_exact_dense_staged_with(
                CountExactParams::dense_at_scale(n),
                n,
                seed,
                engine,
                u64::MAX >> 1,
                stints,
            )
            .expect("engine construction must succeed");
            assert!(outcome.converged, "staged dense count-exact must converge");
            if outcome.output != Some(n as u64) {
                eprintln!("note: run at n = {n} (seed {seed}) counted a wrong total");
            }
            (
                start.elapsed().as_secs_f64(),
                outcome.interactions,
                outcome.switch_interactions,
                Some(HybridLegs {
                    dense_interactions: outcome.dense_interactions,
                    dense_seconds: outcome.dense_seconds,
                    agent_interactions: outcome.agent_interactions,
                    agent_seconds: outcome.agent_seconds,
                    stint_kind: outcome.stint_kind,
                }),
            )
        }
    }
}

fn measure(
    workload: Workload,
    engine: Engine,
    n: usize,
    trials: usize,
    stints: StintMode,
) -> Measurement {
    // Warm-up run (page faults, branch predictors), then timed trials.
    let _ = time_engine(workload, engine, n, derive_seed(0xBEEF, 999), stints);
    let mut secs = Vec::with_capacity(trials);
    let mut inters = Vec::with_capacity(trials);
    let mut switch_points = Vec::new();
    let mut legs: Option<HybridLegs> = None;
    for t in 0..trials {
        let (s, i, switches, l) =
            time_engine(workload, engine, n, derive_seed(0xBEEF, t as u64), stints);
        secs.push(s);
        inters.push(i as f64);
        switch_points = switches;
        // Keep the best-of-N agent-leg throughput: a single scheduler
        // hiccup in one trial must not tank the gated metric.
        if let Some(l) = l {
            let better = legs
                .as_ref()
                .is_none_or(|prev| l.agent_throughput() > prev.agent_throughput());
            if better {
                legs = Some(l);
            }
        }
    }
    let mean_seconds = secs.iter().sum::<f64>() / trials as f64;
    let mean_interactions = inters.iter().sum::<f64>() / trials as f64;
    Measurement {
        n,
        engine,
        trials,
        mean_seconds,
        min_seconds: secs.iter().copied().fold(f64::INFINITY, f64::min),
        mean_interactions,
        interactions_per_second: mean_interactions / mean_seconds,
        switch_points,
        legs,
    }
}

fn default_trials(n: usize) -> usize {
    match n {
        0..=999_999 => 5,
        1_000_000..=99_999_999 => 3,
        100_000_000..=999_999_999 => 2,
        _ => 1,
    }
}

/// Parse a population size, accepting `1000000`, `1_000_000` and `1e6`.
fn parse_size(raw: &str) -> usize {
    let cleaned = raw.replace('_', "");
    if cleaned.contains(['e', 'E']) {
        let f: f64 = cleaned
            .parse()
            .unwrap_or_else(|_| panic!("bad size `{raw}`"));
        assert!(f.fract() == 0.0 && f >= 0.0, "bad size `{raw}`");
        f as usize
    } else {
        cleaned
            .parse()
            .unwrap_or_else(|_| panic!("bad size `{raw}`"))
    }
}

/// The value following a `--flag` argument, if the flag is present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .map_or_else(|| panic!("{flag} needs a value"), String::as_str)
    })
}

fn engine_json_fields(engine: Engine) -> String {
    match engine {
        Engine::Sharded { shards, threads } => {
            format!("\"engine\": \"sharded\", \"shards\": {shards}, \"threads\": {threads}")
        }
        e => format!("\"engine\": \"{}\"", e.name()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let stints = if args.iter().any(|a| a == "--interned-stints") {
        StintMode::Interned
    } else {
        StintMode::Decoded
    };
    let shards: usize = flag_value(&args, "--shards").map_or(8, |v| v.parse().expect("--shards"));
    let threads: usize =
        flag_value(&args, "--threads").map_or(8, |v| v.parse().expect("--threads"));
    let trials_override: Option<usize> =
        flag_value(&args, "--trials").map(|v| v.parse().expect("--trials"));

    let engines: Vec<Engine> = match flag_value(&args, "--engines") {
        None => vec![Engine::Batched, Engine::Sequential],
        Some(list) => list
            .split(',')
            .map(|name| match name.trim() {
                "sequential" => Engine::Sequential,
                "batched" => Engine::Batched,
                "sharded" => Engine::Sharded { shards, threads },
                "hybrid" => Engine::Hybrid,
                "auto" => Engine::Auto,
                other => {
                    panic!("unknown engine `{other}` (sequential|batched|sharded|hybrid|auto)")
                }
            })
            .collect(),
    };

    let sizes: Vec<usize> = match flag_value(&args, "--sizes") {
        Some(list) => list.split(',').map(parse_size).collect(),
        None => {
            if full {
                vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000]
            } else {
                vec![1_000, 10_000, 100_000, 1_000_000]
            }
        }
    };

    let workload = flag_value(&args, "--workload").map_or(Workload::Epidemic, Workload::parse);
    assert!(
        stints == StintMode::Decoded || workload == Workload::CountExact,
        "--interned-stints only applies to --workload countexact (the other \
         workloads drive DenseSimulator, which always uses the protocol's \
         default stint mode) -- refusing to emit a mislabelled baseline"
    );
    let name = flag_value(&args, "--name").unwrap_or_else(|| workload.default_name());
    let note = flag_value(&args, "--note");

    let mut measurements: Vec<Measurement> = Vec::new();
    for &n in &sizes {
        let trials = trials_override.unwrap_or_else(|| default_trials(n));
        for &engine in &engines {
            if engine.resolve(n) == Engine::Sequential && n > 2_000_000 {
                eprintln!("skipping sequential engine at n = {n} (a converged run takes minutes)");
                continue;
            }
            eprintln!("measuring {} engine at n = {n} ...", engine.name());
            measurements.push(measure(workload, engine, n, trials, stints));
        }
    }

    // Hand-rolled JSON (the workspace deliberately carries no serde),
    // buffered so `--out` can land it atomically in one rename.
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"{name}\",");
    if let Some(note) = note {
        let _ = writeln!(out, "  \"note\": \"{note}\",");
    }
    let _ = writeln!(out, "  \"workload\": \"{}\",", workload.describe());
    let _ = writeln!(
        out,
        "  \"units\": {{ \"time\": \"seconds\", \"throughput\": \"interactions/second\" }},"
    );
    let _ = writeln!(out, "  \"results\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        // Switch points ride along as a note field on hybrid rows: the
        // interaction counts at which the engine migrated representation in
        // the last trial (the measured dense -> per-agent crossover).
        let switches = if m.switch_points.is_empty() {
            String::new()
        } else {
            format!(
                ", \"switch_interactions\": [{}]",
                m.switch_points
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let _ = writeln!(
            out,
            "    {{ \"n\": {}, {}, \"trials\": {}, \"mean_seconds\": {:.6}, \
             \"min_seconds\": {:.6}, \"mean_interactions\": {:.0}, \
             \"interactions_per_second\": {:.0}{}{} }}{}",
            m.n,
            engine_json_fields(m.engine),
            m.trials,
            m.mean_seconds,
            m.min_seconds,
            m.mean_interactions,
            m.interactions_per_second,
            legs_json(m.legs),
            switches,
            comma
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedups\": [");
    let find = |n: usize, name: &str| {
        measurements
            .iter()
            .find(|m| m.n == n && m.engine.name() == name)
    };
    let mut speedups: Vec<String> = Vec::new();
    for &n in &sizes {
        if let (Some(b), Some(s)) = (find(n, "batched"), find(n, "sequential")) {
            speedups.push(format!(
                "    {{ \"n\": {n}, \"batched_over_sequential\": {:.2} }}",
                s.mean_seconds / b.mean_seconds
            ));
        }
        if let (Some(sh), Some(b)) = (find(n, "sharded"), find(n, "batched")) {
            speedups.push(format!(
                "    {{ \"n\": {n}, \"sharded_over_batched\": {:.2} }}",
                b.mean_seconds / sh.mean_seconds
            ));
        }
        if let (Some(h), Some(b)) = (find(n, "hybrid"), find(n, "batched")) {
            speedups.push(format!(
                "    {{ \"n\": {n}, \"hybrid_over_batched\": {:.2} }}",
                b.mean_seconds / h.mean_seconds
            ));
        }
    }
    let _ = writeln!(out, "{}", speedups.join(",\n"));
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    match flag_value(&args, "--out") {
        // Atomic write: a kill mid-write never leaves a truncated JSON file.
        Some(path) => write_bytes_atomic(Path::new(path), out.as_bytes())
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}")),
        None => print!("{out}"),
    }
}
