//! Emit `BENCH_batched.json`: wall-clock comparison of the sequential and
//! batched engines on the epidemic workload across population sizes.
//!
//! ```text
//! cargo run --release -p ppbench --bin bench_batched_json [--full] > BENCH_batched.json
//! ```
//!
//! The workload is the one-way epidemic run to full convergence — the same
//! transition system on both engines (`DenseAdapter` on the sequential side),
//! so the ratio column is pure engine speedup.  `--full` adds `n = 10⁷`
//! (batched only: a sequential run at that size takes minutes).

use std::time::Instant;

use ppproto::DenseEpidemic;
use ppsim::{derive_seed, BatchedSimulator, DenseAdapter, Simulator};

struct Measurement {
    n: usize,
    engine: &'static str,
    trials: usize,
    mean_seconds: f64,
    min_seconds: f64,
    mean_interactions: f64,
    interactions_per_second: f64,
}

fn time_batched(n: usize, seed: u64) -> (f64, u64) {
    let start = Instant::now();
    let mut sim = BatchedSimulator::new(DenseEpidemic, n, seed).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    let t = sim
        .run_until(|s| s.count_of(1) == s.population(), n as u64, u64::MAX >> 1)
        .expect_converged("batched epidemic");
    (start.elapsed().as_secs_f64(), t)
}

fn time_sequential(n: usize, seed: u64) -> (f64, u64) {
    let start = Instant::now();
    let mut sim = Simulator::new(DenseAdapter(DenseEpidemic), n, seed).unwrap();
    sim.states_mut()[0] = 1;
    let t = sim
        .run_until(
            |s| s.states().iter().all(|&x| x == 1),
            n as u64,
            u64::MAX >> 1,
        )
        .expect_converged("sequential epidemic");
    (start.elapsed().as_secs_f64(), t)
}

fn measure(
    n: usize,
    engine: &'static str,
    trials: usize,
    f: impl Fn(usize, u64) -> (f64, u64),
) -> Measurement {
    // Warm-up run (page faults, branch predictors), then timed trials.
    let _ = f(n, derive_seed(0xBEEF, 999));
    let mut secs = Vec::with_capacity(trials);
    let mut inters = Vec::with_capacity(trials);
    for t in 0..trials {
        let (s, i) = f(n, derive_seed(0xBEEF, t as u64));
        secs.push(s);
        inters.push(i as f64);
    }
    let mean_seconds = secs.iter().sum::<f64>() / trials as f64;
    let mean_interactions = inters.iter().sum::<f64>() / trials as f64;
    Measurement {
        n,
        engine,
        trials,
        mean_seconds,
        min_seconds: secs.iter().copied().fold(f64::INFINITY, f64::min),
        mean_interactions,
        interactions_per_second: mean_interactions / mean_seconds,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };

    let mut measurements: Vec<Measurement> = Vec::new();
    for &n in sizes {
        let trials = if n >= 1_000_000 { 3 } else { 5 };
        eprintln!("measuring batched engine at n = {n} ...");
        measurements.push(measure(n, "batched", trials, time_batched));
        // The sequential engine becomes impractical beyond 10⁶.
        if n <= 1_000_000 {
            eprintln!("measuring sequential engine at n = {n} ...");
            measurements.push(measure(n, "sequential", trials, time_sequential));
        }
    }

    // Hand-rolled JSON (the workspace deliberately carries no serde).
    println!("{{");
    println!("  \"benchmark\": \"epidemic_convergence_seq_vs_batched\",");
    println!("  \"workload\": \"one-way epidemic (DenseEpidemic) run until all agents informed\",");
    println!("  \"units\": {{ \"time\": \"seconds\", \"throughput\": \"interactions/second\" }},");
    println!("  \"results\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        println!(
            "    {{ \"n\": {}, \"engine\": \"{}\", \"trials\": {}, \"mean_seconds\": {:.6}, \
             \"min_seconds\": {:.6}, \"mean_interactions\": {:.0}, \
             \"interactions_per_second\": {:.0} }}{}",
            m.n,
            m.engine,
            m.trials,
            m.mean_seconds,
            m.min_seconds,
            m.mean_interactions,
            m.interactions_per_second,
            comma
        );
    }
    println!("  ],");
    println!("  \"speedups\": [");
    let pairs: Vec<(usize, f64)> = sizes
        .iter()
        .filter_map(|&n| {
            let b = measurements
                .iter()
                .find(|m| m.n == n && m.engine == "batched")?;
            let s = measurements
                .iter()
                .find(|m| m.n == n && m.engine == "sequential")?;
            Some((n, s.mean_seconds / b.mean_seconds))
        })
        .collect();
    for (i, (n, speedup)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        println!("    {{ \"n\": {n}, \"batched_over_sequential\": {speedup:.2} }}{comma}");
    }
    println!("  ]");
    println!("}}");
}
