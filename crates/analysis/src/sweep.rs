//! Parameter sweeps: repeated seeded trials across population sizes, run on worker
//! threads.
//!
//! Long sweeps can checkpoint at trial granularity
//! ([`sweep_with_threads_checkpointed`]): every completed [`TrialResult`] is
//! appended to an atomically-written snapshot file, and a resumed sweep
//! replays completed trials from the file instead of re-running them.  A
//! trial is deterministic in `(n, seed)` and its seed is derived from the
//! sweep geometry, so a replayed result is bitwise the result the re-run
//! would produce — resuming changes wall-clock, never data.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use ppsim::snapshot::ENGINE_COMPOSITE_BASE;
use ppsim::{
    derive_seed, run_trials_with_threads, EngineSnapshot, PersistState, SimError, SnapshotReader,
};

/// Engine tag of the composite sweep snapshot: sweep geometry plus the
/// completed trials so far.
pub const ENGINE_SWEEP: u8 = ENGINE_COMPOSITE_BASE + 1;

/// The result of one trial of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The population size the trial ran with.
    pub n: usize,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Whether the run converged within its budget.
    pub converged: bool,
    /// Number of interactions at convergence (or at budget exhaustion).
    pub interactions: u64,
    /// An experiment-specific scalar (estimate error, junta size, state count, …).
    pub metric: f64,
}

/// Run `trials` seeded trials of `job` for every population size in `sizes`,
/// in parallel, and return the results grouped per size (in input order).
///
/// `job(n, seed)` must be deterministic in its arguments; seeds are derived from
/// [`derive_seed`] so the whole sweep is reproducible.
pub fn sweep<F>(sizes: &[usize], trials: usize, master_seed: u64, job: F) -> Vec<Vec<TrialResult>>
where
    F: Fn(usize, u64) -> TrialResult + Sync,
{
    // Clamp to the *detected* parallelism and fall back to a single worker
    // when detection fails: the old fallback of 4 oversubscribed 1-CPU
    // containers (4 trial threads time-slicing one core) and distorted every
    // E-series wall-clock measured there.  Trials that bring their own
    // threads (sharded or hybrid engines) must not go through this entry
    // point at all — use [`sweep_with_threads`] with one worker.
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    sweep_with_threads(sizes, trials, master_seed, threads, job)
}

/// [`sweep`] with an explicit trial-level worker-thread budget.
///
/// Pass `threads = 1` when each trial is itself multi-threaded (the sharded
/// and hybrid engines: E18, E19, E20): trial-level and engine-level
/// parallelism would otherwise oversubscribe the machine and distort
/// wall-clock measurements.
pub fn sweep_with_threads<F>(
    sizes: &[usize],
    trials: usize,
    master_seed: u64,
    threads: usize,
    job: F,
) -> Vec<Vec<TrialResult>>
where
    F: Fn(usize, u64) -> TrialResult + Sync,
{
    let mut jobs = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        for t in 0..trials {
            jobs.push((si, n, derive_seed(master_seed, (si * trials + t) as u64)));
        }
    }
    let results = run_trials_with_threads(jobs.len(), threads, |i| {
        let (si, n, seed) = jobs[i];
        (si, job(n, seed))
    });
    let mut grouped: Vec<Vec<TrialResult>> = sizes.iter().map(|_| Vec::new()).collect();
    for (si, r) in results {
        grouped[si].push(r);
    }
    grouped
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for TrialResult {
    fn persist(&self, out: &mut Vec<u8>) {
        self.n.persist(out);
        self.seed.persist(out);
        self.converged.persist(out);
        self.interactions.persist(out);
        self.metric.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(TrialResult {
            n: usize::unpersist(r)?,
            seed: u64::unpersist(r)?,
            converged: bool::unpersist(r)?,
            interactions: u64::unpersist(r)?,
            metric: f64::unpersist(r)?,
        })
    }
}

fn sweep_snapshot(
    sizes: &[usize],
    trials: usize,
    master_seed: u64,
    completed: &HashMap<usize, TrialResult>,
) -> EngineSnapshot {
    let mut payload = Vec::new();
    sizes.to_vec().persist(&mut payload);
    trials.persist(&mut payload);
    master_seed.persist(&mut payload);
    let mut done: Vec<(usize, TrialResult)> =
        completed.iter().map(|(&i, r)| (i, r.clone())).collect();
    done.sort_by_key(|(i, _)| *i);
    (done.len()).persist(&mut payload);
    for (i, r) in done {
        i.persist(&mut payload);
        r.persist(&mut payload);
    }
    EngineSnapshot::new(ENGINE_SWEEP, payload)
}

fn read_sweep_snapshot(
    path: &Path,
    sizes: &[usize],
    trials: usize,
    master_seed: u64,
) -> Result<HashMap<usize, TrialResult>, SimError> {
    let snap = EngineSnapshot::read_file(path)?;
    snap.expect_engine(ENGINE_SWEEP, "parameter sweep")?;
    let mut r = snap.reader();
    let saved_sizes = Vec::<usize>::unpersist(&mut r)?;
    let saved_trials = usize::unpersist(&mut r)?;
    let saved_master = u64::unpersist(&mut r)?;
    if saved_sizes != sizes || saved_trials != trials || saved_master != master_seed {
        return Err(SimError::SnapshotMismatch {
            reason: format!(
                "sweep snapshot was taken with (sizes {saved_sizes:?}, trials {saved_trials}, \
                 master seed {saved_master}) but this sweep asked for (sizes {sizes:?}, trials \
                 {trials}, master seed {master_seed}) — per-trial seeds derive from that \
                 geometry, so the completed results are not transferable"
            ),
        });
    }
    let count = usize::unpersist(&mut r)?;
    let total = sizes.len() * trials;
    let mut completed = HashMap::with_capacity(count);
    for _ in 0..count {
        let i = usize::unpersist(&mut r)?;
        let result = TrialResult::unpersist(&mut r)?;
        if i >= total || completed.insert(i, result).is_some() {
            return Err(SimError::SnapshotCorrupt {
                reason: format!("sweep snapshot names trial {i} outside or twice in 0..{total}"),
            });
        }
    }
    r.finish()?;
    Ok(completed)
}

/// [`sweep_with_threads`] with trial-granular crash recovery: completed
/// trials are checkpointed to `checkpoint` (written atomically after every
/// finished trial), and if the file already exists the sweep resumes from
/// it, re-running only the missing trials.
///
/// The file's sweep geometry (`sizes`, `trials`, `master_seed`) must match
/// the arguments — trial seeds derive from the geometry, so results from a
/// different sweep are rejected with [`SimError::SnapshotMismatch`] rather
/// than silently mixed in.
///
/// # Errors
///
/// Fails on an unreadable/mismatched checkpoint or when a checkpoint write
/// fails (the first write error aborts the sweep — a long sweep silently
/// losing its checkpoints would defeat the point).
pub fn sweep_with_threads_checkpointed<F>(
    sizes: &[usize],
    trials: usize,
    master_seed: u64,
    threads: usize,
    checkpoint: &Path,
    job: F,
) -> Result<Vec<Vec<TrialResult>>, SimError>
where
    F: Fn(usize, u64) -> TrialResult + Sync,
{
    let completed = if checkpoint.exists() {
        read_sweep_snapshot(checkpoint, sizes, trials, master_seed)?
    } else {
        HashMap::new()
    };

    let mut jobs = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        for t in 0..trials {
            jobs.push((si, n, derive_seed(master_seed, (si * trials + t) as u64)));
        }
    }
    let pending: Vec<usize> = (0..jobs.len())
        .filter(|i| !completed.contains_key(i))
        .collect();

    // Workers funnel finished trials through the ledger, which rewrites the
    // checkpoint after every insertion.  Write amplification is irrelevant
    // at sweep scale (a trial takes seconds to hours; the file is tiny).
    let ledger = Mutex::new((completed, None::<SimError>));
    run_trials_with_threads(pending.len(), threads, |k| {
        let i = pending[k];
        let (_, n, seed) = jobs[i];
        let result = job(n, seed);
        let mut guard = ledger.lock().expect("ledger poisoned");
        let (completed, error) = &mut *guard;
        completed.insert(i, result);
        if error.is_none() {
            if let Err(e) =
                sweep_snapshot(sizes, trials, master_seed, completed).write_atomic(checkpoint)
            {
                *error = Some(e);
            }
        }
    });

    let (completed, error) = ledger.into_inner().expect("ledger poisoned");
    if let Some(e) = error {
        return Err(e);
    }
    let mut grouped: Vec<Vec<TrialResult>> = sizes.iter().map(|_| Vec::new()).collect();
    for (i, (si, _, _)) in jobs.iter().enumerate() {
        grouped[*si].push(completed[&i].clone());
    }
    Ok(grouped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_every_size_and_trial() {
        let sizes = [10usize, 20, 30];
        let grouped = sweep(&sizes, 4, 1, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: n as u64,
            metric: n as f64,
        });
        assert_eq!(grouped.len(), 3);
        for (i, group) in grouped.iter().enumerate() {
            assert_eq!(group.len(), 4);
            assert!(group.iter().all(|r| r.n == sizes[i]));
        }
    }

    #[test]
    fn sweep_is_reproducible() {
        let a = sweep(&[16, 32], 3, 9, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: seed % 1000,
            metric: 0.0,
        });
        let b = sweep(&[16, 32], 3, 9, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: seed % 1000,
            metric: 0.0,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_thread_budget_matches_default_sweep() {
        let job = |n: usize, seed: u64| TrialResult {
            n,
            seed,
            converged: true,
            interactions: seed % 97,
            metric: 0.0,
        };
        let serial = sweep_with_threads(&[16, 32], 3, 9, 1, job);
        let parallel = sweep(&[16, 32], 3, 9, job);
        assert_eq!(
            serial, parallel,
            "results are seed-determined, not thread-determined"
        );
    }

    fn scratch_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ppsim-sweep-{tag}-{}.ppss", std::process::id()))
    }

    #[test]
    fn checkpointed_sweep_resumes_without_rerunning_completed_trials() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let path = scratch_path("resume");
        let _ = std::fs::remove_file(&path);
        let sizes = [16usize, 32];
        let ran = AtomicUsize::new(0);
        let job = |n: usize, seed: u64| {
            ran.fetch_add(1, Ordering::Relaxed);
            TrialResult {
                n,
                seed,
                converged: true,
                interactions: seed % 1_000,
                metric: n as f64 / 3.0,
            }
        };
        let full = sweep_with_threads_checkpointed(&sizes, 3, 9, 1, &path, job).unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 6);
        assert_eq!(full, sweep_with_threads(&sizes, 3, 9, 1, job));
        assert_eq!(ran.load(Ordering::Relaxed), 12);

        // Resume from a complete checkpoint: zero re-runs, identical data.
        let resumed = sweep_with_threads_checkpointed(&sizes, 3, 9, 1, &path, job).unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 12);
        assert_eq!(resumed, full);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_sweep_rejects_a_foreign_geometry() {
        let path = scratch_path("geometry");
        let _ = std::fs::remove_file(&path);
        let job = |n: usize, seed: u64| TrialResult {
            n,
            seed,
            converged: true,
            interactions: 1,
            metric: 0.0,
        };
        sweep_with_threads_checkpointed(&[8], 2, 5, 1, &path, job).unwrap();
        let err = sweep_with_threads_checkpointed(&[8], 2, 6, 1, &path, job).unwrap_err();
        assert!(matches!(err, SimError::SnapshotMismatch { .. }), "{err}");
        let err = sweep_with_threads_checkpointed(&[8, 16], 2, 5, 1, &path, job).unwrap_err();
        assert!(matches!(err, SimError::SnapshotMismatch { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn different_sizes_get_different_seeds() {
        let grouped = sweep(&[8, 8], 2, 5, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: 0,
            metric: 0.0,
        });
        assert_ne!(grouped[0][0].seed, grouped[1][0].seed);
    }
}
