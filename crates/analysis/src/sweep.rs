//! Parameter sweeps: repeated seeded trials across population sizes, run on worker
//! threads.

use ppsim::{derive_seed, run_trials_with_threads};

/// The result of one trial of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The population size the trial ran with.
    pub n: usize,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Whether the run converged within its budget.
    pub converged: bool,
    /// Number of interactions at convergence (or at budget exhaustion).
    pub interactions: u64,
    /// An experiment-specific scalar (estimate error, junta size, state count, …).
    pub metric: f64,
}

/// Run `trials` seeded trials of `job` for every population size in `sizes`,
/// in parallel, and return the results grouped per size (in input order).
///
/// `job(n, seed)` must be deterministic in its arguments; seeds are derived from
/// [`derive_seed`] so the whole sweep is reproducible.
pub fn sweep<F>(sizes: &[usize], trials: usize, master_seed: u64, job: F) -> Vec<Vec<TrialResult>>
where
    F: Fn(usize, u64) -> TrialResult + Sync,
{
    // Clamp to the *detected* parallelism and fall back to a single worker
    // when detection fails: the old fallback of 4 oversubscribed 1-CPU
    // containers (4 trial threads time-slicing one core) and distorted every
    // E-series wall-clock measured there.  Trials that bring their own
    // threads (sharded or hybrid engines) must not go through this entry
    // point at all — use [`sweep_with_threads`] with one worker.
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    sweep_with_threads(sizes, trials, master_seed, threads, job)
}

/// [`sweep`] with an explicit trial-level worker-thread budget.
///
/// Pass `threads = 1` when each trial is itself multi-threaded (the sharded
/// and hybrid engines: E18, E19, E20): trial-level and engine-level
/// parallelism would otherwise oversubscribe the machine and distort
/// wall-clock measurements.
pub fn sweep_with_threads<F>(
    sizes: &[usize],
    trials: usize,
    master_seed: u64,
    threads: usize,
    job: F,
) -> Vec<Vec<TrialResult>>
where
    F: Fn(usize, u64) -> TrialResult + Sync,
{
    let mut jobs = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        for t in 0..trials {
            jobs.push((si, n, derive_seed(master_seed, (si * trials + t) as u64)));
        }
    }
    let results = run_trials_with_threads(jobs.len(), threads, |i| {
        let (si, n, seed) = jobs[i];
        (si, job(n, seed))
    });
    let mut grouped: Vec<Vec<TrialResult>> = sizes.iter().map(|_| Vec::new()).collect();
    for (si, r) in results {
        grouped[si].push(r);
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_every_size_and_trial() {
        let sizes = [10usize, 20, 30];
        let grouped = sweep(&sizes, 4, 1, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: n as u64,
            metric: n as f64,
        });
        assert_eq!(grouped.len(), 3);
        for (i, group) in grouped.iter().enumerate() {
            assert_eq!(group.len(), 4);
            assert!(group.iter().all(|r| r.n == sizes[i]));
        }
    }

    #[test]
    fn sweep_is_reproducible() {
        let a = sweep(&[16, 32], 3, 9, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: seed % 1000,
            metric: 0.0,
        });
        let b = sweep(&[16, 32], 3, 9, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: seed % 1000,
            metric: 0.0,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_thread_budget_matches_default_sweep() {
        let job = |n: usize, seed: u64| TrialResult {
            n,
            seed,
            converged: true,
            interactions: seed % 97,
            metric: 0.0,
        };
        let serial = sweep_with_threads(&[16, 32], 3, 9, 1, job);
        let parallel = sweep(&[16, 32], 3, 9, job);
        assert_eq!(
            serial, parallel,
            "results are seed-determined, not thread-determined"
        );
    }

    #[test]
    fn different_sizes_get_different_seeds() {
        let grouped = sweep(&[8, 8], 2, 5, |n, seed| TrialResult {
            n,
            seed,
            converged: true,
            interactions: 0,
            metric: 0.0,
        });
        assert_ne!(grouped[0][0].seed, grouped[1][0].seed);
    }
}
