//! Markdown table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned markdown table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as GitHub-flavoured markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.push_row(vec!["10".into(), "3.5".into()]);
        t.push_row(vec!["20".into(), "7.1".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| n | value |"));
        assert!(md.contains("| 10 | 3.5 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn display_matches_markdown() {
        let t = Table::new("x", &["a"]);
        assert_eq!(format!("{t}"), t.to_markdown());
    }
}
