//! Experiments E01–E22: one per quantitative claim of the paper, plus the
//! engine experiments (E16 batched scale, E17 engine equivalence, E18
//! sharded scale, E19 dense counting — Theorems 1/2 on the count-based
//! engines, E20 hybrid engine switch points, E21 adversarial recovery —
//! reconvergence time after in-run fault injection on all four engines,
//! E22 scenario-matrix conformance — the ported related-work protocols,
//! Herman's tolerance-banded stabilization time, and the standard
//! protocol × engine × fault matrix).
//!
//! Each experiment sweeps population sizes, runs several seeded trials per size on
//! worker threads and renders a markdown [`Table`] comparing the measurement with
//! the paper's claim.  The exact sizes and trial counts depend on the [`Effort`]
//! level; `EXPERIMENTS.md` records a full run.

use std::path::PathBuf;
use std::sync::OnceLock;

use popcount::{
    all_counted, all_estimated, all_estimates_valid, all_exact, all_output_n,
    count_exact_dense_staged_checkpointed, count_exact_dense_staged_with, valid_estimates,
    Approximate, ApproximateBackup, ApproximateParams, CountExact, CountExactParams,
    DenseApproximate, DenseCountExact, ExactBackup, StableApproximate, StableCountExact,
    StagedCheckpoint, StintMode, TokenMergingCounter,
};
use ppproto::fast_leader_election::FastLeaderElectionProtocol;
use ppproto::junta::{all_inactive, junta_size, max_level, JuntaProtocol};
use ppproto::leader_election::LeaderElectionProtocol;
use ppproto::scenarios::{standard_matrix, MatrixConfig};
use ppproto::{
    dense_all_inactive, dense_max_level, DenseEpidemic, DenseJunta, FastLeaderElectionConfig,
    LeaderElectionConfig, OneWayEpidemic, PowersOfTwoLoadBalancing, SynchronizedClockProtocol,
};
use ppproto::{HermanTokens, SelfStabRanking, StochasticCoalescence, TradeoffElection};
use ppsim::{
    derive_seed, run_matrix, AdversarialRun, BatchedSimulator, CorruptionTarget, DenseAdapter,
    DenseSimulator, Engine, FaultEvent, FaultKind, FaultPlan, InitStrategy, Simulator,
    StateSpaceTracker,
};

use crate::fit::{n_log2_n, n_log_n, n_squared};
use crate::stats::Summary;
use crate::sweep::{sweep, sweep_with_threads, sweep_with_threads_checkpointed, TrialResult};
use crate::table::Table;

/// Crash-recovery policy for the long E-series runs (E19/E20), set once by
/// the CLI's `--checkpoint-dir` / `--checkpoint-every` flags: completed
/// sweep trials and mid-trial staged-runner snapshots land in `dir`, and a
/// re-run with the same flags resumes from whatever survived.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Directory holding the autosave snapshot files (created on first use).
    pub dir: PathBuf,
    /// Minimum interactions between staged-runner autosaves.
    pub every: u64,
}

static CHECKPOINTS: OnceLock<CheckpointPlan> = OnceLock::new();

/// Install the checkpoint plan for this process (first caller wins; the
/// E-series runners pick it up on their next sweep).
pub fn configure_checkpoints(plan: CheckpointPlan) {
    let _ = CHECKPOINTS.set(plan);
}

fn checkpoint_plan() -> Option<&'static CheckpointPlan> {
    CHECKPOINTS.get()
}

/// One-worker sweep, checkpointed at trial granularity when a
/// [`CheckpointPlan`] is installed (`tag` + master seed name the file).
fn sweep_serial_maybe_checkpointed<F>(
    tag: &str,
    sizes: &[usize],
    trials: usize,
    master: u64,
    job: F,
) -> Vec<Vec<TrialResult>>
where
    F: Fn(usize, u64) -> TrialResult + Sync,
{
    match checkpoint_plan() {
        Some(plan) => {
            let _ = std::fs::create_dir_all(&plan.dir);
            let path = plan.dir.join(format!("{tag}-m{master:x}.ppss"));
            sweep_with_threads_checkpointed(sizes, trials, master, 1, &path, job)
                .expect("sweep checkpoint read/write failed")
        }
        None => sweep_with_threads(sizes, trials, master, 1, job),
    }
}

/// Staged `CountExact` trial with mid-run autosave/resume when a
/// [`CheckpointPlan`] is installed; the snapshot is deleted once the trial
/// completes (the sweep-level checkpoint then carries its result).
fn staged_trial_maybe_checkpointed(
    tag: &str,
    params: CountExactParams,
    n: usize,
    seed: u64,
    engine: Engine,
    budget: u64,
    stints: StintMode,
) -> popcount::StagedCountOutcome {
    let Some(plan) = checkpoint_plan() else {
        return count_exact_dense_staged_with(params, n, seed, engine, budget, stints).unwrap();
    };
    let _ = std::fs::create_dir_all(&plan.dir);
    let mode = match stints {
        StintMode::Decoded => "",
        StintMode::Interned => "-interned",
    };
    let path = plan.dir.join(format!("{tag}-n{n}-s{seed:x}{mode}.ppss"));
    let spec = StagedCheckpoint {
        path: path.clone(),
        every: plan.every,
    };
    let resume = path.exists().then_some(path.as_path());
    let outcome = count_exact_dense_staged_checkpointed(
        params,
        n,
        seed,
        engine,
        budget,
        stints,
        Some(&spec),
        resume,
    )
    .unwrap();
    let _ = std::fs::remove_file(&path);
    outcome
}

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sizes, few trials — minutes for the whole suite.
    Quick,
    /// The sizes used for `EXPERIMENTS.md`.
    Full,
}

impl Effort {
    fn sizes(self, quick: &[usize], full: &[usize]) -> Vec<usize> {
        match self {
            Effort::Quick => quick.to_vec(),
            Effort::Full => full.to_vec(),
        }
    }

    fn trials(self, quick: usize, full: usize) -> usize {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// An experiment identifier together with its generated report table.
#[derive(Debug, Clone)]
#[must_use]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E01"`.
    pub id: &'static str,
    /// The paper claim being checked.
    pub claim: &'static str,
    /// The generated table.
    pub table: Table,
}

fn summarise_ratio(rows: &mut Table, results: &[Vec<TrialResult>], reference: fn(usize) -> f64) {
    for group in results {
        let n = group[0].n;
        let interactions: Vec<u64> = group.iter().map(|r| r.interactions).collect();
        let s = Summary::of_u64(&interactions);
        let converged = group.iter().filter(|r| r.converged).count();
        rows.push_row(vec![
            n.to_string(),
            format!("{}/{}", converged, group.len()),
            format!("{:.0}", s.median),
            format!("{:.2}", s.median / reference(n)),
            format!("{:.0}", s.min),
            format!("{:.0}", s.max),
        ]);
    }
}

/// E01 — Lemma 3: one-way epidemics complete within `O(n log n)` interactions.
pub fn e01_broadcast(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[256, 1024, 4096], &[256, 1024, 4096, 16384, 65536]);
    let trials = effort.trials(5, 10);
    let results = sweep(&sizes, trials, 0xE01, |n, seed| {
        let mut sim = Simulator::new(OneWayEpidemic::new(), n, seed).unwrap();
        sim.states_mut()[0] = 1;
        let outcome = sim.run_until(
            |s| s.states().iter().all(|&x| x == 1),
            n as u64,
            (200.0 * n_log_n(n)) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });
    let mut table = Table::new(
        "E01 — one-way epidemics (Lemma 3): interactions to inform all agents",
        &[
            "n",
            "converged",
            "median interactions",
            "median / (n log2 n)",
            "min",
            "max",
        ],
    );
    summarise_ratio(&mut table, &results, n_log_n);
    ExperimentReport {
        id: "E01",
        claim: "broadcast completes in O(n log n) interactions w.h.p.",
        table,
    }
}

/// E02 — Lemma 4: junta levels and junta size.
pub fn e02_junta(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[512, 2048, 8192], &[512, 2048, 8192, 32768, 131072]);
    let trials = effort.trials(5, 10);
    let results = sweep(&sizes, trials, 0xE02, |n, seed| {
        let mut sim = Simulator::new(JuntaProtocol::new(), n, seed).unwrap();
        let outcome = sim.run_until(
            |s| all_inactive(s.states()),
            n as u64,
            (100.0 * n_log_n(n)) as u64,
        );
        let level = max_level(sim.states());
        let size = junta_size(sim.states());
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: f64::from(level) + size as f64 / 1e9, // packed; unpacked below
        }
    });
    let mut table = Table::new(
        "E02 — junta process (Lemma 4): stabilisation time, maximal level, junta size",
        &[
            "n",
            "log2 log2 n",
            "median interactions / (n log2 n)",
            "levels (min..max)",
            "junta size (median)",
            "sqrt(n)·log2 n",
        ],
    );
    for group in &results {
        let n = group[0].n;
        let inter = Summary::of_u64(&group.iter().map(|r| r.interactions).collect::<Vec<_>>());
        let levels: Vec<f64> = group.iter().map(|r| r.metric.floor()).collect();
        let sizes_j: Vec<f64> = group
            .iter()
            .map(|r| (r.metric.fract() * 1e9).round())
            .collect();
        let lv = Summary::of(&levels);
        let js = Summary::of(&sizes_j);
        let n_f = n as f64;
        table.push_row(vec![
            n.to_string(),
            format!("{:.2}", n_f.log2().log2()),
            format!("{:.2}", inter.median / n_log_n(n)),
            format!("{:.0}..{:.0}", lv.min, lv.max),
            format!("{:.0}", js.median),
            format!("{:.0}", n_f.sqrt() * n_f.log2()),
        ]);
    }
    ExperimentReport {
        id: "E02",
        claim: "junta stabilises in O(n log n); log log n − 4 ≤ level* ≤ log log n + 8; junta = O(√n log n)",
        table,
    }
}

/// E03 — Lemma 5: phase lengths of the junta-driven phase clock.
pub fn e03_phase_clock(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[512, 2048], &[512, 2048, 8192, 32768]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE03, |n, seed| {
        let proto = SynchronizedClockProtocol::new(16);
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        // Let the clock start running, then measure the time for every agent to
        // advance by three further phases.
        sim.run((20.0 * n_log_n(n)) as u64);
        let base = sim.states().iter().map(|s| s.clock.phase).min().unwrap();
        let start = sim.interactions();
        let target = base + 3;
        let outcome = sim.run_until(
            move |s| s.states().iter().all(|st| st.clock.phase >= target),
            n as u64,
            start + (300.0 * n_log_n(n)) as u64,
        );
        let per_phase = (outcome
            .interactions()
            .unwrap_or(u64::MAX)
            .saturating_sub(start))
            / 3;
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: per_phase,
            metric: 0.0,
        }
    });
    let mut table = Table::new(
        "E03 — phase clock (Lemma 5): interactions per phase (m = 16 hours)",
        &[
            "n",
            "converged",
            "median per-phase interactions",
            "median / (n log2 n)",
            "min",
            "max",
        ],
    );
    summarise_ratio(&mut table, &results, n_log_n);
    ExperimentReport {
        id: "E03",
        claim: "every phase spans Θ(n log n) interactions",
        table,
    }
}

/// E04 — Lemma 6: leader election of \[18\].
pub fn e04_leader_election(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[256, 1024], &[256, 1024, 4096, 16384]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE04, |n, seed| {
        let proto = LeaderElectionProtocol::new(16, LeaderElectionConfig { outer_hours: 32 });
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        let outcome = sim.run_until(
            |s| s.states().iter().all(|a| a.election.done),
            (n * 10) as u64,
            (300.0 * n_log2_n(n)) as u64,
        );
        let leaders = sim.states().iter().filter(|a| a.election.contender).count();
        TrialResult {
            n,
            seed,
            converged: outcome.converged() && leaders == 1,
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: leaders as f64,
        }
    });
    let mut table = Table::new(
        "E04 — leader election of [18] (Lemma 6): interactions until every agent sets leaderDone",
        &[
            "n",
            "unique leader",
            "median interactions",
            "median / (n log2^2 n)",
            "min",
            "max",
        ],
    );
    summarise_ratio(&mut table, &results, n_log2_n);
    ExperimentReport {
        id: "E04",
        claim: "unique leader within O(n log² n) interactions, O(log log n) states",
        table,
    }
}

/// E05 — Lemma 7: `FastLeaderElection`.
pub fn e05_fast_leader_election(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[256, 1024], &[256, 1024, 4096, 16384, 65536]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE05, |n, seed| {
        let proto = FastLeaderElectionProtocol::new(
            16,
            FastLeaderElectionConfig {
                level_offset: 2,
                total_phases: 32,
            },
        );
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        let outcome = sim.run_until(
            |s| s.states().iter().all(|a| a.election.done),
            (n * 10) as u64,
            (2_000.0 * n_log_n(n)) as u64,
        );
        let leaders = sim.states().iter().filter(|a| a.election.contender).count();
        TrialResult {
            n,
            seed,
            converged: outcome.converged() && leaders == 1,
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: leaders as f64,
        }
    });
    let mut table = Table::new(
        "E05 — FastLeaderElection (Lemma 7): interactions until every agent sets leaderDone",
        &[
            "n",
            "unique leader",
            "median interactions",
            "median / (n log2 n)",
            "min",
            "max",
        ],
    );
    summarise_ratio(&mut table, &results, n_log_n);
    ExperimentReport {
        id: "E05",
        claim: "unique leader within O(n log n) interactions, Õ(n) states",
        table,
    }
}

/// E06 — Lemma 8: powers-of-two load balancing.
pub fn e06_load_balancing(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[1024, 4096], &[1024, 4096, 16384, 65536]);
    let trials = effort.trials(5, 10);
    let results = sweep(&sizes, trials, 0xE06, |n, seed| {
        // Inject 2^κ ≤ 3n/4 tokens on a single agent (the largest admissible power).
        let kappa = ((0.75 * n as f64).log2().floor()) as i32;
        let mut sim = Simulator::new(PowersOfTwoLoadBalancing::new(), n, seed).unwrap();
        sim.states_mut()[0] = kappa;
        let budget = (16.0 * n_log_n(n)) as u64;
        let outcome = sim.run_until(|s| s.states().iter().all(|&k| k <= 0), n as u64, budget);
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(budget),
            metric: f64::from(kappa),
        }
    });
    let mut table = Table::new(
        "E06 — powers-of-two load balancing (Lemma 8): interactions until max load 1 (2^κ ≈ 3n/4 tokens)",
        &["n", "within 16·n·log2 n", "median interactions", "median / (n log2 n)", "min", "max"],
    );
    summarise_ratio(&mut table, &results, n_log_n);
    ExperimentReport {
        id: "E06",
        claim: "a single pile of ≤ 3n/4 tokens spreads to unit loads within 16·n·log n interactions w.h.p.",
        table,
    }
}

/// Shared runner for E07/E08: the full `Approximate` protocol.
fn run_approximate(n: usize, seed: u64) -> (bool, u64, Option<i32>) {
    let proto = Approximate::new(ApproximateParams::default());
    let mut sim = Simulator::new(proto, n, seed).unwrap();
    let outcome = sim.run_until(
        |s| all_estimated(s.states()),
        (n * 20) as u64,
        (3_000.0 * n_log2_n(n)) as u64,
    );
    let estimate = sim.output_stats().unanimous().cloned().flatten();
    (
        outcome.converged(),
        outcome.interactions().unwrap_or(u64::MAX),
        estimate,
    )
}

/// E07 — Lemma 9: the Search Protocol stops with `3n/4 < 2^k ≤ 2^⌈log n⌉`.
pub fn e07_search(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[200, 500, 1000], &[200, 500, 1000, 2000, 5000]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE07, |n, seed| {
        let (converged, interactions, estimate) = run_approximate(n, seed);
        let in_range = estimate.is_some_and(|k| {
            let load = 2f64.powi(k);
            load > 0.75 * n as f64 && k <= (n as f64).log2().ceil() as i32
        });
        TrialResult {
            n,
            seed,
            converged: converged && in_range,
            interactions,
            metric: estimate.map_or(f64::NAN, f64::from),
        }
    });
    let mut table = Table::new(
        "E07 — Search Protocol (Lemma 9): the search stops with 3n/4 < 2^k ≤ 2^⌈log2 n⌉",
        &[
            "n",
            "k in range",
            "observed k values",
            "⌊log2 n⌋ / ⌈log2 n⌉",
        ],
    );
    for group in &results {
        let n = group[0].n;
        let mut ks: Vec<i32> = group.iter().map(|r| r.metric as i32).collect();
        ks.sort_unstable();
        ks.dedup();
        let ok = group.iter().filter(|r| r.converged).count();
        let (floor, ceil) = valid_estimates(n);
        table.push_row(vec![
            n.to_string(),
            format!("{}/{}", ok, group.len()),
            format!("{ks:?}"),
            format!("{floor} / {ceil}"),
        ]);
    }
    ExperimentReport {
        id: "E07",
        claim: "search stops after ≤ ⌈log n⌉ rounds with 3n/4 < 2^k ≤ 2^⌈log n⌉",
        table,
    }
}

/// E08 — Theorem 1.1: protocol `Approximate`.
pub fn e08_approximate(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[200, 500, 1000], &[200, 500, 1000, 2000, 5000, 10000]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE08, |n, seed| {
        let (converged, interactions, estimate) = run_approximate(n, seed);
        let (floor, ceil) = valid_estimates(n);
        let valid = estimate == Some(floor) || estimate == Some(ceil);
        TrialResult {
            n,
            seed,
            converged: converged && valid,
            interactions,
            metric: estimate.map_or(f64::NAN, f64::from),
        }
    });
    let mut table = Table::new(
        "E08 — protocol Approximate (Theorem 1.1): output ∈ {⌊log2 n⌋, ⌈log2 n⌉}, convergence in O(n log² n)",
        &["n", "valid output", "median interactions", "median / (n log2^2 n)", "min", "max"],
    );
    summarise_ratio(&mut table, &results, n_log2_n);
    ExperimentReport {
        id: "E08",
        claim:
            "Approximate outputs ⌊log n⌋ or ⌈log n⌉ and converges within O(n log² n) interactions",
        table,
    }
}

/// Shared runner for E09–E11: the full `CountExact` protocol.
fn run_count_exact(n: usize, seed: u64) -> (bool, u64, Option<i64>, Option<u64>) {
    let proto = CountExact::new(CountExactParams::default());
    let mut sim = Simulator::new(proto, n, seed).unwrap();
    let outcome = sim.run_until(
        move |s| all_counted(s.protocol(), s.states(), n),
        (n * 20) as u64,
        (6_000.0 * n_log_n(n)) as u64,
    );
    let approx = sim.states().iter().find_map(|a| a.approximation());
    let output = sim.output_stats().unanimous().cloned().flatten();
    (
        outcome.converged(),
        outcome.interactions().unwrap_or(u64::MAX),
        approx,
        output,
    )
}

/// E09 — Lemma 10: the approximation stage computes `log₂ n ± 3`.
pub fn e09_approx_stage(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[300, 1000], &[300, 1000, 3000, 10000]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE09, |n, seed| {
        let (converged, interactions, approx, _) = run_count_exact(n, seed);
        let err = approx.map_or(f64::NAN, |k| k as f64 - (n as f64).log2());
        TrialResult {
            n,
            seed,
            converged: converged && err.abs() <= 3.0,
            interactions,
            metric: err,
        }
    });
    let mut table = Table::new(
        "E09 — approximation stage (Lemma 10): error of k against log2 n",
        &["n", "|k − log2 n| ≤ 3", "errors k − log2 n (min..max)"],
    );
    for group in &results {
        let n = group[0].n;
        let errs: Vec<f64> = group.iter().map(|r| r.metric).collect();
        let s = Summary::of(&errs);
        let ok = group.iter().filter(|r| r.converged).count();
        table.push_row(vec![
            n.to_string(),
            format!("{}/{}", ok, group.len()),
            format!("{:.2}..{:.2}", s.min, s.max),
        ]);
    }
    ExperimentReport {
        id: "E09",
        claim: "the approximation stage computes log n ± 3",
        table,
    }
}

/// E10/E11 — Lemma 11 and Theorem 2: `CountExact` outputs exactly `n` within
/// `O(n log n)` interactions.
pub fn e11_count_exact(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[300, 1000], &[300, 1000, 3000, 10000, 30000]);
    let trials = effort.trials(3, 8);
    let results = sweep(&sizes, trials, 0xE11, |n, seed| {
        let (converged, interactions, _, output) = run_count_exact(n, seed);
        TrialResult {
            n,
            seed,
            converged: converged && output == Some(n as u64),
            interactions,
            metric: output.map_or(f64::NAN, |o| o as f64),
        }
    });
    let mut table = Table::new(
        "E10/E11 — CountExact (Lemma 11, Theorem 2): exact output and O(n log n) interactions",
        &[
            "n",
            "exact output",
            "median interactions",
            "median / (n log2 n)",
            "min",
            "max",
        ],
    );
    summarise_ratio(&mut table, &results, n_log_n);
    ExperimentReport {
        id: "E11",
        claim: "CountExact outputs exactly n within O(n log n) interactions",
        table,
    }
}

/// E12 — Lemmas 12/13: the backup protocols.
pub fn e12_backup(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[64, 128, 256], &[64, 128, 256, 512, 1024]);
    let trials = effort.trials(3, 8);
    let approx = sweep(&sizes, trials, 0xE12, |n, seed| {
        let mut sim = Simulator::new(ApproximateBackup::new(), n, seed).unwrap();
        let expected = (n as f64).log2().floor() as i32;
        let outcome = sim.run_until(
            move |s| s.states().iter().all(|st| st.k_max == expected),
            (n * n / 8).max(100) as u64,
            (100.0 * n_squared(n) * (n as f64).log2()) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });
    let exact = sweep(&sizes, trials, 0xE12 + 1, |n, seed| {
        let mut sim = Simulator::new(ExactBackup::new(), n, seed).unwrap();
        let outcome = sim.run_until(
            move |s| s.states().iter().all(|st| st.count == n as u64),
            (n * n / 8).max(100) as u64,
            (100.0 * n_squared(n) * (n as f64).log2()) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });
    let mut table = Table::new(
        "E12 — backup protocols (Lemmas 12/13): interactions to converge, divided by n²",
        &[
            "n",
            "approx backup: median / n²",
            "exact backup: median / n²",
            "all correct",
        ],
    );
    for (ga, ge) in approx.iter().zip(&exact) {
        let n = ga[0].n;
        let sa = Summary::of_u64(&ga.iter().map(|r| r.interactions).collect::<Vec<_>>());
        let se = Summary::of_u64(&ge.iter().map(|r| r.interactions).collect::<Vec<_>>());
        let ok = ga.iter().chain(ge).filter(|r| r.converged).count();
        table.push_row(vec![
            n.to_string(),
            format!("{:.2}", sa.median / n_squared(n)),
            format!("{:.2}", se.median / n_squared(n)),
            format!("{}/{}", ok, ga.len() + ge.len()),
        ]);
    }
    ExperimentReport {
        id: "E12",
        claim: "backup protocols converge to ⌊log n⌋ / exact n within O(n² log² n) / O(n² log n) interactions",
        table,
    }
}

/// E13 — baseline comparison: the `Θ(n²)` token-merging counter versus `CountExact`.
pub fn e13_baseline_comparison(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[128, 256, 512], &[128, 256, 512, 1024, 2048]);
    let trials = effort.trials(3, 6);
    let baseline = sweep(&sizes, trials, 0xE13, |n, seed| {
        let mut sim = Simulator::new(TokenMergingCounter::new(), n, seed).unwrap();
        let outcome = sim.run_until(
            move |s| all_output_n(s.states(), n),
            (n * n / 8).max(100) as u64,
            (200.0 * n_squared(n)) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });
    let fast = sweep(&sizes, trials, 0xE13 + 1, |n, seed| {
        let (converged, interactions, _, output) = run_count_exact(n, seed);
        TrialResult {
            n,
            seed,
            converged: converged && output == Some(n as u64),
            interactions,
            metric: 0.0,
        }
    });
    let mut table = Table::new(
        "E13 — who wins: Θ(n²) token-merging baseline vs CountExact (median interactions)",
        &[
            "n",
            "baseline",
            "CountExact",
            "speed-up",
            "baseline / n²",
            "CountExact / (n log2 n)",
        ],
    );
    for (gb, gf) in baseline.iter().zip(&fast) {
        let n = gb[0].n;
        let sb = Summary::of_u64(&gb.iter().map(|r| r.interactions).collect::<Vec<_>>());
        let sf = Summary::of_u64(&gf.iter().map(|r| r.interactions).collect::<Vec<_>>());
        table.push_row(vec![
            n.to_string(),
            format!("{:.0}", sb.median),
            format!("{:.0}", sf.median),
            format!("{:.2}×", sb.median / sf.median),
            format!("{:.2}", sb.median / n_squared(n)),
            format!("{:.0}", sf.median / n_log_n(n)),
        ]);
    }
    ExperimentReport {
        id: "E13",
        claim:
            "the uniform baseline needs Θ(n²) interactions; CountExact wins by a factor ≈ n / log n",
        table,
    }
}

/// E14 — Theorem 1.2/1.3 and Appendix F: the stable variants.
pub fn e14_stable(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[200, 400], &[200, 400, 800, 1600]);
    let trials = effort.trials(3, 6);
    let approx = sweep(&sizes, trials, 0xE14, |n, seed| {
        let proto = StableApproximate::default();
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        let outcome = sim.run_until(
            move |s| all_estimates_valid(s.protocol(), s.states(), n),
            (n * 20) as u64,
            (5_000.0 * n_log2_n(n)) as u64,
        );
        let errors = sim.states().iter().filter(|a| a.error).count();
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: errors as f64,
        }
    });
    let exact = sweep(&sizes, trials, 0xE14 + 1, |n, seed| {
        let proto = StableCountExact::default();
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        let outcome = sim.run_until(
            move |s| all_exact(s.protocol(), s.states(), n),
            (n * 20) as u64,
            (6_000.0 * n_log_n(n)) as u64,
        );
        let errors = sim.states().iter().filter(|a| a.error).count();
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: errors as f64,
        }
    });
    let mut table = Table::new(
        "E14 — stable variants: correct output of the hybrid protocols (error path taken when detection fires)",
        &["n", "stable Approximate correct", "fallbacks", "stable CountExact correct", "fallbacks"],
    );
    for (ga, ge) in approx.iter().zip(&exact) {
        let n = ga[0].n;
        table.push_row(vec![
            n.to_string(),
            format!("{}/{}", ga.iter().filter(|r| r.converged).count(), ga.len()),
            format!("{}", ga.iter().filter(|r| r.metric > 0.0).count()),
            format!("{}/{}", ge.iter().filter(|r| r.converged).count(), ge.len()),
            format!("{}", ge.iter().filter(|r| r.metric > 0.0).count()),
        ]);
    }
    ExperimentReport {
        id: "E14",
        claim: "the hybrid protocols always reach a correct output, falling back to the backup when error detection fires",
        table,
    }
}

/// E15 — state-space accounting (Figures 1–3): distinct states used per protocol.
pub fn e15_state_space(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[200, 500], &[200, 500, 1000, 2000, 5000]);
    let trials = effort.trials(2, 4);
    let approx = sweep(&sizes, trials, 0xE15, |n, seed| {
        let proto = Approximate::new(ApproximateParams::default());
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        let mut tracker = StateSpaceTracker::new();
        let outcome = sim.run_until_observed(
            |s| all_estimated(s.states()),
            |s| {
                // Normalise the unbounded book-keeping fields (absolute phase
                // counters) the way the paper's constant-size counters would.
                for a in s.states() {
                    let mut key = *a;
                    key.sync.clock.phase %= 5;
                    key.election.outer.phase = 0;
                    tracker.record_state(&key);
                }
            },
            (n * 5) as u64,
            (3_000.0 * n_log2_n(n)) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: tracker.distinct_states() as f64,
        }
    });
    let exact = sweep(&sizes, trials, 0xE15 + 1, |n, seed| {
        let proto = CountExact::new(CountExactParams::default());
        let mut sim = Simulator::new(proto, n, seed).unwrap();
        let mut tracker = StateSpaceTracker::new();
        let outcome = sim.run_until_observed(
            move |s| all_counted(s.protocol(), s.states(), n),
            |s| {
                for a in s.states() {
                    let mut key = *a;
                    key.sync.clock.phase %= 8;
                    key.stage.tag = 0;
                    key.stage.origin_phase = 0;
                    key.stage.start_phase = 0;
                    tracker.record_state(&key);
                }
            },
            (n * 5) as u64,
            (6_000.0 * n_log_n(n)) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: tracker.distinct_states() as f64,
        }
    });
    let mut table = Table::new(
        "E15 — empirical state usage (sampled every n/5 interactions, phase counters normalised)",
        &[
            "n",
            "Approximate distinct states",
            "log2 n · log2 log2 n",
            "CountExact distinct states",
            "n",
        ],
    );
    for (ga, ge) in approx.iter().zip(&exact) {
        let n = ga[0].n;
        let sa = Summary::of(&ga.iter().map(|r| r.metric).collect::<Vec<_>>());
        let se = Summary::of(&ge.iter().map(|r| r.metric).collect::<Vec<_>>());
        let n_f = n as f64;
        table.push_row(vec![
            n.to_string(),
            format!("{:.0}", sa.median),
            format!("{:.0}", n_f.log2() * n_f.log2().log2()),
            format!("{:.0}", se.median),
            n.to_string(),
        ]);
    }
    ExperimentReport {
        id: "E15",
        claim: "Approximate uses O(log n log log n) states, CountExact Õ(n) states (empirical count of distinct sampled states)",
        table,
    }
}

/// E16 — the batched count-based engine at population sizes the sequential
/// engine cannot serve: Lemma 3 (epidemics) and Lemma 4 (junta levels) at
/// `n` up to 10⁶/10⁷.
///
/// Every trial uses [`BatchedSimulator`]; the interesting column is the
/// flat `median / (n log₂ n)` ratio persisting two to three orders of
/// magnitude beyond the sequential experiments E01/E02 — the regime the
/// related space–time-trade-off and coalescence reproductions need.
pub fn e16_batched_scale(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(
        &[10_000, 100_000, 1_000_000],
        &[10_000, 100_000, 1_000_000, 10_000_000],
    );
    let trials = effort.trials(3, 5);
    let results = sweep(&sizes, trials, 0xE16, |n, seed| {
        let mut sim = BatchedSimulator::new(DenseEpidemic, n, seed).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(
            |s| s.count_of(1) == s.population(),
            n as u64,
            (200.0 * n_log_n(n)) as u64,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });
    let mut table = Table::new(
        "E16 — batched engine at scale: epidemic completion up to n = 10⁷ (Lemma 3 regime)",
        &[
            "n",
            "converged",
            "median interactions",
            "median / (n log2 n)",
            "min",
            "max",
        ],
    );
    summarise_ratio(&mut table, &results, n_log_n);

    // Lemma 4 observable at scale: the maximal junta level tracks log log n.
    let junta_sizes: Vec<usize> = sizes.iter().copied().filter(|&n| n <= 1_000_000).collect();
    let junta_results = sweep(&junta_sizes, trials, 0xE16 + 1, |n, seed| {
        let d = DenseJunta::new();
        let mut sim = BatchedSimulator::new(d, n, seed).unwrap();
        let outcome = sim.run_until(
            |s| dense_all_inactive(s.protocol(), s.counts()),
            n as u64,
            (200.0 * n_log_n(n)) as u64,
        );
        let level = dense_max_level(sim.protocol(), sim.counts());
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: f64::from(level),
        }
    });
    for group in &junta_results {
        let n = group[0].n;
        let levels: Vec<f64> = group.iter().map(|r| r.metric).collect();
        let s = Summary::of(&levels);
        table.push_row(vec![
            format!("{n} (junta)"),
            format!(
                "{}/{}",
                group.iter().filter(|r| r.converged).count(),
                group.len()
            ),
            format!("max level {:.1}", s.median),
            format!("log2 log2 n = {:.2}", (n as f64).log2().log2()),
            format!("{:.0}", s.min),
            format!("{:.0}", s.max),
        ]);
    }
    ExperimentReport {
        id: "E16",
        claim: "the batched engine sustains the paper's asymptotics at n = 10⁶–10⁷, far beyond the sequential engine's practical range",
        table,
    }
}

/// E17 — engine equivalence: the batched and sequential engines produce the
/// same convergence-time distribution for the identical dense transition
/// system.
pub fn e17_engine_equivalence(effort: Effort) -> ExperimentReport {
    let sizes = effort.sizes(&[512, 2048], &[512, 2048, 8192]);
    let trials = effort.trials(8, 20);

    let batched = sweep(&sizes, trials, 0xE17, |n, seed| {
        let mut sim = BatchedSimulator::new(DenseEpidemic, n, seed).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(
            |s| s.count_of(1) == s.population(),
            (n / 8).max(1) as u64,
            u64::MAX >> 1,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });
    let sequential = sweep(&sizes, trials, 0xE17 + 1, |n, seed| {
        let mut sim = Simulator::new(DenseAdapter(DenseEpidemic), n, seed).unwrap();
        sim.states_mut()[0] = 1;
        let outcome = sim.run_until(
            |s| s.states().iter().all(|&x| x == 1),
            (n / 8).max(1) as u64,
            u64::MAX >> 1,
        );
        TrialResult {
            n,
            seed,
            converged: outcome.converged(),
            interactions: outcome.interactions().unwrap_or(u64::MAX),
            metric: 0.0,
        }
    });

    let mut table = Table::new(
        "E17 — engine equivalence: epidemic convergence times, batched vs sequential",
        &[
            "n",
            "batched median",
            "sequential median",
            "ratio",
            "batched IQR-ish",
            "sequential IQR-ish",
        ],
    );
    for (bg, sg) in batched.iter().zip(&sequential) {
        let n = bg[0].n;
        let b: Vec<u64> = bg.iter().map(|r| r.interactions).collect();
        let s: Vec<u64> = sg.iter().map(|r| r.interactions).collect();
        let (bs, ss) = (Summary::of_u64(&b), Summary::of_u64(&s));
        table.push_row(vec![
            n.to_string(),
            format!("{:.0}", bs.median),
            format!("{:.0}", ss.median),
            format!("{:.3}", bs.median / ss.median),
            format!("[{:.0}, {:.0}]", bs.min, bs.max),
            format!("[{:.0}, {:.0}]", ss.min, ss.max),
        ]);
    }
    ExperimentReport {
        id: "E17",
        claim: "batched and sequential engines draw from the same convergence-time distribution (median ratio ≈ 1)",
        table,
    }
}

/// E18 — the sharded engine at scale: epidemic convergence wall-clock for
/// the batched engine versus the sharded engine (8 shards) across thread
/// counts, at `n` up to 10⁹.
///
/// Every trial drives the same dense epidemic through the [`Engine`] /
/// [`DenseSimulator`] selection layer, so the rows differ only in the engine
/// configuration.  Trials run serially ([`sweep_with_threads`] with one
/// trial-level worker): the sharded engine brings its own threads, and
/// nesting the two parallelism levels would corrupt the wall-clock column.
pub fn e18_sharded_scale(effort: Effort) -> ExperimentReport {
    use std::time::Instant;

    let sizes = effort.sizes(
        &[100_000, 1_000_000],
        &[1_000_000, 10_000_000, 100_000_000, 1_000_000_000],
    );
    let trials = effort.trials(2, 3);
    let thread_counts: &[usize] = match effort {
        Effort::Quick => &[1, 2],
        Effort::Full => &[1, 2, 4, 8, 16],
    };

    let mut table = Table::new(
        "E18 — sharded engine at scale: epidemic convergence, batched vs sharded (8 shards), threads 1–16",
        &[
            "n",
            "engine",
            "converged",
            "median seconds",
            "G interactions/s",
            "speedup vs batched",
        ],
    );

    let run_config = |engine: Engine, n: usize, master: u64| -> Vec<TrialResult> {
        sweep_with_threads(&[n], trials, master, 1, |n, seed| {
            let start = Instant::now();
            let mut sim = DenseSimulator::new(engine, DenseEpidemic, n, seed).unwrap();
            sim.transfer(0, 1, 1).unwrap();
            let outcome = sim.run_until(
                |s| s.count_of(1) == s.population(),
                n as u64,
                (200.0 * n_log_n(n)) as u64,
            );
            TrialResult {
                n,
                seed,
                converged: outcome.converged(),
                interactions: outcome.interactions().unwrap_or(u64::MAX),
                metric: start.elapsed().as_secs_f64(),
            }
        })
        .remove(0)
    };
    let push_row =
        |table: &mut Table, label: String, group: &[TrialResult], base: Option<f64>| -> f64 {
            let secs = Summary::of(&group.iter().map(|r| r.metric).collect::<Vec<_>>());
            let inter = Summary::of(
                &group
                    .iter()
                    .map(|r| r.interactions as f64)
                    .collect::<Vec<_>>(),
            );
            let n = group[0].n;
            table.push_row(vec![
                n.to_string(),
                label,
                format!(
                    "{}/{}",
                    group.iter().filter(|r| r.converged).count(),
                    group.len()
                ),
                format!("{:.3}", secs.median),
                format!("{:.2}", inter.median / secs.median / 1e9),
                base.map_or_else(
                    || "1.00× (baseline)".into(),
                    |b| format!("{:.2}×", b / secs.median),
                ),
            ]);
            secs.median
        };

    for (si, &n) in sizes.iter().enumerate() {
        let batched = run_config(Engine::Batched, n, 0xE18 + 100 * si as u64);
        let base = push_row(&mut table, "batched".into(), &batched, None);
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let engine = Engine::Sharded { shards: 8, threads };
            let group = run_config(engine, n, 0xE18 + 100 * si as u64 + 1 + ti as u64);
            push_row(
                &mut table,
                format!("sharded s=8 t={threads}"),
                &group,
                Some(base),
            );
        }
    }
    ExperimentReport {
        id: "E18",
        claim: "the sharded engine sustains epidemic convergence to n = 10⁹ and beats the batched engine wherever n ≥ 10⁷",
        table,
    }
}

/// E19 — Theorems 1/2 on the count-based engines: the composed counting
/// protocols (`DenseApproximate`, `DenseCountExact`) run to a unanimous valid
/// output on the batched engine and one sharded configuration.
///
/// This is the experiment the dense encodings exist for: before them, E08 and
/// E11 capped at `n ≈ 10⁴` on the sequential engine.  The dense encodings are
/// exact (`crates/core/tests/dense_equivalence.rs` pins dense ↔ sequential
/// bisimulation and KS equivalence), so the numbers here are Theorem 1/2
/// measurements, not approximations.  `CountExact` runs with
/// [`CountExactParams::dense_at_scale`] — the paper's `γ = 8` election offset
/// (1-bit rounds), which keeps the election's live value classes `O(log n)`
/// so the configuration stays batchable; the `dense states` column reports
/// the distinct states each run discovered (the empirical side of the
/// `O(log n · log log n)` / `Õ(n)` state bounds, cf. E15).
///
/// Trials run serially: a single dense trial at `n = 10⁶` is minutes of
/// wall-clock (see the README's reproducing table), and the sharded engine
/// brings its own worker threads.
pub fn e19_dense_counting(effort: Effort) -> ExperimentReport {
    use std::time::Instant;

    // One seeded trial per engine at the headline size: a single converged
    // Approximate run at n = 10⁶ is ≈ 10¹¹ interactions (phase lengths grow
    // with n/|junta| ~ √n, so ~200 phases of ~6·10⁸ each) — about an hour of
    // single-core wall-clock.  The Quick tier runs n = 10⁴ with two trials
    // for a distributional sanity check; larger sweeps (10⁷⁺) go through
    // `bench_batched_json --workload approximate --sizes ...` on real
    // multicore hardware.
    let approx_sizes = effort.sizes(&[10_000], &[1_000_000]);
    let exact_sizes = effort.sizes(&[10_000], &[1_000_000]);
    let trials = effort.trials(2, 1);

    let mut table = Table::new(
        "E19 — dense counting (Theorems 1/2): Approximate and CountExact on the count-based engines",
        &[
            "n",
            "protocol @ engine",
            "valid output",
            "median interactions",
            "median / reference",
            "dense states",
            "median seconds",
        ],
    );

    // Both runners stop at the first *unanimous* output (all agents agree on
    // some value — the composition's stable configuration) and record whether
    // that value is valid separately: waiting for a unanimous *valid* value
    // would spin forever on the rare run whose search overshoots.
    let run_approximate = |engine: Engine, n: usize, master: u64, trials: usize| {
        sweep_serial_maybe_checkpointed("e19-approximate", &[n], trials, master, |n, seed| {
            let start = Instant::now();
            let proto = DenseApproximate::new(ApproximateParams::default());
            let handle = proto.clone(); // shares the interner: reads the state census
            let mut sim = DenseSimulator::new(engine, proto, n, seed).unwrap();
            let (floor, ceil) = valid_estimates(n);
            let outcome = sim.run_until(
                |s| matches!(s.output_stats().unanimous(), Some(&Some(_))),
                (n as u64) * 50,
                (n as u64).saturating_mul(400_000),
            );
            let valid = matches!(sim.output_stats().unanimous(),
                                 Some(&Some(k)) if k == floor || k == ceil);
            TrialResult {
                n,
                seed,
                converged: outcome.converged() && valid,
                interactions: outcome.interactions().unwrap_or(u64::MAX),
                metric: handle.states_discovered() as f64 + start.elapsed().as_secs_f64() / 1e9,
            }
        })
        .remove(0)
    };
    // CountExact runs on the hybrid engine (`count_exact_dense_staged`):
    // count-based while the census stays narrow (stages 1–2), per-agent
    // through the refinement, automatic migration in between — Theorem 2's
    // Õ(n) states are real, and the refinement's Θ(n) live loads degenerate
    // any count-based representation (see `popcount::exact::staged`).  Note
    // the `dense states` column now counts the *whole run's* interned census
    // (the hybrid per-agent stint keeps interning; ≈ 7.5n at n = 10⁵) — the
    // PR 3 numbers counted only the stage-1–2 window (~7·10⁴ at n = 10⁶)
    // because the struct-based refinement never touched the interner.
    let run_count_exact = |engine: Engine, n: usize, master: u64, trials: usize| {
        sweep_serial_maybe_checkpointed("e19-countexact", &[n], trials, master, |n, seed| {
            let start = Instant::now();
            let outcome = staged_trial_maybe_checkpointed(
                "e19-countexact-staged",
                CountExactParams::dense_at_scale(n),
                n,
                seed,
                engine,
                (n as u64).saturating_mul(300_000),
                StintMode::Decoded,
            );
            TrialResult {
                n,
                seed,
                converged: outcome.converged && outcome.output == Some(n as u64),
                interactions: outcome.interactions,
                metric: outcome.states_discovered as f64 + start.elapsed().as_secs_f64() / 1e9,
            }
        })
        .remove(0)
    };

    let push = |table: &mut Table,
                label: String,
                group: &[TrialResult],
                reference: fn(usize) -> f64,
                elapsed: &[f64]| {
        let n = group[0].n;
        let inter = Summary::of_u64(&group.iter().map(|r| r.interactions).collect::<Vec<_>>());
        let states = Summary::of(&group.iter().map(|r| r.metric.floor()).collect::<Vec<_>>());
        let secs = Summary::of(elapsed);
        table.push_row(vec![
            n.to_string(),
            label,
            format!(
                "{}/{}",
                group.iter().filter(|r| r.converged).count(),
                group.len()
            ),
            format!("{:.3e}", inter.median),
            format!("{:.1}", inter.median / reference(n)),
            format!("{:.0}", states.median),
            format!("{:.1}", secs.median),
        ]);
    };

    // The wall-clock rides in the metric's fractional part (seconds / 1e9
    // never collides with the integer state census).
    let secs_of = |group: &[TrialResult]| -> Vec<f64> {
        group.iter().map(|r| r.metric.fract() * 1e9).collect()
    };

    let sharded = Engine::Sharded {
        shards: 2,
        threads: 1,
    };
    for (si, &n) in approx_sizes.iter().enumerate() {
        let g = run_approximate(Engine::Batched, n, 0xE19 + 10 * si as u64, trials);
        push(
            &mut table,
            "Approximate @ batched".into(),
            &g,
            n_log2_n,
            &secs_of(&g),
        );
        if si == 0 {
            let g = run_approximate(sharded, n, 0xE19 + 10 * si as u64 + 5, 1);
            push(
                &mut table,
                "Approximate @ sharded s=2".into(),
                &g,
                n_log2_n,
                &secs_of(&g),
            );
        }
    }
    for (si, &n) in exact_sizes.iter().enumerate() {
        let g = run_count_exact(Engine::Batched, n, 0xE19 + 100 + 10 * si as u64, trials);
        push(
            &mut table,
            "CountExact @ batched staged".into(),
            &g,
            n_log_n,
            &secs_of(&g),
        );
        if si == 0 {
            let g = run_count_exact(sharded, n, 0xE19 + 100 + 10 * si as u64 + 5, 1);
            push(
                &mut table,
                "CountExact @ sharded s=2 staged".into(),
                &g,
                n_log_n,
                &secs_of(&g),
            );
        }
    }

    ExperimentReport {
        id: "E19",
        claim: "the composed counting protocols converge to valid outputs at n = 10⁶⁺ on the \
                batched and sharded engines (Theorems 1/2 beyond the sequential range)",
        table,
    }
}

/// E20 — the hybrid engine on the composed counting protocols: switch
/// points and interaction counts of the automatic dense ↔ per-agent
/// migration, against the PR 3 policy of pinning the hand-off at the end of
/// the approximation stage.
///
/// Four configurations per `CountExact` size:
///
/// * **hybrid (auto, decoded)** — `count_exact_dense_staged`: the occupancy
///   monitor detects the refinement transient by its `q_occ² > c·√n`
///   signature and migrates on its own; per-agent stints step **native
///   structs** through the protocol's agent-state codec (no interner traffic
///   in the hot loop).
/// * **hybrid (auto, interned)** — the same master seed with
///   [`StintMode::Interned`]: per-agent stints step interned `u32` indices
///   through `transition`, the PR 4 behaviour.  Dividing each row's agent
///   interactions by its *agent-leg s* gives the measured decoded-vs-
///   interned refinement-leg throughput (measured 2.1–2.2× at `n = 10⁵`);
///   the *dense states* column shows the census collapse — the decoded
///   stint interns only boundary configurations, not the `Θ(n)` transient
///   (5.1·10⁴ vs 5.6·10⁵ at `n = 10⁵`).
/// * **hybrid (pinned @ ApxDone)** — the monitor's up-switch disabled and
///   the migration forced exactly where the PR 3 one-shot hand-off fired
///   (every occupied state `ApxDone`), so the two switch policies are
///   directly comparable on one substrate.
/// * **Approximate @ hybrid** — a dynamic protocol whose census stays
///   `O(log n · log log n)`: nothing here *forces* a migration.  At the
///   quick-tier `n = 10⁴` the occupancy-to-`√n` ratio is borderline
///   (`√n = 100` against a transient census of a few hundred), so the
///   monitor may take a handful of monitor-spaced round trips; the
///   hysteresis keeps them bounded, and at full-tier sizes `√n` outgrows
///   the census and the run stays dense.
///
/// Both switch policies sample the same Markov chain (the migration is
/// exact), so their interaction counts must agree up to seed variance; the
/// switch *points* differ — the monitor fires a window after the transient
/// starts, the pinned policy at the stage boundary.  Trials run serially
/// ([`sweep_with_threads`] with one worker): the hybrid engine brings its
/// own representation churn and the wall-clocks are the measurement.
pub fn e20_hybrid_counting(effort: Effort) -> ExperimentReport {
    use std::sync::Mutex;
    use std::time::Instant;

    // Quick tier pins the acceptance row: CountExact exact at n = 10⁵.
    let exact_sizes = effort.sizes(&[100_000], &[100_000, 1_000_000]);
    let approx_sizes = effort.sizes(&[10_000], &[100_000, 1_000_000]);

    let mut table = Table::new(
        "E20 — hybrid engine (dense ↔ per-agent): switch points, interaction counts \
         and the decoded-vs-interned stint comparison",
        &[
            "n",
            "workload",
            "valid output",
            "interactions",
            "dense / agent",
            "switch points",
            "dense states",
            "agent-leg s",
            "seconds",
        ],
    );

    /// Everything one hybrid trial reports beyond the `TrialResult` shape.
    struct RichOutcome {
        n: usize,
        converged: bool,
        interactions: u64,
        dense: u64,
        agent: u64,
        switches: Vec<u64>,
        states: usize,
        agent_seconds: f64,
        seconds: f64,
    }

    let push = |table: &mut Table, label: &str, r: &RichOutcome| {
        table.push_row(vec![
            r.n.to_string(),
            label.to_string(),
            if r.converged { "yes" } else { "NO" }.to_string(),
            format!("{:.3e}", r.interactions as f64),
            format!("{:.3e} / {:.3e}", r.dense as f64, r.agent as f64),
            if r.switches.is_empty() {
                "none".to_string()
            } else {
                r.switches
                    .iter()
                    .map(|s| format!("{:.3e}", *s as f64))
                    .collect::<Vec<_>>()
                    .join(", ")
            },
            r.states.to_string(),
            format!("{:.1}", r.agent_seconds),
            format!("{:.1}", r.seconds),
        ]);
    };

    // One serial seeded trial through the sweep plumbing
    // ([`sweep_with_threads`] with one worker, consistent with the other
    // engine experiments), carrying the rich hybrid outcome out past
    // `TrialResult`'s flat shape.
    let run_rich =
        |n: usize, master: u64, job: &(dyn Fn(usize, u64) -> RichOutcome + Sync)| -> RichOutcome {
            let rich: Mutex<Option<RichOutcome>> = Mutex::new(None);
            sweep_with_threads(&[n], 1, master, 1, |n, seed| {
                let r = job(n, seed);
                let trial = TrialResult {
                    n,
                    seed,
                    converged: r.converged,
                    interactions: r.interactions,
                    metric: r.states as f64,
                };
                *rich.lock().unwrap() = Some(r);
                trial
            });
            rich.into_inner().unwrap().expect("one trial ran")
        };

    // CountExact, automatic switch (the staged entry point), with the
    // per-agent stepping mode as the decoded-vs-interned comparison lever.
    let run_auto = |n: usize, master: u64, stints: StintMode| -> RichOutcome {
        run_rich(n, master, &|n, seed| {
            let start = Instant::now();
            let o = staged_trial_maybe_checkpointed(
                "e20-auto",
                CountExactParams::dense_at_scale(n),
                n,
                seed,
                Engine::Batched,
                (n as u64).saturating_mul(300_000),
                stints,
            );
            RichOutcome {
                n,
                converged: o.converged && o.output == Some(n as u64),
                interactions: o.interactions,
                dense: o.dense_interactions,
                agent: o.agent_interactions,
                switches: o.switch_interactions.clone(),
                states: o.states_discovered,
                agent_seconds: o.agent_seconds,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
    };

    // CountExact with the hand-off pinned at the PR 3 policy (ApxDone
    // everywhere): the monitor's up-switch is parked out of reach, the
    // migration is forced at the stage boundary.
    let run_pinned = |n: usize, master: u64| -> RichOutcome {
        run_rich(n, master, &|n, seed| {
            let start = Instant::now();
            let params = CountExactParams::dense_at_scale(n);
            let proto = DenseCountExact::with_capacity(params, CountExactParams::dense_capacity(n));
            let handle = proto.clone();
            let mut sim = ppsim::HybridSimulator::with_config(
                proto,
                n,
                seed,
                ppsim::HybridConfig {
                    // Park both thresholds out of reach: the only migration
                    // is the forced one at the stage boundary (a down-switch
                    // left active would fire right after the pin, while the
                    // refinement census is still narrow).
                    switch_up: f64::INFINITY,
                    switch_down: 0.0,
                    ..ppsim::HybridConfig::default()
                },
            )
            .unwrap();
            let check_every = (n as u64) * 20;
            let budget = (n as u64).saturating_mul(300_000);
            let stage12 = sim.run_until(
                |s| {
                    // Indices are interned in first-appearance order, so the
                    // check scans only the discovered prefix of the
                    // capacity-sized counts slice — the same O(census) cost
                    // profile as the auto policy's monitor probes.
                    s.as_dense_counts().is_some_and(|counts| {
                        let census = handle.states_discovered().min(counts.len());
                        counts[..census]
                            .iter()
                            .enumerate()
                            .all(|(st, &c)| c == 0 || handle.decode(st).stage.apx_done)
                    })
                },
                check_every,
                budget,
            );
            let converged = stage12.converged() && {
                sim.switch_to_agent().expect("manual migration");
                let o = sim.run_until(
                    |s| s.output_stats().unanimous().is_some_and(|o| o.is_some()),
                    check_every,
                    budget,
                );
                o.converged() && sim.output_stats().unanimous() == Some(&Some(n as u64))
            };
            RichOutcome {
                n,
                converged,
                interactions: sim.interactions(),
                dense: sim.dense_interactions(),
                agent: sim.agent_interactions(),
                switches: sim.switches().iter().map(|e| e.interactions).collect(),
                states: handle.states_discovered(),
                agent_seconds: sim.agent_seconds(),
                seconds: start.elapsed().as_secs_f64(),
            }
        })
    };

    // Approximate on the hybrid engine: nothing forces a migration here —
    // the monitor's behaviour near the occupancy/sqrt(n) boundary is the
    // measurement (see the experiment docs).
    let run_approximate = |n: usize, master: u64| -> RichOutcome {
        run_rich(n, master, &|n, seed| {
            let start = Instant::now();
            let proto = DenseApproximate::new(ApproximateParams::default());
            let handle = proto.clone();
            let mut sim = ppsim::HybridSimulator::new(proto, n, seed).unwrap();
            let (floor, ceil) = valid_estimates(n);
            let outcome = sim.run_until(
                |s| matches!(s.output_stats().unanimous(), Some(&Some(_))),
                (n as u64) * 50,
                (n as u64).saturating_mul(400_000),
            );
            let valid = matches!(sim.output_stats().unanimous(),
                                 Some(&Some(k)) if k == floor || k == ceil);
            RichOutcome {
                n,
                converged: outcome.converged() && valid,
                interactions: sim.interactions(),
                dense: sim.dense_interactions(),
                agent: sim.agent_interactions(),
                switches: sim.switches().iter().map(|e| e.interactions).collect(),
                states: handle.states_discovered(),
                agent_seconds: sim.agent_seconds(),
                seconds: start.elapsed().as_secs_f64(),
            }
        })
    };

    for (si, &n) in exact_sizes.iter().enumerate() {
        // Decoded and interned stints run the *same* master seed: the runs
        // are identical up to the first agent → dense tally (the codec
        // bisimulates δ and the stint schedule is a pure function of the
        // seed), after which they sample the same Markov process along
        // different paths — the two modes assign interner indices in a
        // different order at the tally, and the dense engine's randomness
        // consumption follows index order.  The comparable quantity is the
        // *per-interaction* agent-leg throughput (agent interactions ÷
        // agent-leg seconds), which is what the decoded-stint acceptance
        // criterion gates.
        let decoded = run_auto(n, 0xE20 + 10 * si as u64, StintMode::Decoded);
        push(&mut table, "CountExact @ hybrid (auto, decoded)", &decoded);
        let interned = run_auto(n, 0xE20 + 10 * si as u64, StintMode::Interned);
        push(
            &mut table,
            "CountExact @ hybrid (auto, interned)",
            &interned,
        );
        let pinned = run_pinned(n, 0xE20 + 10 * si as u64 + 5);
        push(
            &mut table,
            "CountExact @ hybrid (pinned @ ApxDone)",
            &pinned,
        );
    }
    for (si, &n) in approx_sizes.iter().enumerate() {
        let approx = run_approximate(n, 0xE20 + 100 + 10 * si as u64);
        push(&mut table, "Approximate @ hybrid", &approx);
    }

    ExperimentReport {
        id: "E20",
        claim: "the hybrid engine finds the CountExact refinement hand-off on its own — total \
                interactions within 10% of the pinned-at-ApxDone policy — and its hysteresis \
                keeps every migration bounded and monitor-spaced",
        table,
    }
}

/// E21 — the adversarial fault model ([`ppsim::adversary`]): time to
/// reconverge after a transient in-run corruption, as a function of fault
/// size and `n`, on all four engines.
///
/// Two workloads:
///
/// * **epidemic** — converge, then knock 1% / 10% / 50% of the agents back
///   to susceptible ([`CorruptionTarget::State`]); recovery is re-infection,
///   reference `n·ln n` (the fault-free completion time, Lemma 3).  The
///   sequential engine is skipped above `n = 10⁴` (per-agent stepping at
///   these budgets is prohibitive; the other engines sample the identical
///   process — E17).
/// * **ranking (self-stabilizing)** — start from a *seeded-arbitrary*
///   configuration ([`InitStrategy::SeededArbitrary`]), then pile a quarter
///   of the population onto one rank mid-run; recovery is collision-driven
///   re-ranking, reference `n²`.
///
/// Recovery time is [`ppsim::RecoveryRecord::recovery_time`]: logical
/// interactions from the injection to the first convergence check that
/// holds.
pub fn e21_adversarial_recovery(effort: Effort) -> ExperimentReport {
    let epidemic_sizes = effort.sizes(&[1_000, 10_000], &[10_000, 100_000]);
    let ranking_sizes = effort.sizes(&[48], &[64, 128]);
    let trials = effort.trials(3, 5);
    let fracs: [f64; 3] = [0.01, 0.10, 0.50];

    const ENGINES: [(Engine, &str); 4] = [
        (Engine::Sequential, "sequential"),
        (Engine::Batched, "batched"),
        (
            Engine::Sharded {
                shards: 4,
                threads: 1,
            },
            "sharded",
        ),
        (Engine::Hybrid, "hybrid"),
    ];

    let mut table = Table::new(
        "E21 — adversarial recovery: interactions from fault injection back to convergence \
         (epidemic reference n·ln n, ranking reference n²)",
        &[
            "workload",
            "engine",
            "n",
            "fault",
            "recovered",
            "median recovery",
            "recovery / ref",
            "min",
            "max",
        ],
    );

    let mut push_row = |workload: &str,
                        label: &str,
                        n: usize,
                        fault: String,
                        recovered: usize,
                        total: usize,
                        recoveries: &[u64],
                        reference: f64| {
        let (median, ratio, min, max) = if recoveries.is_empty() {
            ("—".into(), "—".into(), "—".into(), "—".into())
        } else {
            let s = Summary::of_u64(recoveries);
            (
                format!("{:.0}", s.median),
                format!("{:.2}", s.median / reference),
                format!("{:.0}", s.min),
                format!("{:.0}", s.max),
            )
        };
        table.push_row(vec![
            workload.to_string(),
            label.to_string(),
            n.to_string(),
            fault,
            format!("{recovered}/{total}"),
            median,
            ratio,
            min,
            max,
        ]);
    };

    for (ei, &(engine, label)) in ENGINES.iter().enumerate() {
        for &n in &epidemic_sizes {
            if matches!(engine, Engine::Sequential) && n > 10_000 {
                continue;
            }
            for &frac in &fracs {
                let agents = ((n as f64) * frac).round().max(1.0) as u64;
                let fault_at = (3.0 * n_log_n(n)) as u64;
                let cap = fault_at + (40.0 * n_log_n(n)) as u64;
                let check = (n as u64 / 4).max(256);
                let mut recoveries: Vec<u64> = Vec::new();
                for t in 0..trials {
                    let seed = derive_seed(0xE21, (ei * 1000 + t) as u64 * 100 + n as u64 % 97);
                    let plan = FaultPlan::new(vec![FaultEvent {
                        at: fault_at,
                        kind: FaultKind::Corrupt {
                            agents,
                            target: CorruptionTarget::State(0),
                        },
                    }])
                    .unwrap();
                    let mut run = AdversarialRun::new(
                        engine,
                        DenseEpidemic,
                        n,
                        seed,
                        InitStrategy::Clean,
                        plan,
                    )
                    .unwrap();
                    run.inner_mut().transfer(0, 1, 1).unwrap();
                    let outcome = run
                        .run_until(|s| s.count_of(1) == s.population(), check, cap)
                        .unwrap();
                    if outcome.converged() {
                        recoveries.push(run.records()[0].recovery_time().unwrap());
                    }
                }
                push_row(
                    "epidemic",
                    label,
                    n,
                    format!("{:.0}%", frac * 100.0),
                    recoveries.len(),
                    trials,
                    &recoveries,
                    n_log_n(n),
                );
            }
        }
    }

    for (ei, &(engine, label)) in ENGINES.iter().enumerate() {
        for &n in &ranking_sizes {
            let protocol = SelfStabRanking::new(n);
            let agents = (n as u64 / 4).max(1);
            let fault_at = 8 * (n as u64) * (n as u64);
            let cap = fault_at + 600 * (n as u64) * (n as u64);
            let check = ((n * n) as u64 / 8).max(64);
            let mut recoveries: Vec<u64> = Vec::new();
            for t in 0..trials {
                let seed = derive_seed(0xE21 + 1, (ei * 1000 + t) as u64 * 100 + n as u64 % 89);
                let plan = FaultPlan::new(vec![FaultEvent {
                    at: fault_at,
                    kind: FaultKind::Corrupt {
                        agents,
                        // Dense index 2 = (rank 1, heads): a pile-up, the
                        // worst shape for the collision rule.
                        target: CorruptionTarget::State(2),
                    },
                }])
                .unwrap();
                let mut run = AdversarialRun::new(
                    engine,
                    protocol,
                    n,
                    seed,
                    InitStrategy::SeededArbitrary {
                        states: 2 * n,
                        seed: derive_seed(seed, 3),
                    },
                    plan,
                )
                .unwrap();
                let outcome = run
                    .run_until(|s| s.with_counts(|c| protocol.is_ranked(c)), check, cap)
                    .unwrap();
                if outcome.converged() {
                    recoveries.push(run.records()[0].recovery_time().unwrap());
                }
            }
            push_row(
                "ranking (arbitrary init)",
                label,
                n,
                "25% pile-up".to_string(),
                recoveries.len(),
                trials,
                &recoveries,
                (n * n) as f64,
            );
        }
    }

    ExperimentReport {
        id: "E21",
        claim: "after transient corruption the protocols reconverge on every engine — epidemic \
                recovery scales with n·ln n across 1%-50% fault sizes, and the self-stabilizing \
                ranking protocol recovers from arbitrary initializations and mid-run pile-ups",
        table,
    }
}

/// E22 — scenario-matrix conformance: Herman's tolerance-banded expected
/// stabilization, coalescence recovery from a resurrection fault, election
/// dispersal across the probe-alphabet trade-off `K`, and the standard
/// protocol × engine × fault matrix of [`ppproto::scenarios`].
pub fn e22_scenario_matrix(effort: Effort) -> ExperimentReport {
    const ENGINES: [(Engine, &str); 4] = [
        (Engine::Sequential, "sequential"),
        (Engine::Batched, "batched"),
        (
            Engine::Sharded {
                shards: 4,
                threads: 1,
            },
            "sharded",
        ),
        (Engine::Hybrid, "hybrid"),
    ];

    let mut table = Table::new(
        "E22 — scenario-matrix conformance: Herman's expected stabilization (reference \
         0.64n², the issue's 15% band; the mean-field telescope predicts 0.614n²), \
         coalescence recovery from a resurrection fault (reference n²), election \
         dispersal milestones across the probe-alphabet trade-off K (reference n²/64), \
         and the standard protocol × engine × fault matrix, one row per cell",
        &[
            "workload",
            "engine",
            "n",
            "detail",
            "ok",
            "interactions",
            "reference",
            "ratio",
        ],
    );

    // Herman: the measured expected stabilization from an odd near-full
    // token load (n − 1 tokens on even n, so annihilation ends at exactly
    // one token) against the 0.64n² target.  The chain is identical on
    // every engine, so the acceptance quantity is the per-n mean pooled
    // across all four engines; the per-engine rows show the (noisier)
    // per-engine sample means for cross-engine sanity.
    let herman_sizes = effort.sizes(&[1_000], &[1_000, 10_000]);
    let herman_trials = effort.trials(8, 32);
    for &n in &herman_sizes {
        let reference = 0.64 * n_squared(n);
        let mut pooled: Vec<u64> = Vec::new();
        let mut pooled_trials = 0usize;
        for (ei, &(engine, label)) in ENGINES.iter().enumerate() {
            let p = HermanTokens::new();
            let cap = 10 * (n as u64) * (n as u64);
            let mut times: Vec<u64> = Vec::new();
            for t in 0..herman_trials {
                let seed = derive_seed(0xE2201, (ei * 1_000 + t) as u64 * 100 + n as u64 % 97);
                let mut sim = DenseSimulator::new(engine, p, n, seed).unwrap();
                let mut counts = vec![0u64; 4];
                counts[2] = n as u64 - 1;
                counts[0] = 1;
                sim.set_counts(counts).unwrap();
                let outcome = sim.run_until(|s| s.with_counts(|c| p.is_stable(c)), 2_048, cap);
                if outcome.converged() {
                    times.push(sim.interactions());
                }
            }
            let mean = times.iter().sum::<u64>() as f64 / times.len().max(1) as f64;
            table.push_row(vec![
                "herman stabilization".into(),
                label.to_string(),
                n.to_string(),
                format!("mean of {herman_trials} odd near-full starts"),
                format!("{}/{herman_trials}", times.len()),
                format!("{mean:.0}"),
                format!("{reference:.0}"),
                format!("{:.2}", mean / reference),
            ]);
            pooled_trials += herman_trials;
            pooled.extend(times);
        }
        let pooled_mean = pooled.iter().sum::<u64>() as f64 / pooled.len().max(1) as f64;
        table.push_row(vec![
            "herman stabilization".into(),
            "all engines".into(),
            n.to_string(),
            format!("pooled mean, {pooled_trials} starts (15% band check)"),
            format!("{}/{pooled_trials}", pooled.len()),
            format!("{pooled_mean:.0}"),
            format!("{reference:.0}"),
            format!("{:.2}", pooled_mean / reference),
        ]);
    }

    // Coalescence: recovery after resurrecting n/8 singletons near full
    // coalescence — the merge telescope makes reconvergence Θ(n²).  The
    // resurrected soup occupies Θ(k) distinct sizes, so the count engines
    // stay on the population where their dense blocks are affordable.
    let coalescence_sizes = effort.sizes(&[1_000], &[1_000, 10_000]);
    let coalescence_trials = effort.trials(3, 5);
    for (ei, &(engine, label)) in ENGINES.iter().enumerate() {
        for &n in &coalescence_sizes {
            if n > 2_000 && !matches!(engine, Engine::Sequential | Engine::Hybrid) {
                continue;
            }
            let p = StochasticCoalescence::new(n);
            let nn = (n as u64) * (n as u64);
            let fault_at = nn;
            let cap = fault_at + 16 * nn;
            let check = (nn / 64).max(256);
            let mut recoveries: Vec<u64> = Vec::new();
            for t in 0..coalescence_trials {
                let seed = derive_seed(0xE2202, (ei * 1_000 + t) as u64 * 100 + n as u64 % 89);
                let plan = FaultPlan::new(vec![FaultEvent {
                    at: fault_at,
                    kind: FaultKind::Corrupt {
                        agents: (n as u64 / 8).max(1),
                        // Dense index 2 = (size 1, tails): resurrect singletons.
                        target: CorruptionTarget::State(2),
                    },
                }])
                .unwrap();
                let mut run =
                    AdversarialRun::new(engine, p, n, seed, InitStrategy::Clean, plan).unwrap();
                let outcome = run
                    .run_until(|s| s.with_counts(|c| p.is_coalesced(c)), check, cap)
                    .unwrap();
                if outcome.converged() {
                    recoveries.push(run.records()[0].recovery_time().unwrap());
                }
            }
            let (median, ratio) = if recoveries.is_empty() {
                ("—".to_string(), "—".to_string())
            } else {
                let s = Summary::of_u64(&recoveries);
                (
                    format!("{:.0}", s.median),
                    format!("{:.2}", s.median / n_squared(n)),
                )
            };
            table.push_row(vec![
                "coalescence recovery".into(),
                label.to_string(),
                n.to_string(),
                "n/8 resurrected at n²".into(),
                format!("{}/{coalescence_trials}", recoveries.len()),
                median,
                format!("{:.0}", n_squared(n)),
                ratio,
            ]);
        }
    }

    // Election: interactions until n/64 distinct ranks are occupied from
    // the clean pile, across the probe-alphabet trade-off K — the cascade
    // out of the pile costs Θ(n·K^g) per generation, so the milestone is
    // affordable while full stabilization is ω(n²).  The dispersed soup is
    // occupancy-hostile (q = 8K live indices per rank), hence the
    // per-agent engines.
    let election_sizes = effort.sizes(&[1_000], &[10_000]);
    let election_trials = effort.trials(3, 8);
    for (ei, &(engine, label)) in [
        (Engine::Sequential, "sequential"),
        (Engine::Hybrid, "hybrid"),
    ]
    .iter()
    .enumerate()
    {
        for &n in &election_sizes {
            for &k in &[2usize, 4, 8] {
                let p = TradeoffElection::new(n, k);
                let milestone = (n as u64 / 64).max(2);
                let nn = (n as u64) * (n as u64);
                let mut times: Vec<u64> = Vec::new();
                for t in 0..election_trials {
                    let seed = derive_seed(
                        0xE2203,
                        ((ei * 10 + k) * 1_000 + t) as u64 * 100 + n as u64 % 83,
                    );
                    let mut sim = DenseSimulator::new(engine, p, n, seed).unwrap();
                    let outcome = sim.run_until(
                        |s| s.with_counts(|c| p.distinct_ranks(c) as u64 >= milestone),
                        4 * n as u64,
                        4 * nn,
                    );
                    if outcome.converged() {
                        times.push(sim.interactions());
                    }
                }
                let (median, ratio) = if times.is_empty() {
                    ("—".to_string(), "—".to_string())
                } else {
                    let s = Summary::of_u64(&times);
                    (
                        format!("{:.0}", s.median),
                        format!("{:.2}", s.median / (n_squared(n) / 64.0)),
                    )
                };
                table.push_row(vec![
                    format!("election dispersal K={k}"),
                    label.to_string(),
                    n.to_string(),
                    "distinct ranks ≥ n/64".into(),
                    format!("{}/{election_trials}", times.len()),
                    median,
                    format!("{:.0}", n_squared(n) / 64.0),
                    ratio,
                ]);
            }
        }
    }

    // The standard conformance matrix: Quick runs the debug tier
    // (n_big = 10³), Full the CI release tier (n_big = 10⁴).  Every cell
    // carries the full invariant battery — mass conservation at each grid
    // point, reconvergence within the scenario bound with every fault
    // fired, and a mid-run checkpoint round-trip replaying the reference
    // trajectory bit-identically.
    let cfg = match effort {
        Effort::Quick => MatrixConfig::test_tier(),
        Effort::Full => MatrixConfig::quick(),
    };
    let cells = standard_matrix(&cfg);
    let summary = run_matrix(&cells, |_| {});
    for cell in &summary.cells {
        table.push_row(vec![
            cell.scenario.clone(),
            cell.engine.to_string(),
            cell.n.to_string(),
            "matrix cell".into(),
            if cell.passed() {
                "pass".into()
            } else {
                format!("FAIL: {}", cell.failures.join("; "))
            },
            cell.converged_at
                .map_or_else(|| "—".to_string(), |t| t.to_string()),
            "—".into(),
            "—".into(),
        ]);
    }
    let passed = summary.cells.iter().filter(|c| c.passed()).count();
    table.push_row(vec![
        "matrix total".into(),
        "all".into(),
        format!("{}/{}", cfg.n_small, cfg.n_big),
        "protocol × engine × fault".into(),
        format!("{passed}/{}", summary.cells.len()),
        "—".into(),
        "—".into(),
        "—".into(),
    ]);

    ExperimentReport {
        id: "E22",
        claim: "the ported related-work protocols behave like their analyses on every engine — \
                Herman's expected stabilization lands within 15% of 0.64n², coalescence \
                recovers from resurrection faults in Θ(n²), election dispersal milestones \
                track the K-cascade — and the standard scenario matrix (protocol × engine × \
                init × fault, with conservation, reconvergence, and checkpoint-replay checks \
                per cell) passes wall to wall",
        table,
    }
}

/// An experiment entry point: takes the effort level, returns the report.
type ExperimentFn = fn(Effort) -> ExperimentReport;

/// The experiment registry: `(canonical id, runner)` in report order.
///
/// `run_all` and `run_one` both read this table, so an experiment cannot be
/// reachable from one entry point but not the other.
const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("e01", e01_broadcast),
    ("e02", e02_junta),
    ("e03", e03_phase_clock),
    ("e04", e04_leader_election),
    ("e05", e05_fast_leader_election),
    ("e06", e06_load_balancing),
    ("e07", e07_search),
    ("e08", e08_approximate),
    ("e09", e09_approx_stage),
    ("e11", e11_count_exact),
    ("e12", e12_backup),
    ("e13", e13_baseline_comparison),
    ("e14", e14_stable),
    ("e15", e15_state_space),
    ("e16", e16_batched_scale),
    ("e17", e17_engine_equivalence),
    ("e18", e18_sharded_scale),
    ("e19", e19_dense_counting),
    ("e20", e20_hybrid_counting),
    ("e21", e21_adversarial_recovery),
    ("e22", e22_scenario_matrix),
];

/// Resolve a lower-case experiment id to its runner without executing it.
fn resolve(id: &str) -> Option<ExperimentFn> {
    // Historical alias: E10/E11 were merged into one exact-counting experiment.
    let id = if id == "e10" { "e11" } else { id };
    EXPERIMENTS
        .iter()
        .find(|(canonical, _)| *canonical == id)
        .map(|&(_, run)| run)
}

/// Run every experiment at the given effort level.
#[must_use]
pub fn run_all(effort: Effort) -> Vec<ExperimentReport> {
    EXPERIMENTS.iter().map(|&(_, run)| run(effort)).collect()
}

/// Look up a single experiment by its lower-case id (e.g. `"e08"`).
#[must_use]
pub fn run_one(id: &str, effort: Effort) -> Option<ExperimentReport> {
    resolve(id).map(|run| run(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_is_resolvable() {
        // Resolution only; not executed here (the heavy work is covered by the
        // integration tests and by the experiments binary).
        for id in [
            "e01", "e02", "e03", "e04", "e05", "e06", "e07", "e08", "e09", "e10", "e11", "e12",
            "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22",
        ] {
            assert!(resolve(id).is_some(), "experiment id {id} must resolve");
        }
        assert!(resolve("zzz").is_none());
        assert!(resolve("E01").is_none(), "ids are matched lower-case");
        assert_eq!(EXPERIMENTS.len(), 21, "one registry entry per experiment");
        assert!(run_one("zzz", Effort::Quick).is_none());
    }
}
