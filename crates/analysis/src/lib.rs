//! # `ppanalysis` — experiment harness for the counting-protocol reproduction
//!
//! The reproduced paper is a theory paper: its "evaluation" is the collection of
//! lemmas and theorems listed in `DESIGN.md`.  This crate turns each of those
//! claims into a measurable experiment (E01–E15): a workload, a parameter sweep
//! over the population size `n`, repeated seeded trials, and a generated table that
//! compares the measured quantity against the paper's asymptotic claim.
//!
//! Run all experiments with
//!
//! ```text
//! cargo run --release -p ppanalysis --bin experiments -- --quick
//! ```
//!
//! or a single one with `-- e08` etc.  The output of the full run is recorded in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod stats;
pub mod sweep;
pub mod table;

pub use fit::{log_log_slope, n_log2_n, n_log_n, n_squared, ratio_to};
pub use stats::Summary;
pub use sweep::{sweep, TrialResult};
pub use table::Table;
