//! Summary statistics over repeated trials.

/// Summary statistics of a sample (mean, median, min, max, standard deviation).
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of the two middle elements for even sample sizes).
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for fewer than 2 samples.
    pub std_dev: f64,
}

impl Summary {
    /// Summarise a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            median,
            min: sorted[0],
            max: sorted[count - 1],
            std_dev: var.sqrt(),
        }
    }

    /// Summarise an integer-valued sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of_u64(values: &[u64]) -> Self {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Self::of(&floats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_a_simple_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.2909944487358056).abs() < 1e-9);
    }

    #[test]
    fn summary_of_odd_sample_uses_middle_element() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn single_sample_has_zero_std_dev() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn integer_helper_matches_float_path() {
        assert_eq!(Summary::of_u64(&[1, 2, 3]), Summary::of(&[1.0, 2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
