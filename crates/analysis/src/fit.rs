//! Helpers for comparing measurements against asymptotic reference curves.

/// The ratio of a measurement to a reference curve value — e.g. measured
/// interactions divided by `n log₂ n`.  A roughly constant ratio across `n`
/// supports the corresponding asymptotic claim.
#[must_use]
pub fn ratio_to(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        f64::NAN
    } else {
        measured / reference
    }
}

/// `n log₂ n` as a floating-point reference curve.
#[must_use]
pub fn n_log_n(n: usize) -> f64 {
    let n = n as f64;
    n * n.log2()
}

/// `n log₂² n` as a floating-point reference curve.
#[must_use]
pub fn n_log2_n(n: usize) -> f64 {
    let n = n as f64;
    n * n.log2() * n.log2()
}

/// `n²` as a floating-point reference curve.
#[must_use]
pub fn n_squared(n: usize) -> f64 {
    let n = n as f64;
    n * n
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical polynomial
/// degree of a measured scaling curve.  A value close to 1 indicates linear
/// scaling (up to polylog factors), close to 2 quadratic scaling.
///
/// # Panics
///
/// Panics if fewer than two points are provided or any coordinate is not positive.
#[must_use]
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points for a slope");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(
                x > 0.0 && y > 0.0,
                "log-log fit requires positive coordinates"
            );
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_references() {
        assert!((ratio_to(2048.0, 1024.0) - 2.0).abs() < 1e-12);
        assert!(ratio_to(1.0, 0.0).is_nan());
        assert!((n_log_n(1024) - 1024.0 * 10.0).abs() < 1e-9);
        assert!((n_log2_n(1024) - 1024.0 * 100.0).abs() < 1e-9);
        assert!((n_squared(100) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_a_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((log_log_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_n_log_n_is_slightly_above_one() {
        let pts: Vec<(f64, f64)> = [256usize, 1024, 4096, 16384]
            .iter()
            .map(|&n| (n as f64, n_log_n(n)))
            .collect();
        let slope = log_log_slope(&pts);
        assert!(slope > 1.0 && slope < 1.3, "slope {slope}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn slope_needs_two_points() {
        let _ = log_log_slope(&[(1.0, 1.0)]);
    }
}
