//! Command-line entry point regenerating every table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p ppanalysis --bin experiments -- --quick        # all, small sizes
//! cargo run --release -p ppanalysis --bin experiments                   # all, full sizes
//! cargo run --release -p ppanalysis --bin experiments -- e08 e11        # selected experiments
//! cargo run --release -p ppanalysis --bin experiments -- --quick e13    # selected, small sizes
//! ```
//!
//! # Crash recovery for the long runs
//!
//! The multi-hour E19/E20 rows checkpoint themselves when given a scratch
//! directory; re-running the identical command after a crash resumes from
//! whatever survived (completed sweep trials, plus mid-trial staged-runner
//! snapshots every `--checkpoint-every` interactions):
//!
//! ```text
//! cargo run --release -p ppanalysis --bin experiments -- \
//!     e19 e20 --checkpoint-dir ckpt/ --checkpoint-every 1000000000 --out EXPERIMENTS.tmp.md
//! ```
//!
//! `--out` writes the report atomically (temp + fsync + rename), so a kill
//! mid-write never leaves a truncated report behind.
//!
//! # Standalone staged run (the CI kill/resume smoke test)
//!
//! ```text
//! experiments --staged-n 10000 --seed 42 --checkpoint ckpt.ppss --checkpoint-every 200000
//! experiments --staged-n 10000 --seed 42 --resume ckpt.ppss   # after a SIGKILL
//! ```
//!
//! Runs a single staged `CountExact` trial (`count_exact_dense_staged`),
//! prints `output=<count> interactions=<total>`, and exits 0 iff the run
//! converged to the exact population size — resuming from a snapshot yields
//! the bit-identical trajectory, so both invocations print the same line.
//!
//! # Standalone adversarial runs (the CI fault-recovery smoke tests)
//!
//! ```text
//! experiments --adversarial-n 10000 --seed 42
//! ```
//!
//! Corrupts 10% of the agents back to susceptible mid-epidemic on **all
//! four engines** (several seeded trials each), prints each engine's median
//! recovery time, and exits 0 iff every trial reconverged *and* every
//! engine's median lies within a factor of two of the cross-engine median —
//! the distributional-agreement gate (the engines sample the same process,
//! so their recovery-time distributions must agree).
//!
//! ```text
//! experiments --adversarial-resume-n 20000 --seed 7 --budget 800000        # reference
//! experiments --adversarial-resume-n 20000 --seed 7 --budget 800000 \
//!     --checkpoint adv.ppss --checkpoint-every 50000                        # kill this one
//! experiments --adversarial-resume-n 20000 --seed 7 --budget 800000 \
//!     --resume adv.ppss                                                     # after SIGKILL
//! ```
//!
//! Runs one epidemic under a three-event fault plan (corrupt, silence
//! window, corrupt), autosaving the full [`AdversarialRun`] snapshot —
//! fault cursor, plan RNG, recovery records and all — every
//! `--checkpoint-every` logical interactions.  Killing the checkpointing
//! run mid-plan and resuming replays the identical fault sequence: all
//! three invocations print the same final line.
//!
//! # The scenario-matrix conformance gate
//!
//! ```text
//! experiments --scenario-matrix --out matrix.md           # CI tier, n_big = 10^4
//! experiments --scenario-matrix --quick                   # debug tier, n_big = 10^3
//! ```
//!
//! Runs the standard conformance matrix (`ppproto::scenarios`): every
//! ported protocol × engine × init × fault-plan cell, each checked for
//! population/mass conservation, reconvergence within the scenario bound
//! with every fault fired, and a mid-run checkpoint round-trip that must
//! replay the reference trajectory bit-identically.  Prints one line per
//! cell as it completes, writes the per-cell markdown table to `--out`
//! when given, and exits non-zero unless every cell passes.

use std::path::{Path, PathBuf};
use std::time::Instant;

use popcount::{
    count_exact_dense_staged_checkpointed, CountExactParams, StagedCheckpoint, StintMode,
};
use ppanalysis::experiments::{configure_checkpoints, run_all, run_one, CheckpointPlan, Effort};
use ppproto::scenarios::{standard_matrix, MatrixConfig};
use ppproto::DenseEpidemic;
use ppsim::run_matrix;
use ppsim::snapshot::write_bytes_atomic;
use ppsim::{
    derive_seed, AdversarialRun, Checkpointable, CorruptionTarget, Engine, EngineSnapshot,
    FaultEvent, FaultKind, FaultPlan, InitStrategy,
};

/// Flags that consume the following argument (kept in sync with `main`'s
/// dispatch so flag values are never mistaken for experiment ids).
const VALUE_FLAGS: &[&str] = &[
    "--checkpoint-dir",
    "--checkpoint-every",
    "--out",
    "--staged-n",
    "--seed",
    "--engine",
    "--budget",
    "--checkpoint",
    "--resume",
    "--adversarial-n",
    "--adversarial-resume-n",
];

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    flag_value(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value `{v}` for {name}");
            std::process::exit(2);
        })
    })
}

fn staged_main(args: &[String], n: usize) -> ! {
    let seed = parsed_flag(args, "--seed").unwrap_or(42u64);
    let budget = parsed_flag(args, "--budget").unwrap_or((n as u64).saturating_mul(300_000));
    let engine = match flag_value(args, "--engine").unwrap_or("batched") {
        "batched" => Engine::Batched,
        "auto" => Engine::Auto,
        "sharded" => Engine::Sharded {
            shards: 2,
            threads: 1,
        },
        other => {
            eprintln!("unknown --engine `{other}` (expected batched|sharded|auto)");
            std::process::exit(2);
        }
    };
    let every = parsed_flag(args, "--checkpoint-every").unwrap_or((n as u64).max(1) * 20);
    let autosave = flag_value(args, "--checkpoint").map(|p| StagedCheckpoint {
        path: PathBuf::from(p),
        every,
    });
    let resume = flag_value(args, "--resume").map(PathBuf::from);

    let outcome = count_exact_dense_staged_checkpointed(
        CountExactParams::dense_at_scale(n),
        n,
        seed,
        engine,
        budget,
        StintMode::Decoded,
        autosave.as_ref(),
        resume.as_deref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("staged run failed: {e}");
        std::process::exit(2);
    });
    println!(
        "staged CountExact n={n} seed={seed}: output={} interactions={} converged={}",
        outcome
            .output
            .map_or_else(|| "none".into(), |o| o.to_string()),
        outcome.interactions,
        outcome.converged,
    );
    let exact = outcome.converged && outcome.output == Some(n as u64);
    std::process::exit(i32::from(!exact));
}

const ADVERSARIAL_ENGINES: [(Engine, &str); 4] = [
    (Engine::Sequential, "sequential"),
    (Engine::Batched, "batched"),
    (
        Engine::Sharded {
            shards: 4,
            threads: 1,
        },
        "sharded",
    ),
    (Engine::Hybrid, "hybrid"),
];

/// The four-engine fault-recovery smoke test behind `--adversarial-n`:
/// corrupt 10% of the agents back to susceptible mid-epidemic, on every
/// engine, several seeded trials each; gate on reconvergence and on
/// cross-engine agreement of the median recovery time.
fn adversarial_smoke_main(args: &[String], n: usize) -> ! {
    let seed = parsed_flag(args, "--seed").unwrap_or(42u64);
    let trials = 5usize;
    let agents = (n as u64 / 10).max(1);
    let fault_at = (3.0 * (n as f64) * (n as f64).ln()) as u64;
    let cap = fault_at + 40 * fault_at;
    let check = (n as u64 / 4).max(256);

    let mut ok = true;
    let mut medians: Vec<u64> = Vec::new();
    for (ei, &(engine, label)) in ADVERSARIAL_ENGINES.iter().enumerate() {
        let mut recoveries: Vec<u64> = Vec::new();
        for t in 0..trials {
            let trial_seed = derive_seed(seed, (ei * 100 + t) as u64);
            let plan = FaultPlan::new(vec![FaultEvent {
                at: fault_at,
                kind: FaultKind::Corrupt {
                    agents,
                    target: CorruptionTarget::State(0),
                },
            }])
            .expect("static fault plan is valid");
            let mut run = AdversarialRun::new(
                engine,
                DenseEpidemic,
                n,
                trial_seed,
                InitStrategy::Clean,
                plan,
            )
            .unwrap_or_else(|e| {
                eprintln!("{label}: construction failed: {e}");
                std::process::exit(2);
            });
            run.inner_mut().transfer(0, 1, 1).unwrap();
            let outcome = run
                .run_until(|s| s.count_of(1) == s.population(), check, cap)
                .unwrap_or_else(|e| {
                    eprintln!("{label}: trial {t} failed: {e}");
                    std::process::exit(2);
                });
            if outcome.converged() {
                recoveries.push(run.records()[0].recovery_time().expect("record closed"));
            } else {
                eprintln!("{label}: trial {t} did not reconverge within {cap} interactions");
                ok = false;
            }
        }
        recoveries.sort_unstable();
        let median = recoveries.get(recoveries.len() / 2).copied().unwrap_or(0);
        println!(
            "adversarial n={n} engine={label}: reconverged={}/{trials} median_recovery={median}",
            recoveries.len(),
        );
        medians.push(median);
    }

    // Distributional agreement: all four engines sample the same stochastic
    // process (E17), so their median recovery times must lie within a
    // factor of two of the cross-engine median.
    let mut sorted = medians.clone();
    sorted.sort_unstable();
    let pooled = sorted[sorted.len() / 2];
    for (&median, &(_, label)) in medians.iter().zip(ADVERSARIAL_ENGINES.iter()) {
        if median.saturating_mul(2) < pooled || median > pooled.saturating_mul(2) {
            eprintln!(
                "{label}: median recovery {median} disagrees with the cross-engine median {pooled}"
            );
            ok = false;
        }
    }
    std::process::exit(i32::from(!ok));
}

/// One epidemic under a three-event fault plan (corrupt at 25%, silence
/// window at 50%, corrupt at 75% of the budget), checkpointing the full
/// [`AdversarialRun`] snapshot every `--checkpoint-every` logical
/// interactions — the CI kill/resume smoke for fault plans
/// (`--adversarial-resume-n`).
fn adversarial_resume_main(args: &[String], n: usize) -> ! {
    let seed = parsed_flag(args, "--seed").unwrap_or(7u64);
    let budget: u64 = parsed_flag(args, "--budget").unwrap_or(n as u64 * 40);
    let every: u64 = parsed_flag(args, "--checkpoint-every")
        .unwrap_or(budget / 16)
        .max(1);
    let autosave = flag_value(args, "--checkpoint").map(PathBuf::from);
    let resume = flag_value(args, "--resume").map(PathBuf::from);
    let fail = |context: &str, e: ppsim::SimError| -> ! {
        eprintln!("adversarial resume run: {context}: {e}");
        std::process::exit(2);
    };

    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: budget / 4,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 10).max(1),
                target: CorruptionTarget::State(0),
            },
        },
        FaultEvent {
            at: budget / 2,
            kind: FaultKind::Silence {
                agents: (n as u64 / 20).max(1),
                window: (budget / 8).max(1),
            },
        },
        FaultEvent {
            at: budget * 3 / 4,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 10).max(1),
                target: CorruptionTarget::Uniform { states: 2 },
            },
        },
    ])
    .unwrap_or_else(|e| fail("plan", e));
    let events = plan.events().len();
    let mut run = AdversarialRun::new(
        Engine::Batched,
        DenseEpidemic,
        n,
        seed,
        InitStrategy::Clean,
        plan,
    )
    .unwrap_or_else(|e| fail("construction", e));
    run.inner_mut()
        .transfer(0, 1, 1)
        .unwrap_or_else(|e| fail("setup", e));

    if let Some(path) = &resume {
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot read snapshot {}: {e}", path.display());
            std::process::exit(2);
        });
        let snapshot =
            EngineSnapshot::from_bytes(&bytes).unwrap_or_else(|e| fail("snapshot decode", e));
        run.restore_state(&snapshot)
            .unwrap_or_else(|e| fail("restore", e));
    }

    // Chunked advance with autosave.  The trajectory is a pure function of
    // the total budget — chunk boundaries never change it (deterministic
    // replay), so reference, killed, and resumed runs all print the same
    // final line.
    while run.interactions() < budget {
        let chunk = every.min(budget - run.interactions());
        run.run(chunk).unwrap_or_else(|e| fail("run", e));
        if let Some(path) = &autosave {
            write_bytes_atomic(path, &run.save_state().to_bytes())
                .unwrap_or_else(|e| fail("autosave", e));
        }
    }

    // FNV-1a over the final counts: a trajectory digest runs can `diff`.
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for count in run.inner().counts() {
        for byte in count.to_le_bytes() {
            digest = (digest ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    println!(
        "adversarial n={n} seed={seed}: interactions={} events_fired={} digest={digest:016x}",
        run.interactions(),
        run.events_fired(),
    );
    std::process::exit(i32::from(run.events_fired() != events));
}

/// The conformance gate behind `--scenario-matrix`: run the standard
/// protocol × engine × fault matrix (CI tier by default, the debug tier
/// under `--quick`), print one line per cell, optionally write the
/// markdown table, and exit 0 iff every cell passed.
fn scenario_matrix_main(args: &[String]) -> ! {
    let cfg = if args.iter().any(|a| a == "--quick") {
        MatrixConfig::test_tier()
    } else {
        MatrixConfig::quick()
    };
    println!(
        "scenario matrix: n_big={} n_small={} seed={:#x}",
        cfg.n_big, cfg.n_small, cfg.seed
    );
    let start = Instant::now();
    let cells = standard_matrix(&cfg);
    let total = cells.len();
    let mut done = 0usize;
    let summary = run_matrix(&cells, |cell| {
        done += 1;
        println!(
            "[{done}/{total}] {}/{} n={} … {}",
            cell.scenario,
            cell.engine,
            cell.n,
            if cell.passed() {
                "pass".to_string()
            } else {
                format!("FAIL: {}", cell.failures.join("; "))
            }
        );
    });
    println!(
        "{} in {:.1} s",
        summary.summary_line(),
        start.elapsed().as_secs_f64()
    );
    if let Some(path) = flag_value(args, "--out") {
        write_bytes_atomic(Path::new(path), summary.markdown().as_bytes()).unwrap_or_else(|e| {
            eprintln!("failed to write matrix report: {e}");
            std::process::exit(2);
        });
    }
    std::process::exit(i32::from(!summary.passed()));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--scenario-matrix") {
        scenario_matrix_main(&args);
    }
    if let Some(n) = parsed_flag(&args, "--staged-n") {
        staged_main(&args, n);
    }
    if let Some(n) = parsed_flag(&args, "--adversarial-n") {
        adversarial_smoke_main(&args, n);
    }
    if let Some(n) = parsed_flag(&args, "--adversarial-resume-n") {
        adversarial_resume_main(&args, n);
    }

    if let Some(dir) = flag_value(&args, "--checkpoint-dir") {
        configure_checkpoints(CheckpointPlan {
            dir: PathBuf::from(dir),
            every: parsed_flag(&args, "--checkpoint-every").unwrap_or(1_000_000_000),
        });
    }

    let effort = if args.iter().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    // Experiment ids are the positional arguments: everything that is not a
    // flag and not the value of a value-taking flag.
    let mut selected: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for arg in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_next = true;
        } else if !arg.starts_with("--") {
            selected.push(arg);
        }
    }

    let start = Instant::now();
    let reports = if selected.is_empty() {
        run_all(effort)
    } else {
        selected
            .iter()
            .filter_map(|id| {
                let r = run_one(&id.to_lowercase(), effort);
                if r.is_none() {
                    eprintln!("unknown experiment id `{id}` (expected e01..e22)");
                }
                r
            })
            .collect()
    };

    let mut out = String::new();
    out.push_str(&format!("# Experiment report ({effort:?} effort)\n\n"));
    for report in &reports {
        out.push_str(&format!(
            "**{} — paper claim:** {}\n\n",
            report.id, report.claim
        ));
        out.push_str(&format!("{}\n", report.table.to_markdown()));
    }
    out.push_str(&format!(
        "_Generated by `cargo run -p ppanalysis --bin experiments` in {:.1} s._\n",
        start.elapsed().as_secs_f64()
    ));

    match flag_value(&args, "--out") {
        // Atomic write: a crash mid-report never clobbers the previous one.
        Some(path) => write_bytes_atomic(Path::new(path), out.as_bytes()).unwrap_or_else(|e| {
            eprintln!("failed to write report: {e}");
            std::process::exit(2);
        }),
        None => print!("{out}"),
    }
}
