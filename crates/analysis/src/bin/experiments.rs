//! Command-line entry point regenerating every table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p ppanalysis --bin experiments -- --quick        # all, small sizes
//! cargo run --release -p ppanalysis --bin experiments                   # all, full sizes
//! cargo run --release -p ppanalysis --bin experiments -- e08 e11        # selected experiments
//! cargo run --release -p ppanalysis --bin experiments -- --quick e13    # selected, small sizes
//! ```
//!
//! # Crash recovery for the long runs
//!
//! The multi-hour E19/E20 rows checkpoint themselves when given a scratch
//! directory; re-running the identical command after a crash resumes from
//! whatever survived (completed sweep trials, plus mid-trial staged-runner
//! snapshots every `--checkpoint-every` interactions):
//!
//! ```text
//! cargo run --release -p ppanalysis --bin experiments -- \
//!     e19 e20 --checkpoint-dir ckpt/ --checkpoint-every 1000000000 --out EXPERIMENTS.tmp.md
//! ```
//!
//! `--out` writes the report atomically (temp + fsync + rename), so a kill
//! mid-write never leaves a truncated report behind.
//!
//! # Standalone staged run (the CI kill/resume smoke test)
//!
//! ```text
//! experiments --staged-n 10000 --seed 42 --checkpoint ckpt.ppss --checkpoint-every 200000
//! experiments --staged-n 10000 --seed 42 --resume ckpt.ppss   # after a SIGKILL
//! ```
//!
//! Runs a single staged `CountExact` trial (`count_exact_dense_staged`),
//! prints `output=<count> interactions=<total>`, and exits 0 iff the run
//! converged to the exact population size — resuming from a snapshot yields
//! the bit-identical trajectory, so both invocations print the same line.

use std::path::{Path, PathBuf};
use std::time::Instant;

use popcount::{
    count_exact_dense_staged_checkpointed, CountExactParams, StagedCheckpoint, StintMode,
};
use ppanalysis::experiments::{configure_checkpoints, run_all, run_one, CheckpointPlan, Effort};
use ppsim::snapshot::write_bytes_atomic;
use ppsim::Engine;

/// Flags that consume the following argument (kept in sync with `main`'s
/// dispatch so flag values are never mistaken for experiment ids).
const VALUE_FLAGS: &[&str] = &[
    "--checkpoint-dir",
    "--checkpoint-every",
    "--out",
    "--staged-n",
    "--seed",
    "--engine",
    "--budget",
    "--checkpoint",
    "--resume",
];

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    flag_value(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value `{v}` for {name}");
            std::process::exit(2);
        })
    })
}

fn staged_main(args: &[String], n: usize) -> ! {
    let seed = parsed_flag(args, "--seed").unwrap_or(42u64);
    let budget = parsed_flag(args, "--budget").unwrap_or((n as u64).saturating_mul(300_000));
    let engine = match flag_value(args, "--engine").unwrap_or("batched") {
        "batched" => Engine::Batched,
        "auto" => Engine::Auto,
        "sharded" => Engine::Sharded {
            shards: 2,
            threads: 1,
        },
        other => {
            eprintln!("unknown --engine `{other}` (expected batched|sharded|auto)");
            std::process::exit(2);
        }
    };
    let every = parsed_flag(args, "--checkpoint-every").unwrap_or((n as u64).max(1) * 20);
    let autosave = flag_value(args, "--checkpoint").map(|p| StagedCheckpoint {
        path: PathBuf::from(p),
        every,
    });
    let resume = flag_value(args, "--resume").map(PathBuf::from);

    let outcome = count_exact_dense_staged_checkpointed(
        CountExactParams::dense_at_scale(n),
        n,
        seed,
        engine,
        budget,
        StintMode::Decoded,
        autosave.as_ref(),
        resume.as_deref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("staged run failed: {e}");
        std::process::exit(2);
    });
    println!(
        "staged CountExact n={n} seed={seed}: output={} interactions={} converged={}",
        outcome
            .output
            .map_or_else(|| "none".into(), |o| o.to_string()),
        outcome.interactions,
        outcome.converged,
    );
    let exact = outcome.converged && outcome.output == Some(n as u64);
    std::process::exit(i32::from(!exact));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(n) = parsed_flag(&args, "--staged-n") {
        staged_main(&args, n);
    }

    if let Some(dir) = flag_value(&args, "--checkpoint-dir") {
        configure_checkpoints(CheckpointPlan {
            dir: PathBuf::from(dir),
            every: parsed_flag(&args, "--checkpoint-every").unwrap_or(1_000_000_000),
        });
    }

    let effort = if args.iter().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    // Experiment ids are the positional arguments: everything that is not a
    // flag and not the value of a value-taking flag.
    let mut selected: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for arg in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_next = true;
        } else if !arg.starts_with("--") {
            selected.push(arg);
        }
    }

    let start = Instant::now();
    let reports = if selected.is_empty() {
        run_all(effort)
    } else {
        selected
            .iter()
            .filter_map(|id| {
                let r = run_one(&id.to_lowercase(), effort);
                if r.is_none() {
                    eprintln!("unknown experiment id `{id}` (expected e01..e20)");
                }
                r
            })
            .collect()
    };

    let mut out = String::new();
    out.push_str(&format!("# Experiment report ({effort:?} effort)\n\n"));
    for report in &reports {
        out.push_str(&format!(
            "**{} — paper claim:** {}\n\n",
            report.id, report.claim
        ));
        out.push_str(&format!("{}\n", report.table.to_markdown()));
    }
    out.push_str(&format!(
        "_Generated by `cargo run -p ppanalysis --bin experiments` in {:.1} s._\n",
        start.elapsed().as_secs_f64()
    ));

    match flag_value(&args, "--out") {
        // Atomic write: a crash mid-report never clobbers the previous one.
        Some(path) => write_bytes_atomic(Path::new(path), out.as_bytes()).unwrap_or_else(|e| {
            eprintln!("failed to write report: {e}");
            std::process::exit(2);
        }),
        None => print!("{out}"),
    }
}
