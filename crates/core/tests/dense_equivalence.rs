//! Equivalence of the dense (interned) counting protocols and their
//! sequential implementations.
//!
//! [`DenseApproximate`] and [`DenseCountExact`] claim to be **exact
//! encodings** of [`Approximate`] and [`CountExact`]: every dense transition
//! decodes the interned agents, applies the identical composed interaction,
//! and re-encodes.  Three layers of evidence, mirroring the engine-equivalence
//! suite (`crates/protocols/tests/engine_equivalence.rs`):
//!
//! * **Lockstep bisimulation at `n = 10⁴`** (the strongest statement): under
//!   the same seed the sequential engine picks the same agent pairs whether
//!   the states are structs or interned indices, and the transitions are
//!   deterministic — so the trajectories must agree *state by state*, with
//!   the paper's default parameters.
//! * **KS + mean-ratio at `n = 10⁴`**: the dense protocol on the **batched**
//!   engine against the native sequential implementation, two-sample
//!   Kolmogorov–Smirnov on the convergence-time distribution plus a
//!   mean-ratio band.  These runs use reduced clock constants — the constants
//!   scale phase *lengths*, not the composition being pinned, and the
//!   sequential side must stay affordable at `n = 10⁴` in debug builds.
//! * **Proptest round-trips**: along random interaction sequences, every
//!   dense index round-trips through decode/encode and every reachable
//!   encoded state decodes back to itself.

use proptest::prelude::*;

use popcount::{
    count_exact_dense_staged, Approximate, ApproximateParams, CountExact, CountExactParams,
    DenseApproximate, DenseCountExact,
};
use ppsim::{
    derive_seed, BatchedSimulator, DenseAdapter, Engine, HybridSimulator, OccupancyMonitor,
    Simulator, SwitchDirection,
};

/// Reduced-constant parameters for the distributional runs: shorter phases
/// (8-hour clocks) keep a sequential `n = 10⁴` run affordable in debug
/// builds.  The constants scale phase lengths, not the composition being
/// pinned — both sides of every comparison run the identical instance.
fn quick_approximate_params() -> ApproximateParams {
    ApproximateParams {
        clock_hours: 8,
        outer_clock_hours: 8,
    }
}

fn quick_count_exact_params() -> CountExactParams {
    CountExactParams {
        clock_hours: 8,
        election_phases: 12,
        ..CountExactParams::default()
    }
}

/// Two-sample Kolmogorov–Smirnov statistic.
fn ks_statistic(a: &mut [u64], b: &mut [u64]) -> f64 {
    a.sort_unstable();
    b.sort_unstable();
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

fn mean(xs: &[u64]) -> f64 {
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

#[test]
fn dense_approximate_is_a_bisimulation_of_the_sequential_protocol() {
    // Default (paper-practical) parameters at n = 10⁴, 2·10⁶ interactions in
    // lockstep: the decoded dense trajectory must equal the struct trajectory
    // agent by agent.
    let n = 10_000usize;
    let params = ApproximateParams::default();
    let dense = DenseApproximate::new(params);
    let mut plain = Simulator::new(Approximate::new(params), n, 0xA11CE).unwrap();
    let mut interned = Simulator::new(DenseAdapter(dense.clone()), n, 0xA11CE).unwrap();
    for step in 0..8 {
        plain.run(250_000);
        interned.run(250_000);
        for (agent, &idx) in plain.states().iter().zip(interned.states()) {
            assert_eq!(
                *agent,
                dense.decode(idx as usize),
                "trajectories diverged at checkpoint {step}"
            );
        }
    }
    assert!(dense.states_discovered() > 100);
}

#[test]
fn dense_count_exact_is_a_bisimulation_of_the_sequential_protocol() {
    let n = 10_000usize;
    let params = CountExactParams::default();
    let dense = DenseCountExact::new(params);
    let mut plain = Simulator::new(CountExact::new(params), n, 0xC0DE).unwrap();
    let mut interned = Simulator::new(DenseAdapter(dense.clone()), n, 0xC0DE).unwrap();
    for step in 0..8 {
        plain.run(250_000);
        interned.run(250_000);
        for (agent, &idx) in plain.states().iter().zip(interned.states()) {
            assert_eq!(
                *agent,
                dense.decode(idx as usize),
                "trajectories diverged at checkpoint {step}"
            );
        }
    }
    assert!(dense.states_discovered() > 100);
}

/// Interactions until every agent has concluded the leader election
/// (`leaderDone` everywhere) — the end of Stage 1, rich enough to expose any
/// schedule distortion yet far cheaper than the full broadcast (the lockstep
/// bisimulation tests cover stages 2–3 transition by transition).
fn approximate_time_batched(n: usize, seed: u64) -> u64 {
    let dense = DenseApproximate::new(quick_approximate_params());
    let mut sim = BatchedSimulator::new(dense, n, seed).unwrap();
    sim.run_until(
        |s| {
            let proto = s.protocol();
            s.counts()
                .iter()
                .enumerate()
                .all(|(st, &c)| c == 0 || proto.decode(st).election.done)
        },
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("batched dense approximate (leaderDone)")
}

/// The same observable on the native sequential implementation.
fn approximate_time_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(Approximate::new(quick_approximate_params()), n, seed).unwrap();
    sim.run_until(
        |s| s.states().iter().all(|a| a.election.done),
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("sequential approximate (leaderDone)")
}

/// Interactions until every agent has concluded the approximation stage
/// (`ApxDone` everywhere) — a convergence observable that is reached for any
/// parameter choice, unlike exact-count unanimity which needs full-length
/// phases.
fn count_exact_apx_time_batched(n: usize, seed: u64) -> u64 {
    let dense = DenseCountExact::new(quick_count_exact_params());
    let mut sim = BatchedSimulator::new(dense, n, seed).unwrap();
    sim.run_until(
        |s| {
            let proto = s.protocol();
            s.counts()
                .iter()
                .enumerate()
                .all(|(st, &c)| c == 0 || proto.decode(st).stage.apx_done)
        },
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("batched dense count-exact (ApxDone)")
}

fn count_exact_apx_time_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(CountExact::new(quick_count_exact_params()), n, seed).unwrap();
    sim.run_until(
        |s| s.states().iter().all(|a| a.stage.apx_done),
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("sequential count-exact (ApxDone)")
}

#[test]
fn dense_approximate_passes_kolmogorov_smirnov_at_ten_thousand() {
    let n = 10_000usize;
    let samples = 10usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| approximate_time_batched(n, derive_seed(0xDA19, t as u64)))
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| approximate_time_sequential(n, derive_seed(0xDA20, t as u64)))
        .collect();
    let ratio = mean(&batched) / mean(&sequential);
    assert!(
        (0.7..1.43).contains(&ratio),
        "mean convergence diverges: batched {:.0} vs sequential {:.0}",
        mean(&batched),
        mean(&sequential)
    );
    let d = ks_statistic(&mut batched, &mut sequential);
    // Critical value at α ≈ 0.001 for two samples of 10: 1.95·sqrt(2/10) ≈ 0.87.
    // (The sample count is bounded by the sequential side's debug-build cost;
    // the lockstep bisimulation test above is the sharp instrument.)
    assert!(
        d < 0.87,
        "KS statistic {d:.3} exceeds the α=0.001 critical value — the dense \
         encoding distorts the Approximate convergence-time distribution"
    );
}

#[test]
fn dense_count_exact_passes_kolmogorov_smirnov_at_ten_thousand() {
    let n = 10_000usize;
    let samples = 10usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| count_exact_apx_time_batched(n, derive_seed(0xCE19, t as u64)))
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| count_exact_apx_time_sequential(n, derive_seed(0xCE20, t as u64)))
        .collect();
    let ratio = mean(&batched) / mean(&sequential);
    assert!(
        (0.7..1.43).contains(&ratio),
        "mean ApxDone time diverges: batched {:.0} vs sequential {:.0}",
        mean(&batched),
        mean(&sequential)
    );
    let d = ks_statistic(&mut batched, &mut sequential);
    assert!(
        d < 0.87,
        "KS statistic {d:.3} exceeds the α=0.001 critical value — the dense \
         encoding distorts the CountExact ApxDone-time distribution"
    );
}

#[test]
fn hybrid_round_trip_preserves_the_count_exact_configuration_at_ten_thousand() {
    // Dense ↔ per-agent ↔ dense on the real protocol at n = 10⁴: both
    // migrations must be lossless in the configuration (the multiset of
    // states — the process is Markov in it), outputs included, and the run
    // must keep executing cleanly afterwards.
    let n = 10_000usize;
    let proto = DenseCountExact::new(quick_count_exact_params());
    let mut sim = HybridSimulator::new(proto, n, 0xB15).unwrap();
    sim.run(200_000);
    let counts = sim.counts();
    let distinct = sim.output_stats().distinct_outputs();
    let interactions = sim.interactions();

    sim.switch_to_agent().unwrap();
    assert!(!sim.is_dense());
    assert_eq!(sim.counts(), counts, "dense → per-agent must be lossless");
    assert_eq!(sim.output_stats().distinct_outputs(), distinct);
    assert_eq!(
        sim.interactions(),
        interactions,
        "no interaction double-counted"
    );

    sim.switch_to_dense().unwrap();
    assert!(sim.is_dense());
    assert_eq!(sim.counts(), counts, "per-agent → dense must be lossless");
    assert_eq!(sim.output_stats().distinct_outputs(), distinct);
    assert_eq!(sim.interactions(), interactions);

    sim.run(50_000);
    assert_eq!(sim.interactions(), interactions + 50_000);
    assert_eq!(
        sim.dense_interactions() + sim.agent_interactions(),
        sim.interactions(),
        "phase counters partition the total across manual migrations"
    );
}

#[test]
fn hybrid_phase_counters_match_a_lockstep_budget() {
    // The accounting regression the one-shot hand-off motivated: drive the
    // hybrid engine through arbitrary chunk boundaries (the same chunks a
    // lockstep sequential run would execute) and check that the summed phase
    // counters agree with the driven budget exactly — no partial block at a
    // switch is counted twice or dropped.
    let n = 4_000usize;
    let proto = DenseCountExact::new(quick_count_exact_params());
    let mut sim = HybridSimulator::new(proto, n, 0xACC7).unwrap();
    let mut reference =
        Simulator::new(CountExact::new(quick_count_exact_params()), n, 0xACC7).unwrap();
    let mut driven = 0u64;
    for chunk in [3u64, 1_000, 77_777, 12, 250_000, 1] {
        sim.run(chunk);
        reference.run(chunk);
        driven += chunk;
        assert_eq!(sim.interactions(), driven);
        assert_eq!(
            sim.interactions(),
            reference.interactions(),
            "hybrid and lockstep sequential runs must count the same schedule"
        );
        assert_eq!(
            sim.dense_interactions() + sim.agent_interactions(),
            driven,
            "phase counters must sum to the driven budget at every boundary"
        );
    }
}

#[test]
fn hybrid_does_not_thrash_on_a_full_count_exact_run() {
    // The integration side of the hysteresis property (the pure monitor is
    // property-tested in ppsim): a complete CountExact execution crosses the
    // occupancy threshold once on the way into the refinement and possibly
    // once back out — never repeatedly.
    let n = 4_000usize;
    let outcome = count_exact_dense_staged(
        CountExactParams::dense_at_scale(n),
        n,
        19,
        Engine::Batched,
        u64::MAX >> 1,
    )
    .unwrap();
    assert!(outcome.converged);
    assert_eq!(outcome.output, Some(n as u64));
    assert!(
        (1..=8).contains(&outcome.switch_interactions.len()),
        "expected a handful of monitor-spaced migrations around the \
         refinement, not a thrash storm; got {:?}",
        outcome.switch_interactions
    );
    // Consecutive migrations must be separated by real work (the monitor
    // observes every n/4 interactions at the earliest) — never back-to-back.
    for pair in outcome.switch_interactions.windows(2) {
        assert!(
            pair[1] - pair[0] >= (n as u64) / 4,
            "migrations {} and {} are closer than one monitor interval",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn monitor_hysteresis_band_is_quiet_under_oscillating_occupancy() {
    // Occupancy oscillating anywhere inside the (down·√n, up·√n] pressure
    // band — however violently — never migrates.
    let n = 10_000u64; // √n = 100: band is q_occ² ∈ (800, 6400], q_occ ∈ (29, 80]
    let mut monitor = OccupancyMonitor::new(n, 64.0, 8.0, 2);
    for i in 0..10_000usize {
        let occ = if i % 2 == 0 { 30 } else { 80 };
        assert_eq!(monitor.observe(occ), None);
    }
    assert!(monitor.is_dense());
    // And a sustained crossing still migrates afterwards.
    assert_eq!(monitor.observe(500), None);
    assert_eq!(monitor.observe(500), Some(SwitchDirection::ToAgent));
}

#[test]
fn hybrid_and_sequential_count_exact_pass_kolmogorov_smirnov() {
    // KS equivalence of full-convergence interaction counts: the hybrid
    // engine (auto-switching, formerly the bespoke staged hand-off) against
    // the native sequential implementation — the gold standard both switch
    // policies must sample.  Full convergence needs full-length phases (the
    // refinement's load balancing stalls under the reduced 8-hour clocks the
    // ApxDone observables tolerate), so this test runs the default
    // parameters at the small n the sequential unit tests already converge.
    let n = 300usize;
    let samples = 6usize;
    let budget = 400_000_000u64;
    let mut hybrid: Vec<u64> = (0..samples)
        .map(|t| {
            let outcome = count_exact_dense_staged(
                CountExactParams::default(),
                n,
                derive_seed(0x4B21, t as u64),
                Engine::Batched, // explicit: stay on the hybrid path below the crossover
                budget,
            )
            .unwrap();
            assert!(outcome.converged, "hybrid trial {t} must converge");
            assert_eq!(outcome.output, Some(n as u64));
            outcome.interactions
        })
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| {
            let mut sim = Simulator::new(
                CountExact::new(CountExactParams::default()),
                n,
                derive_seed(0x4B22, t as u64),
            )
            .unwrap();
            let outcome = sim.run_until(
                |s| s.output_stats().unanimous().is_some_and(|o| o.is_some()),
                (n as u64) * 20,
                budget,
            );
            assert!(outcome.converged(), "sequential trial {t} must converge");
            sim.interactions()
        })
        .collect();
    let ratio = mean(&hybrid) / mean(&sequential);
    assert!(
        (0.7..1.43).contains(&ratio),
        "mean convergence diverges: hybrid {:.0} vs sequential {:.0}",
        mean(&hybrid),
        mean(&sequential)
    );
    let d = ks_statistic(&mut hybrid, &mut sequential);
    // Critical value at α ≈ 0.001 for two samples of 6: 1.95·sqrt(2/6) ≈ 1.13
    // — vacuous, so use the α ≈ 0.05 value 1.36·sqrt(2/6) ≈ 0.79 instead
    // (sample count bounded by the sequential side's debug-build cost).
    assert!(
        d < 0.79,
        "KS statistic {d:.3} exceeds the α=0.05 critical value — the hybrid \
         engine distorts the CountExact convergence-time distribution"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Along random schedules, every state index the dense Approximate
    /// discovers round-trips through decode/encode, and the decoded agents
    /// re-encode to the index the engine holds.
    #[test]
    fn dense_approximate_indices_roundtrip(seed in any::<u64>(), steps in 1u64..60_000) {
        let dense = DenseApproximate::new(ApproximateParams::default());
        let mut sim = Simulator::new(DenseAdapter(dense.clone()), 512, seed).unwrap();
        sim.run(steps);
        for &idx in sim.states() {
            let agent = dense.decode(idx as usize);
            prop_assert_eq!(dense.encode(agent), idx as usize);
            prop_assert_eq!(dense.decode(dense.encode(agent)), agent);
        }
        // Every index below the discovery watermark round-trips, reachable or
        // retired.
        for idx in 0..dense.states_discovered() {
            prop_assert_eq!(dense.encode(dense.decode(idx)), idx);
        }
    }

    /// The same round-trip law for the dense CountExact.
    #[test]
    fn dense_count_exact_indices_roundtrip(seed in any::<u64>(), steps in 1u64..60_000) {
        let dense = DenseCountExact::new(CountExactParams::default());
        let mut sim = Simulator::new(DenseAdapter(dense.clone()), 512, seed).unwrap();
        sim.run(steps);
        for &idx in sim.states() {
            let agent = dense.decode(idx as usize);
            prop_assert_eq!(dense.encode(agent), idx as usize);
            prop_assert_eq!(dense.decode(dense.encode(agent)), agent);
        }
        for idx in 0..dense.states_discovered() {
            prop_assert_eq!(dense.encode(dense.decode(idx)), idx);
        }
    }

    /// Codec bisimulation for the dense Approximate: over reachable indices,
    /// `encode(decode(i)) == i` through the `AgentCodec` surface, and
    /// decode → native `Protocol::interact` → encode agrees with the interned
    /// δ path — the law that makes the hybrid engine's decoded per-agent
    /// stint an exact substitute for interned stepping.
    #[test]
    fn dense_approximate_codec_bisimulates_the_interned_delta(
        seed in any::<u64>(),
        steps in 1_000u64..40_000,
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 32..33),
    ) {
        use ppsim::AgentCodec;
        let dense = DenseApproximate::new(ApproximateParams::default());
        let mut sim = Simulator::new(DenseAdapter(dense.clone()), 512, seed).unwrap();
        sim.run(steps);
        let discovered = dense.states_discovered();
        for idx in 0..discovered {
            prop_assert_eq!(dense.encode_agent(&dense.decode_agent(idx)), idx);
            prop_assert_eq!(dense.try_decode_agent(idx), Some(dense.decode_agent(idx)));
        }
        let native = dense.native();
        let mut rng = ppsim::seeded_rng(seed);
        for (a, b) in pairs {
            let (i, j) = ((a % discovered as u64) as usize, (b % discovered as u64) as usize);
            let mut u = dense.decode_agent(i);
            let mut v = dense.decode_agent(j);
            ppsim::Protocol::interact(&native, &mut u, &mut v, &mut rng);
            let codec_path = (dense.encode_agent(&u), dense.encode_agent(&v));
            prop_assert_eq!(codec_path, ppsim::DenseProtocol::transition(&dense, i, j));
        }
    }

    /// The same codec bisimulation law for the dense CountExact.
    #[test]
    fn dense_count_exact_codec_bisimulates_the_interned_delta(
        seed in any::<u64>(),
        steps in 1_000u64..40_000,
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 32..33),
    ) {
        use ppsim::AgentCodec;
        let dense = DenseCountExact::new(CountExactParams::default());
        let mut sim = Simulator::new(DenseAdapter(dense.clone()), 512, seed).unwrap();
        sim.run(steps);
        let discovered = dense.states_discovered();
        for idx in 0..discovered {
            prop_assert_eq!(dense.encode_agent(&dense.decode_agent(idx)), idx);
        }
        let native = dense.native();
        let mut rng = ppsim::seeded_rng(seed);
        for (a, b) in pairs {
            let (i, j) = ((a % discovered as u64) as usize, (b % discovered as u64) as usize);
            let mut u = dense.decode_agent(i);
            let mut v = dense.decode_agent(j);
            ppsim::Protocol::interact(&native, &mut u, &mut v, &mut rng);
            let codec_path = (dense.encode_agent(&u), dense.encode_agent(&v));
            prop_assert_eq!(codec_path, ppsim::DenseProtocol::transition(&dense, i, j));
        }
    }

    /// Decoded vs interned stints on the real protocol: starting from the
    /// same mid-run configuration and stint seed, the native-struct stint and
    /// the interned-index stint must advance the *identical* trajectory (the
    /// pair schedule is a pure function of the seed, and the codec
    /// bisimulates δ), so their tallied configurations agree interaction for
    /// interaction.
    #[test]
    fn decoded_and_interned_stints_advance_the_same_trajectory(
        seed in any::<u64>(),
        warmup in 10_000u64..100_000,
    ) {
        let n = 2_000usize;
        let proto = DenseCountExact::new(quick_count_exact_params());
        let mut warm = HybridSimulator::new(proto.clone(), n, seed).unwrap();
        warm.run(warmup);
        let counts = warm.counts();
        let stint_seed = seed ^ 0xDEC0;
        let mut decoded = ppsim::DenseProtocol::agent_stint(&proto, &counts, stint_seed)
            .expect("DenseCountExact carries a codec");
        prop_assert_eq!(decoded.kind(), "decoded");
        let mut interned = ppsim::DecodedStint::boxed(
            ppsim::IndexCodec(proto.clone()),
            &counts,
            stint_seed,
        );
        prop_assert_eq!(interned.kind(), "interned");
        for _ in 0..4 {
            decoded.run(2_500);
            interned.run(2_500);
            prop_assert_eq!(decoded.counts(), interned.counts());
            prop_assert_eq!(decoded.occupied_states(), interned.occupied_states());
        }
    }
}
