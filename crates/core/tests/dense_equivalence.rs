//! Equivalence of the dense (interned) counting protocols and their
//! sequential implementations.
//!
//! [`DenseApproximate`] and [`DenseCountExact`] claim to be **exact
//! encodings** of [`Approximate`] and [`CountExact`]: every dense transition
//! decodes the interned agents, applies the identical composed interaction,
//! and re-encodes.  Three layers of evidence, mirroring the engine-equivalence
//! suite (`crates/protocols/tests/engine_equivalence.rs`):
//!
//! * **Lockstep bisimulation at `n = 10⁴`** (the strongest statement): under
//!   the same seed the sequential engine picks the same agent pairs whether
//!   the states are structs or interned indices, and the transitions are
//!   deterministic — so the trajectories must agree *state by state*, with
//!   the paper's default parameters.
//! * **KS + mean-ratio at `n = 10⁴`**: the dense protocol on the **batched**
//!   engine against the native sequential implementation, two-sample
//!   Kolmogorov–Smirnov on the convergence-time distribution plus a
//!   mean-ratio band.  These runs use reduced clock constants — the constants
//!   scale phase *lengths*, not the composition being pinned, and the
//!   sequential side must stay affordable at `n = 10⁴` in debug builds.
//! * **Proptest round-trips**: along random interaction sequences, every
//!   dense index round-trips through decode/encode and every reachable
//!   encoded state decodes back to itself.

use proptest::prelude::*;

use popcount::{
    Approximate, ApproximateParams, CountExact, CountExactParams, DenseApproximate, DenseCountExact,
};
use ppsim::{derive_seed, BatchedSimulator, DenseAdapter, Simulator};

/// Reduced-constant parameters for the distributional runs: shorter phases
/// (8-hour clocks) keep a sequential `n = 10⁴` run affordable in debug
/// builds.  The constants scale phase lengths, not the composition being
/// pinned — both sides of every comparison run the identical instance.
fn quick_approximate_params() -> ApproximateParams {
    ApproximateParams {
        clock_hours: 8,
        outer_clock_hours: 8,
    }
}

fn quick_count_exact_params() -> CountExactParams {
    CountExactParams {
        clock_hours: 8,
        election_phases: 12,
        ..CountExactParams::default()
    }
}

/// Two-sample Kolmogorov–Smirnov statistic.
fn ks_statistic(a: &mut [u64], b: &mut [u64]) -> f64 {
    a.sort_unstable();
    b.sort_unstable();
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

fn mean(xs: &[u64]) -> f64 {
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

#[test]
fn dense_approximate_is_a_bisimulation_of_the_sequential_protocol() {
    // Default (paper-practical) parameters at n = 10⁴, 2·10⁶ interactions in
    // lockstep: the decoded dense trajectory must equal the struct trajectory
    // agent by agent.
    let n = 10_000usize;
    let params = ApproximateParams::default();
    let dense = DenseApproximate::new(params);
    let mut plain = Simulator::new(Approximate::new(params), n, 0xA11CE).unwrap();
    let mut interned = Simulator::new(DenseAdapter(dense.clone()), n, 0xA11CE).unwrap();
    for step in 0..8 {
        plain.run(250_000);
        interned.run(250_000);
        for (agent, &idx) in plain.states().iter().zip(interned.states()) {
            assert_eq!(
                *agent,
                dense.decode(idx as usize),
                "trajectories diverged at checkpoint {step}"
            );
        }
    }
    assert!(dense.states_discovered() > 100);
}

#[test]
fn dense_count_exact_is_a_bisimulation_of_the_sequential_protocol() {
    let n = 10_000usize;
    let params = CountExactParams::default();
    let dense = DenseCountExact::new(params);
    let mut plain = Simulator::new(CountExact::new(params), n, 0xC0DE).unwrap();
    let mut interned = Simulator::new(DenseAdapter(dense.clone()), n, 0xC0DE).unwrap();
    for step in 0..8 {
        plain.run(250_000);
        interned.run(250_000);
        for (agent, &idx) in plain.states().iter().zip(interned.states()) {
            assert_eq!(
                *agent,
                dense.decode(idx as usize),
                "trajectories diverged at checkpoint {step}"
            );
        }
    }
    assert!(dense.states_discovered() > 100);
}

/// Interactions until every agent has concluded the leader election
/// (`leaderDone` everywhere) — the end of Stage 1, rich enough to expose any
/// schedule distortion yet far cheaper than the full broadcast (the lockstep
/// bisimulation tests cover stages 2–3 transition by transition).
fn approximate_time_batched(n: usize, seed: u64) -> u64 {
    let dense = DenseApproximate::new(quick_approximate_params());
    let mut sim = BatchedSimulator::new(dense, n, seed).unwrap();
    sim.run_until(
        |s| {
            let proto = s.protocol();
            s.counts()
                .iter()
                .enumerate()
                .all(|(st, &c)| c == 0 || proto.decode(st).election.done)
        },
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("batched dense approximate (leaderDone)")
}

/// The same observable on the native sequential implementation.
fn approximate_time_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(Approximate::new(quick_approximate_params()), n, seed).unwrap();
    sim.run_until(
        |s| s.states().iter().all(|a| a.election.done),
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("sequential approximate (leaderDone)")
}

/// Interactions until every agent has concluded the approximation stage
/// (`ApxDone` everywhere) — a convergence observable that is reached for any
/// parameter choice, unlike exact-count unanimity which needs full-length
/// phases.
fn count_exact_apx_time_batched(n: usize, seed: u64) -> u64 {
    let dense = DenseCountExact::new(quick_count_exact_params());
    let mut sim = BatchedSimulator::new(dense, n, seed).unwrap();
    sim.run_until(
        |s| {
            let proto = s.protocol();
            s.counts()
                .iter()
                .enumerate()
                .all(|(st, &c)| c == 0 || proto.decode(st).stage.apx_done)
        },
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("batched dense count-exact (ApxDone)")
}

fn count_exact_apx_time_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(CountExact::new(quick_count_exact_params()), n, seed).unwrap();
    sim.run_until(
        |s| s.states().iter().all(|a| a.stage.apx_done),
        (n as u64) * 4,
        u64::MAX >> 1,
    )
    .expect_converged("sequential count-exact (ApxDone)")
}

#[test]
fn dense_approximate_passes_kolmogorov_smirnov_at_ten_thousand() {
    let n = 10_000usize;
    let samples = 10usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| approximate_time_batched(n, derive_seed(0xDA19, t as u64)))
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| approximate_time_sequential(n, derive_seed(0xDA20, t as u64)))
        .collect();
    let ratio = mean(&batched) / mean(&sequential);
    assert!(
        (0.7..1.43).contains(&ratio),
        "mean convergence diverges: batched {:.0} vs sequential {:.0}",
        mean(&batched),
        mean(&sequential)
    );
    let d = ks_statistic(&mut batched, &mut sequential);
    // Critical value at α ≈ 0.001 for two samples of 10: 1.95·sqrt(2/10) ≈ 0.87.
    // (The sample count is bounded by the sequential side's debug-build cost;
    // the lockstep bisimulation test above is the sharp instrument.)
    assert!(
        d < 0.87,
        "KS statistic {d:.3} exceeds the α=0.001 critical value — the dense \
         encoding distorts the Approximate convergence-time distribution"
    );
}

#[test]
fn dense_count_exact_passes_kolmogorov_smirnov_at_ten_thousand() {
    let n = 10_000usize;
    let samples = 10usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| count_exact_apx_time_batched(n, derive_seed(0xCE19, t as u64)))
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| count_exact_apx_time_sequential(n, derive_seed(0xCE20, t as u64)))
        .collect();
    let ratio = mean(&batched) / mean(&sequential);
    assert!(
        (0.7..1.43).contains(&ratio),
        "mean ApxDone time diverges: batched {:.0} vs sequential {:.0}",
        mean(&batched),
        mean(&sequential)
    );
    let d = ks_statistic(&mut batched, &mut sequential);
    assert!(
        d < 0.87,
        "KS statistic {d:.3} exceeds the α=0.001 critical value — the dense \
         encoding distorts the CountExact ApxDone-time distribution"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Along random schedules, every state index the dense Approximate
    /// discovers round-trips through decode/encode, and the decoded agents
    /// re-encode to the index the engine holds.
    #[test]
    fn dense_approximate_indices_roundtrip(seed in any::<u64>(), steps in 1u64..60_000) {
        let dense = DenseApproximate::new(ApproximateParams::default());
        let mut sim = Simulator::new(DenseAdapter(dense.clone()), 512, seed).unwrap();
        sim.run(steps);
        for &idx in sim.states() {
            let agent = dense.decode(idx as usize);
            prop_assert_eq!(dense.encode(agent), idx as usize);
            prop_assert_eq!(dense.decode(dense.encode(agent)), agent);
        }
        // Every index below the discovery watermark round-trips, reachable or
        // retired.
        for idx in 0..dense.states_discovered() {
            prop_assert_eq!(dense.encode(dense.decode(idx)), idx);
        }
    }

    /// The same round-trip law for the dense CountExact.
    #[test]
    fn dense_count_exact_indices_roundtrip(seed in any::<u64>(), steps in 1u64..60_000) {
        let dense = DenseCountExact::new(CountExactParams::default());
        let mut sim = Simulator::new(DenseAdapter(dense.clone()), 512, seed).unwrap();
        sim.run(steps);
        for &idx in sim.states() {
            let agent = dense.decode(idx as usize);
            prop_assert_eq!(dense.encode(agent), idx as usize);
            prop_assert_eq!(dense.decode(dense.encode(agent)), agent);
        }
        for idx in 0..dense.states_discovered() {
            prop_assert_eq!(dense.encode(dense.decode(idx)), idx);
        }
    }
}
