//! Property-based tests for the counting protocols' core invariants.

use proptest::prelude::*;

use popcount::backup::{
    approximate_backup_interact, exact_backup_interact, ApproximateBackupState, ExactBackupState,
};
use popcount::exact::refinement_stage::refinement_output;
use popcount::search::{search_interact, SearchContext, SearchState};
use popcount::{CountExactParams, ExactStageState};

fn search_state() -> impl Strategy<Value = SearchState> {
    (-1i32..20, any::<bool>()).prop_map(|(k, done)| SearchState { k, done })
}

proptest! {
    /// The Search Protocol's follower phases never create load out of thin air: the
    /// total number of tokens represented by the two agents never increases.
    #[test]
    fn search_followers_never_create_tokens(
        u in search_state(),
        v in search_state(),
        phase in 0u32..20,
        first in any::<bool>(),
    ) {
        let tokens = |s: &SearchState| if s.k >= 0 { 1u128 << s.k.min(40) } else { 0 };
        let before = tokens(&u) + tokens(&v);
        let mut a = u;
        let mut b = v;
        let ctx = SearchContext {
            u_leader: false,
            v_leader: false,
            u_phase: phase,
            v_phase: phase,
            u_first_tick: first,
        };
        search_interact(&mut a, &mut b, &ctx);
        // Phase 0 resets and phase 3 epidemics may *drop* or *copy* logical loads
        // (they are bookkeeping, not token moves), but the powers-of-two balancing
        // phase (phase mod 5 == 2) must conserve tokens exactly.
        if phase % 5 == 2 && !u.done && !v.done {
            prop_assert_eq!(tokens(&a) + tokens(&b), before);
        }
        // A done agent's estimate is never altered by follower actions.
        if u.done {
            prop_assert_eq!(a.k, u.k);
        }
    }

    /// The leader's search exponent only ever grows, and only by one per decision.
    #[test]
    fn search_leader_decision_is_monotone(
        k in -1i32..20,
        partner_k in -1i32..5,
        first in any::<bool>(),
    ) {
        let mut leader = SearchState { k, done: false };
        let mut follower = SearchState { k: partner_k, done: false };
        let ctx = SearchContext {
            u_leader: true,
            v_leader: false,
            u_phase: 4,
            v_phase: 4,
            u_first_tick: first,
        };
        search_interact(&mut leader, &mut follower, &ctx);
        prop_assert!(leader.k == k || leader.k == k + 1);
        if leader.done {
            prop_assert_eq!(leader.k, k, "the concluding round does not bump the exponent");
            prop_assert!(partner_k > 0, "the search only stops when an overloaded agent was observed");
        }
    }

    /// The approximate backup conserves its tokens and its output never exceeds the
    /// largest bag that can exist.
    #[test]
    fn approximate_backup_conserves_tokens(
        ku in -1i32..12, kmu in 0i32..12,
        kv in -1i32..12, kmv in 0i32..12,
    ) {
        let tokens = |k: i32| if k >= 0 { 1u64 << k } else { 0 };
        let mut u = ApproximateBackupState { k: ku, k_max: kmu };
        let mut v = ApproximateBackupState { k: kv, k_max: kmv };
        let before = tokens(ku) + tokens(kv);
        approximate_backup_interact(&mut u, &mut v);
        prop_assert_eq!(tokens(u.k) + tokens(v.k), before);
        prop_assert_eq!(u.k_max, v.k_max);
        prop_assert!(u.k_max >= kmu.max(kmv));
        prop_assert!(u.k_max <= kmu.max(kmv).max(ku + 1).max(kv + 1));
    }

    /// The exact backup never loses uncounted tokens and never invents counts larger
    /// than the combined holdings.
    #[test]
    fn exact_backup_conserves_uncounted_tokens(
        cu in any::<bool>(), nu in 1u64..1_000,
        cv in any::<bool>(), nv in 1u64..1_000,
    ) {
        let mut u = ExactBackupState { counted: cu, count: nu };
        let mut v = ExactBackupState { counted: cv, count: nv };
        let uncounted_before = (if !cu { nu } else { 0 }) + if !cv { nv } else { 0 };
        exact_backup_interact(&mut u, &mut v);
        let uncounted_after = (if !u.counted { u.count } else { 0 })
            + if !v.counted { v.count } else { 0 };
        prop_assert_eq!(uncounted_after, uncounted_before);
        prop_assert!(u.count <= nu.max(nv).max(nu + nv));
        prop_assert!(v.count <= nu.max(nv).max(nu + nv));
    }

    /// The refinement output function inverts a perfectly balanced load exactly:
    /// for any population size and any admissible approximation k (log₂ n − 3 ≤ k),
    /// a per-agent load within ±1 of the balanced value yields exactly n.
    #[test]
    fn refinement_output_recovers_n(n in 8u64..200_000, delta in -1i64..=1) {
        let k = (n as f64).log2().ceil() as i64; // within the Lemma 10 band
        let constant = 256u64;
        let total = u128::from(constant) << (2 * k as u32);
        let per_agent = (total / u128::from(n)) as i64 + delta;
        prop_assume!(per_agent > 0);
        let state = ExactStageState {
            k,
            l: per_agent as u64,
            apx_done: true,
            multiplied: true,
            ..ExactStageState::new()
        };
        prop_assert_eq!(refinement_output(&state, constant), Some(n));
    }

    /// The output function is absent exactly when it would be meaningless.
    #[test]
    fn refinement_output_gating(l in 0u64..1000, apx in any::<bool>(), mult in any::<bool>()) {
        let state = ExactStageState {
            k: 5,
            l,
            apx_done: apx,
            multiplied: mult,
            ..ExactStageState::new()
        };
        let out = refinement_output(&state, 256);
        prop_assert_eq!(out.is_some(), apx && mult && l > 0);
    }

    /// Killing a sequential `CountExact` run at a random budget and
    /// resuming it from the serialized snapshot reproduces the
    /// uninterrupted trajectory bit for bit — the full composed protocol
    /// (junta + clock + election + stages) round-trips through the codec.
    #[test]
    fn count_exact_saved_at_a_random_budget_resumes_bit_identically(
        n in 8usize..120,
        seed in any::<u64>(),
        kill_at in 0u64..20_000,
        rest in 1u64..20_000,
    ) {
        let verdict = ppsim::faultsim::kill_and_resume(
            || ppsim::Simulator::new(popcount::CountExact::new(CountExactParams::default()), n, seed),
            |s, b| s.run(b),
            &[kill_at, rest],
            1,
        ).unwrap();
        prop_assert!(verdict.bit_identical());
    }

    /// The same property for `DenseCountExact` on the batched engine: the
    /// interned state space (rebuilt from the snapshot's interner contents)
    /// must reproduce the same dense indices in the same discovery order.
    #[test]
    fn dense_count_exact_resumes_bit_identically(
        n in 8usize..120,
        seed in any::<u64>(),
        kill_at in 0u64..20_000,
        rest in 1u64..20_000,
    ) {
        let proto = popcount::DenseCountExact::new(CountExactParams::default());
        let verdict = ppsim::faultsim::kill_and_resume(
            || ppsim::BatchedSimulator::new(proto.clone(), n, seed),
            |s, b| s.run(b),
            &[kill_at, rest],
            1,
        ).unwrap();
        prop_assert!(verdict.bit_identical());
    }
}
