//! Diagnostic runner for CountExact (not part of the public API).
use popcount::{CountExact, CountExactParams};
use ppsim::Simulator;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let proto = CountExact::new(CountExactParams::default());
    let mut sim = Simulator::new(proto, n, seed).unwrap();
    for _ in 0..4000 {
        sim.run(50_000);
        let states = sim.states();
        let leaders = states.iter().filter(|a| a.is_leader()).count();
        let done = states.iter().filter(|a| a.election.done).count();
        let apx = states.iter().filter(|a| a.stage.apx_done).count();
        let mult = states.iter().filter(|a| a.stage.multiplied).count();
        let phase = states.iter().map(|a| a.sync.clock.phase).max().unwrap();
        let level = states.iter().map(|a| a.sync.junta.level).max().unwrap();
        let k = states.iter().find(|a| a.stage.apx_done).map(|a| a.stage.k);
        let leader = states.iter().find(|a| a.is_leader());
        let (li, ll) = leader
            .map(|a| (a.stage.explosions(), a.stage.l))
            .unwrap_or((0, 0));
        let total_l: u128 = states.iter().map(|a| a.stage.l as u128).sum();
        let outputs: Vec<u64> = {
            let p = CountExact::new(CountExactParams::default());
            let mut set: Vec<u64> = states.iter().filter_map(|a| p.agent_output(a)).collect();
            set.sort_unstable();
            set.dedup();
            set.truncate(5);
            set
        };
        println!(
            "t={:>9} phase={:>3} lvl={} leaders={} eldone={:>4} apx={:>4} mult={:>4} leader(i={},l={}) k={:?} totalL={} out={:?}",
            sim.interactions(), phase, level, leaders, done, apx, mult, li, ll, k, total_l, outputs
        );
        let proto2 = CountExact::new(CountExactParams::default());
        if states
            .iter()
            .all(|a| proto2.agent_output(a) == Some(n as u64))
        {
            println!("CONVERGED to {n} at {} interactions", sim.interactions());
            break;
        }
        if sim.interactions() > 40_000_000 {
            break;
        }
    }
}
