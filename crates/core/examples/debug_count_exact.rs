//! Diagnostic runner for CountExact (not part of the public API).
//!
//! Drives the **dense** protocol through the canonical entry point —
//! [`DenseSimulator`] with [`Engine::Auto`] — with
//! [`CountExactParams::dense_at_scale`], so the stage-by-stage trace works
//! from a few hundred agents (sequential engine) into the dense regime
//! (batched engine): `cargo run --release -p popcount --example
//! debug_count_exact -- <n> <seed>`.
//!
//! This example watches the *stages* unfold; it stops reporting at its
//! interaction bailout rather than insisting on convergence.  For running
//! `CountExact` to its exact output at population scale, the entry point is
//! [`popcount::count_exact_dense_staged`] — the refinement stage's `Θ(n)`
//! live loads want the per-agent engine (see `popcount::exact::staged`).

use popcount::{CountExactParams, DenseCountExact};
use ppsim::{DenseSimulator, Engine};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let proto = DenseCountExact::new(CountExactParams::dense_at_scale(n));
    let mut sim = DenseSimulator::new(Engine::Auto, proto.clone(), n, seed).unwrap();
    eprintln!(
        "engine = {} (Engine::Auto at n = {n}), capacity = {} dense states",
        sim.engine_name(),
        ppsim::DenseProtocol::num_states(&proto),
    );
    for _ in 0..4000 {
        sim.run(50_000);
        // Decode the occupied dense states into full agents once per report.
        // Indices are interned in first-appearance order, so everything at
        // or beyond the census watermark is guaranteed empty — borrow the
        // counts in place and scan only the discovered prefix instead of
        // copying and walking the full capacity-sized vector per report.
        let census = proto.states_discovered();
        let occupied: Vec<(popcount::CountExactAgent, u64)> = sim.with_counts(|counts| {
            counts[..census.min(counts.len())]
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(s, &c)| (proto.decode(s), c))
                .collect()
        });
        let tally = |pred: &dyn Fn(&popcount::CountExactAgent) -> bool| -> u64 {
            occupied
                .iter()
                .filter(|(a, _)| pred(a))
                .map(|(_, c)| c)
                .sum()
        };
        let leaders = tally(&|a| a.is_leader());
        let done = tally(&|a| a.election.done);
        let apx = tally(&|a| a.stage.apx_done);
        let mult = tally(&|a| a.stage.multiplied);
        let phase = occupied
            .iter()
            .map(|(a, _)| a.sync.clock.phase)
            .max()
            .unwrap();
        let level = occupied
            .iter()
            .map(|(a, _)| a.sync.junta.level)
            .max()
            .unwrap();
        let k = occupied
            .iter()
            .find(|(a, _)| a.stage.apx_done)
            .map(|(a, _)| a.stage.k);
        let leader = occupied.iter().find(|(a, _)| a.is_leader());
        let (li, ll) = leader.map_or((0, 0), |(a, _)| (a.stage.explosions(), a.stage.l));
        let total_l: u128 = occupied
            .iter()
            .map(|(a, c)| u128::from(a.stage.l) * u128::from(*c))
            .sum();
        let stats = sim.output_stats();
        println!(
            "t={:>9} phase={:>3} lvl={} leaders={} eldone={:>4} apx={:>4} mult={:>4} \
             leader(i={},l={}) k={:?} totalL={} states(occ={},seen={})",
            sim.interactions(),
            phase,
            level,
            leaders,
            done,
            apx,
            mult,
            li,
            ll,
            k,
            total_l,
            occupied.len(),
            proto.states_discovered(),
        );
        if stats.unanimous() == Some(&Some(n as u64)) {
            println!(
                "CONVERGED to {n} at {} interactions ({} distinct dense states discovered)",
                sim.interactions(),
                proto.states_discovered()
            );
            break;
        }
        if sim.interactions() > 400_000_000 {
            break;
        }
    }
}
