//! Tunable protocol constants.
//!
//! The paper fixes several constants purely for the benefit of its asymptotic
//! union bounds (e.g. the `−8` junta-level offset, `2¹³` leader-election phases, or
//! the unspecified number `m = m(c)` of phase-clock hours).  At simulable population
//! sizes those values would multiply running times by large constants without
//! changing the shape of any result, so every such constant is exposed here with
//! both the **paper value** and a **practical default**.  Experiments record which
//! values they ran with (see `EXPERIMENTS.md`).

use ppproto::{FastLeaderElectionConfig, LeaderElectionConfig};

/// Parameters of protocol `Approximate` (Algorithm 2, Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproximateParams {
    /// Number of hours `m` of the phase clock.  The paper leaves `m = m(c)`
    /// unspecified; a phase must be long enough for one-way epidemics (Lemma 3) and
    /// powers-of-two load balancing (Lemma 8) to complete, which at simulable sizes
    /// requires roughly `m ≥ 48`.
    pub clock_hours: u8,
    /// Number of hours of the *outer* phase clock used by the leader election of
    /// \[18\]; one outer revolution must span at least ≈ `3 log₂ n` inner phases.
    pub outer_clock_hours: u8,
}

impl Default for ApproximateParams {
    fn default() -> Self {
        ApproximateParams {
            clock_hours: 64,
            outer_clock_hours: 48,
        }
    }
}

impl ApproximateParams {
    /// Leader-election configuration derived from these parameters.
    #[must_use]
    pub fn leader_election(&self) -> LeaderElectionConfig {
        LeaderElectionConfig {
            outer_hours: self.outer_clock_hours,
        }
    }
}

/// Parameters of protocol `CountExact` (Algorithm 3, Theorem 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountExactParams {
    /// Number of hours `m` of the phase clock (see [`ApproximateParams::clock_hours`]).
    pub clock_hours: u8,
    /// Offset `γ` subtracted from the junta level wherever the paper subtracts `8`:
    /// the approximation stage injects `2^(2^(level−γ))` tokens per phase and
    /// `FastLeaderElection` samples `2^(level−γ)` bits per round.  The paper value
    /// `8` is tuned for asymptotic populations; at simulable sizes the junta level
    /// is 2–5, so the practical default is `2`.
    pub level_offset: u8,
    /// Number of phases after which `FastLeaderElection` declares the election
    /// finished (paper value: `2¹³`).
    pub election_phases: u32,
    /// Base-2 logarithm of the constant `C` used by the refinement stage
    /// (`C = 2⁸ = 256` in the paper).
    pub refinement_constant_log2: u8,
}

impl Default for CountExactParams {
    fn default() -> Self {
        CountExactParams {
            clock_hours: 64,
            level_offset: 2,
            election_phases: 32,
            refinement_constant_log2: 8,
        }
    }
}

impl CountExactParams {
    /// The constants exactly as stated in the paper.
    ///
    /// Only use this for illustration: with the paper's `2¹³` election phases a
    /// single execution needs billions of interactions even for tiny populations.
    #[must_use]
    pub fn paper() -> Self {
        CountExactParams {
            clock_hours: 64,
            level_offset: 8,
            election_phases: 1 << 13,
            refinement_constant_log2: 8,
        }
    }

    /// Parameters tuned for **dense** (count-based) execution at population
    /// size `n`.
    ///
    /// The practical default (`level_offset = 2`) lets election contenders
    /// sample `2^{level−2}`-bit values per round — fast sequentially, but at
    /// `n ≥ 10⁶` the junta level reaches 5–6 and the value diversity
    /// scatters the population over up to `2^{16}` election states, which
    /// defeats a count-based representation (Theorem 2's `Õ(n)` state bound
    /// is real).  This constructor uses the **paper's** offset `γ = 8`
    /// (1-bit rounds, so the live election states stay `O(log n)`) and
    /// scales the election length to keep the unique-leader guarantee:
    /// contenders halve per 1-bit round, so `2·(⌈log₂ n⌉ + 16)` phases push
    /// the collision probability below `n · 2⁻¹⁶`.
    ///
    /// Experiment E19 runs `DenseCountExact` with these parameters at
    /// `n = 10⁶`.
    #[must_use]
    pub fn dense_at_scale(n: usize) -> Self {
        let log_n = (n.max(2) as f64).log2().ceil() as u32;
        CountExactParams {
            level_offset: 8,
            election_phases: 2 * (log_n + 16),
            ..CountExactParams::default()
        }
    }

    /// Interner capacity for a `CountExact` run of population `n` on the
    /// count-based or hybrid engines.
    ///
    /// Stages 1–2 stay narrow (≈ 7·10⁴ distinct states over a full
    /// `n = 10⁶` window with [`Self::dense_at_scale`]), but the refinement
    /// stage mints `Θ(n)` live load values (Lemma 11; a converged hybrid run
    /// at `n = 10⁵` interns ≈ `7.5n` distinct states), and the hybrid engine
    /// keeps interning through its per-agent phase — so the index space must
    /// scale with `n`: `16n` with a `2²²` floor, clamped to the interner's
    /// `u32` ceiling.  Capacity only sizes flat engine buffers (see
    /// [`ppsim::interned`]), so the headroom costs memory, never time.
    #[must_use]
    pub fn dense_capacity(n: usize) -> usize {
        n.saturating_mul(16).max(1 << 22).min(u32::MAX as usize - 1)
    }

    /// Fast-leader-election configuration derived from these parameters.
    #[must_use]
    pub fn fast_leader_election(&self) -> FastLeaderElectionConfig {
        FastLeaderElectionConfig {
            level_offset: self.level_offset,
            total_phases: self.election_phases,
        }
    }

    /// The refinement-stage constant `C`.
    #[must_use]
    pub fn refinement_constant(&self) -> u64 {
        1u64 << u32::from(self.refinement_constant_log2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_practical() {
        let a = ApproximateParams::default();
        assert!(a.clock_hours >= 48);
        assert!(a.outer_clock_hours >= 32);
        let c = CountExactParams::default();
        assert_eq!(c.refinement_constant(), 256);
        assert!(c.election_phases >= 20);
    }

    #[test]
    fn paper_constants_are_the_paper_constants() {
        let c = CountExactParams::paper();
        assert_eq!(c.level_offset, 8);
        assert_eq!(c.election_phases, 8192);
        assert_eq!(c.refinement_constant(), 256);
    }

    #[test]
    fn dense_capacity_scales_with_n_and_respects_the_interner_ceiling() {
        assert_eq!(CountExactParams::dense_capacity(10_000), 1 << 22);
        assert_eq!(CountExactParams::dense_capacity(1_000_000), 16_000_000);
        assert_eq!(
            CountExactParams::dense_capacity(usize::MAX / 2),
            u32::MAX as usize - 1,
            "clamped to the largest capacity StateInterner accepts"
        );
    }

    #[test]
    fn derived_configs_propagate_fields() {
        let c = CountExactParams {
            level_offset: 3,
            election_phases: 10,
            ..CountExactParams::default()
        };
        let fle = c.fast_leader_election();
        assert_eq!(fle.level_offset, 3);
        assert_eq!(fle.total_phases, 10);
        let a = ApproximateParams {
            outer_clock_hours: 24,
            ..ApproximateParams::default()
        };
        assert_eq!(a.leader_election().outer_hours, 24);
    }
}
