//! Protocol `Approximate` — Algorithm 2, Theorem 1.1 of the paper.
//!
//! `Approximate` is a uniform population protocol whose agents all output either
//! `⌊log₂ n⌋` or `⌈log₂ n⌉` w.h.p., converging within `O(n log² n)` interactions and
//! using `O(log n · log log n)` states.  It is the composition of
//!
//! 1. the junta process and the phase clocks ([`ppproto::junta`],
//!    [`ppproto::phase_clock`]), which every agent runs all the time,
//! 2. the leader election of \[18\] ([`ppproto::leader_election`]) — *Stage 1*,
//! 3. the Search Protocol ([`crate::search`], Algorithm 1) — *Stage 2*,
//! 4. a broadcasting stage in which the leader's estimate spreads by one-way
//!    epidemics — *Stage 3*.
//!
//! Whenever an agent meets a partner on a higher junta level (or advances its own
//! level), it re-initialises the phase clock, the leader election and the Search
//! Protocol, so that eventually all agents run the composition on the maximal junta
//! level from a clean state.

use rand::rngs::SmallRng;

use ppproto::composition::{
    DenseComposition, SyncComposition, SyncCtx, SyncedAgent, SyncedComponent,
};
use ppproto::leader_election::{LeaderElection, LeaderState};
use ppproto::phase_clock::SyncState;
use ppsim::stint::{AgentCodec, BoxedAgentStint};
use ppsim::{DenseProtocol, PersistState, Protocol, SnapshotReader};

use crate::params::ApproximateParams;
use crate::search::{search_interact, SearchContext, SearchState};

/// Per-agent state of protocol `Approximate` (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ApproximateAgent {
    /// Junta process + phase clock.
    pub sync: SyncState,
    /// Leader-election component (`leader_v`, `leaderDone_v`, …).
    pub election: LeaderState,
    /// Search Protocol component (`k_v`, `searchDone_v`).
    pub search: SearchState,
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]) —
/// lets [`ppsim::Checkpointable`] snapshot a sequential `Approximate` run.
impl PersistState for ApproximateAgent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.sync.persist(out);
        self.election.persist(out);
        self.search.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, ppsim::SimError> {
        Ok(ApproximateAgent {
            sync: SyncState::unpersist(r)?,
            election: LeaderState::unpersist(r)?,
            search: SearchState::unpersist(r)?,
        })
    }
}

impl ApproximateAgent {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        ApproximateAgent {
            sync: SyncState::new(),
            election: LeaderState::new(),
            search: SearchState::new(),
        }
    }

    /// Whether this agent currently considers itself the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.election.contender
    }

    /// The agent's current estimate of `log₂ n`, if the search has concluded and
    /// the estimate has reached it.
    #[must_use]
    pub fn estimate(&self) -> Option<i32> {
        if self.search.done {
            Some(self.search.k)
        } else {
            None
        }
    }
}

/// Result of the shared stage-1/2 dispatch, consumed by the broadcasting stage of
/// the plain protocol or the error-detection stage of the stable variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StagePass {
    /// The initiator was re-initialised (met or created a higher junta level).
    pub u_reset: bool,
    /// The responder was re-initialised.
    pub v_reset: bool,
    /// The initiator's pending `firstTick` flag (not yet cleared).
    pub u_first_tick: bool,
    /// The initiator has completed stages 1 and 2 (`leaderDone ∧ searchDone`).
    pub stage3: bool,
}

/// The component state of protocol `Approximate` below the synchronisation
/// base: the leader election (Stage 1) and the Search Protocol (Stage 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ApproximateCore {
    /// Leader-election component (`leader_v`, `leaderDone_v`, …).
    pub election: LeaderState,
    /// Search Protocol component (`k_v`, `searchDone_v`).
    pub search: SearchState,
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for ApproximateCore {
    fn persist(&self, out: &mut Vec<u8>) {
        self.election.persist(out);
        self.search.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, ppsim::SimError> {
        Ok(ApproximateCore {
            election: LeaderState::unpersist(r)?,
            search: SearchState::unpersist(r)?,
        })
    }
}

/// The stages of protocol `Approximate` as a [`SyncedComponent`]: the part of
/// Algorithm 2 below lines 1–4, driven by the shared synchronisation base
/// ([`SyncComposition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproximateComponent {
    election: LeaderElection,
}

impl ApproximateComponent {
    /// Stages 1 and 2 of Algorithm 2, dispatched on the initiator's progress.
    /// Returns `true` when the initiator has completed both (stage 3 —
    /// broadcasting, or error detection in the stable variant — is due).
    pub(crate) fn stages_1_2(
        &self,
        u: &mut ApproximateCore,
        v: &mut ApproximateCore,
        ctx: &SyncCtx,
    ) -> bool {
        if !u.election.done {
            // Stage 1: leader election [18].
            self.election.interact(
                &mut u.election,
                &mut v.election,
                ctx.u_first_tick,
                ctx.u_phase,
                ctx.v_phase,
                ctx.u_level,
                ctx.v_level,
                ctx.u_junta,
                ctx.v_junta,
            );
            false
        } else if !u.search.done {
            // Stage 2: the Search Protocol (Algorithm 1).
            let sctx = SearchContext {
                u_leader: u.election.contender,
                v_leader: v.election.contender,
                u_phase: ctx.u_phase,
                v_phase: ctx.v_phase,
                u_first_tick: ctx.u_first_tick,
            };
            search_interact(&mut u.search, &mut v.search, &sctx);
            false
        } else {
            true
        }
    }
}

impl SyncedComponent for ApproximateComponent {
    type State = ApproximateCore;
    type Output = Option<i32>;

    fn initial_state(&self) -> ApproximateCore {
        ApproximateCore::default()
    }

    fn reset(&self, state: &mut ApproximateCore) {
        state.election.reset();
        state.search.reset();
    }

    fn interact(&self, u: &mut ApproximateCore, v: &mut ApproximateCore, ctx: &SyncCtx) {
        if self.stages_1_2(u, v, ctx) {
            // Stage 3: broadcasting stage — the initiator pushes the estimate.
            v.search.k = u.search.k;
            v.search.done = true;
        }
    }

    fn output(&self, state: &ApproximateCore) -> Option<i32> {
        if state.search.done {
            Some(state.search.k)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "approximate"
    }
}

/// Pack an [`ApproximateAgent`] into the composition layer's agent shape.
fn pack(agent: &ApproximateAgent) -> SyncedAgent<ApproximateCore> {
    SyncedAgent {
        sync: agent.sync,
        inner: ApproximateCore {
            election: agent.election,
            search: agent.search,
        },
    }
}

/// Unpack the composition layer's agent shape back into an [`ApproximateAgent`].
fn unpack(agent: SyncedAgent<ApproximateCore>) -> ApproximateAgent {
    ApproximateAgent {
        sync: agent.sync,
        election: agent.inner.election,
        search: agent.inner.search,
    }
}

/// Protocol `Approximate` (Algorithm 2).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::{Approximate, ApproximateParams};
/// use ppsim::Simulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1000;
/// let protocol = Approximate::new(ApproximateParams::default());
/// let mut sim = Simulator::new(protocol, n, 7)?;
/// let outcome = sim.run_until(
///     |s| s.states().iter().all(|a| a.estimate().is_some()),
///     n as u64,
///     200_000_000,
/// );
/// assert!(outcome.converged());
/// // All agents now output ⌊log₂ n⌋ or ⌈log₂ n⌉ w.h.p.
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Approximate {
    composition: SyncComposition<ApproximateComponent>,
    params: ApproximateParams,
}

impl Approximate {
    /// Create the protocol from its parameters.
    #[must_use]
    pub fn new(params: ApproximateParams) -> Self {
        Approximate {
            composition: SyncComposition::new(
                params.clock_hours,
                ApproximateComponent {
                    election: LeaderElection::new(params.leader_election()),
                },
            ),
            params,
        }
    }

    /// The parameters this instance runs with.
    #[must_use]
    pub fn params(&self) -> &ApproximateParams {
        &self.params
    }

    /// The composed synchronisation base + stage component this protocol runs
    /// (shared with [`DenseApproximate`], which executes the identical
    /// transition system on the count-based engines).
    pub(crate) fn composition(&self) -> &SyncComposition<ApproximateComponent> {
        &self.composition
    }

    /// Per-interaction preamble (re-initialisation, junta, clocks) and dispatch of
    /// stages 1 and 2.  Stage 3 — the broadcasting stage, or error detection in the
    /// stable variant — is left to the caller, who must also clear the initiator's
    /// `firstTick` flag afterwards.
    pub(crate) fn dispatch_stages_1_2(
        &self,
        initiator: &mut ApproximateAgent,
        responder: &mut ApproximateAgent,
    ) -> StagePass {
        let mut u = pack(initiator);
        let mut v = pack(responder);
        // Lines 1–4 of Algorithm 2: re-initialisation, junta process, phase clocks.
        let ctx = self.composition.preamble(&mut u, &mut v);
        let stage3 = self
            .composition
            .component()
            .stages_1_2(&mut u.inner, &mut v.inner, &ctx);
        *initiator = unpack(u);
        *responder = unpack(v);
        StagePass {
            u_reset: ctx.u_reset,
            v_reset: ctx.v_reset,
            u_first_tick: ctx.u_first_tick,
            stage3,
        }
    }

    /// Shared per-interaction logic of the w.h.p.-correct protocol.  Returns `true`
    /// if the initiator's clock or protocol state was re-initialised.
    pub(crate) fn staged_interact(
        &self,
        initiator: &mut ApproximateAgent,
        responder: &mut ApproximateAgent,
    ) -> bool {
        let mut u = pack(initiator);
        let mut v = pack(responder);
        let ctx = self.composition.interact_pair(&mut u, &mut v);
        *initiator = unpack(u);
        *responder = unpack(v);
        ctx.u_reset
    }
}

impl Default for Approximate {
    fn default() -> Self {
        Self::new(ApproximateParams::default())
    }
}

impl Protocol for Approximate {
    type State = ApproximateAgent;
    type Output = Option<i32>;

    fn initial_state(&self) -> ApproximateAgent {
        ApproximateAgent::new()
    }

    fn interact(
        &self,
        initiator: &mut ApproximateAgent,
        responder: &mut ApproximateAgent,
        _rng: &mut SmallRng,
    ) {
        self.staged_interact(initiator, responder);
    }

    fn output(&self, state: &ApproximateAgent) -> Option<i32> {
        state.estimate()
    }

    fn name(&self) -> &'static str {
        "approximate"
    }
}

/// Convergence predicate: every agent outputs an estimate (the broadcasting stage
/// has reached everyone).
#[must_use]
pub fn all_estimated(states: &[ApproximateAgent]) -> bool {
    states.iter().all(|a| a.estimate().is_some())
}

/// The valid outputs for a population of size `n`: `⌊log₂ n⌋` and `⌈log₂ n⌉`.
#[must_use]
pub fn valid_estimates(n: usize) -> (i32, i32) {
    let log = (n as f64).log2();
    (log.floor() as i32, log.ceil() as i32)
}

/// Protocol `Approximate` on an interned dense state space, for the batched
/// and sharded count-based engines.
///
/// This is an **exact encoding** of [`Approximate`]: every dense transition
/// decodes the two agents, applies the identical composed interaction (the
/// same [`SyncComposition`] value [`Approximate::new`] builds), and re-encodes
/// — so both forms simulate the same stochastic process and differ only in
/// how the engines sample the schedule.
///
/// # State-space accounting (the bound on `q`)
///
/// Theorem 1 bounds `Approximate` by `O(log n · log log n)` states — but per
/// *constant-size counter window*: the implementation keeps the absolute
/// phase counter the paper reduces modulo small constants, so each of the
/// `O(log n)` phases of a run contributes its own copies.  The distinct
/// states a run visits are therefore `O(log² n · log log n)` — tens of
/// thousands at `n = 10⁸` — which is what the interner actually allocates
/// indices for.  [`DenseApproximate::DEFAULT_CAPACITY`] (2²⁰) leaves several
/// times that headroom; [`Self::states_discovered`] reports the realised
/// count (experiment E19 tabulates it).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::{DenseApproximate, ApproximateParams};
/// use ppsim::{DenseSimulator, Engine};
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1_000_000;
/// let proto = DenseApproximate::new(ApproximateParams::default());
/// let mut sim = DenseSimulator::new(Engine::Auto, proto, n, 7)?;
/// let outcome = sim.run_until(
///     |s| matches!(s.output_stats().unanimous(), Some(Some(k)) if (19..=20).contains(k)),
///     n as u64,
///     u64::MAX >> 1,
/// );
/// assert!(outcome.converged()); // ⌊log₂ 10⁶⌋ = 19, ⌈log₂ 10⁶⌉ = 20
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseApproximate {
    inner: DenseComposition<ApproximateComponent>,
    params: ApproximateParams,
}

impl DenseApproximate {
    /// Default interner capacity: comfortably above the distinct states any
    /// simulable `Approximate` run visits (see the type-level accounting; a
    /// converged `n = 10⁶` run interns ≈ 2·10⁵ states).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Create the dense protocol with the default state capacity.
    ///
    /// # Examples
    ///
    /// ```rust
    /// use popcount::{ApproximateParams, DenseApproximate};
    /// use ppsim::{BatchedSimulator, DenseProtocol};
    ///
    /// # fn main() -> Result<(), ppsim::SimError> {
    /// let proto = DenseApproximate::new(ApproximateParams::default());
    /// assert_eq!(proto.states_discovered(), 1); // only the initial state so far
    ///
    /// let mut sim = BatchedSimulator::new(proto.clone(), 10_000, 7)?;
    /// sim.run(50_000);
    /// // The run discovers states as the junta race and the clocks unfold;
    /// // `proto` shares the interner, so the census is visible here.
    /// assert!(proto.states_discovered() > 10);
    /// assert!(proto.states_discovered() <= proto.num_states());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn new(params: ApproximateParams) -> Self {
        Self::with_capacity(params, Self::DEFAULT_CAPACITY)
    }

    /// Create the dense protocol with an explicit state capacity (the
    /// index-space size reported as `num_states()`; only sizes flat engine
    /// buffers — see [`ppsim::interned`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity >= u32::MAX` (dense indices
    /// are 32-bit and `u32::MAX` is reserved; see
    /// [`StateInterner::with_capacity`](ppsim::StateInterner::with_capacity)).
    #[must_use]
    pub fn with_capacity(params: ApproximateParams, capacity: usize) -> Self {
        DenseApproximate {
            inner: DenseComposition::new(*Approximate::new(params).composition(), capacity),
            params,
        }
    }

    /// The parameters this instance runs with.
    #[must_use]
    pub fn params(&self) -> &ApproximateParams {
        &self.params
    }

    /// Decode a dense index into the full per-agent state.
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been assigned to any state yet.
    #[must_use]
    pub fn decode(&self, index: usize) -> ApproximateAgent {
        let agent = self.inner.decode(index);
        ApproximateAgent {
            sync: agent.sync,
            election: agent.inner.election,
            search: agent.inner.search,
        }
    }

    /// Encode a per-agent state as its dense index, interning it on first
    /// appearance.
    #[must_use]
    pub fn encode(&self, agent: ApproximateAgent) -> usize {
        self.inner.encode(pack(&agent))
    }

    /// How many distinct states have been discovered so far — the empirical
    /// state-space size Theorem 1 bounds.
    #[must_use]
    pub fn states_discovered(&self) -> usize {
        self.inner.states_discovered()
    }
}

impl DenseProtocol for DenseApproximate {
    type Output = Option<i32>;

    fn num_states(&self) -> usize {
        self.inner.num_states()
    }

    fn initial_state(&self) -> usize {
        self.inner.initial_state()
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        self.inner.transition(initiator, responder)
    }

    fn output(&self, state: usize) -> Option<i32> {
        self.inner.output(state)
    }

    fn name(&self) -> &'static str {
        "dense-approximate"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        ppsim::ProtocolInvariants {
            // Interned indices carry no fixed meaning across instances, so
            // no count-indexed quantity is declarable; the structure lives
            // in the composed stages and is exercised dynamically.
            conserved: Vec::new(),
            // The initiator consumes its firstTick flag and pushes the
            // stage-3 broadcast, so δ is role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn dynamic(&self) -> bool {
        true
    }

    fn discovered_states(&self) -> Option<usize> {
        Some(self.states_discovered())
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<Option<i32>>> {
        // Per-agent stints step native `SyncedAgent<ApproximateCore>` structs
        // through the composition's codec — no interner probe per
        // interaction (see `ppsim::stint`).
        self.inner.agent_stint(counts, seed)
    }

    fn save_protocol_state(&self) -> Vec<u8> {
        self.inner.save_protocol_state()
    }

    fn restore_protocol_state(&self, bytes: &[u8]) -> Result<(), ppsim::SimError> {
        self.inner.restore_protocol_state(bytes)
    }

    fn restore_agent_stint(
        &self,
        bytes: &[u8],
    ) -> Option<Result<BoxedAgentStint<Option<i32>>, ppsim::SimError>> {
        self.inner.restore_agent_stint(bytes)
    }
}

/// The typed agent-state codec of `Approximate`, delegated to the underlying
/// [`DenseComposition`]: per-agent stints of the hybrid engine step native
/// composition structs with the identical transition system and consult the
/// interner only at migration boundaries.
impl AgentCodec for DenseApproximate {
    type Native = SyncComposition<ApproximateComponent>;

    fn native(&self) -> Self::Native {
        *self.inner.base()
    }

    fn decode_agent(&self, index: usize) -> SyncedAgent<ApproximateCore> {
        self.inner.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<SyncedAgent<ApproximateCore>> {
        self.inner.try_decode_agent(index)
    }

    fn encode_agent(&self, state: &SyncedAgent<ApproximateCore>) -> usize {
        self.inner.encode(*state)
    }
}

/// Convergence predicate on a counts configuration of [`DenseApproximate`]:
/// every agent outputs an estimate.
#[must_use]
pub fn dense_all_estimated(protocol: &DenseApproximate, counts: &[u64]) -> bool {
    counts
        .iter()
        .enumerate()
        .all(|(s, &c)| c == 0 || protocol.decode(s).estimate().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn valid_estimates_are_floor_and_ceil() {
        assert_eq!(valid_estimates(1000), (9, 10));
        assert_eq!(valid_estimates(1024), (10, 10));
        assert_eq!(valid_estimates(100), (6, 7));
    }

    #[test]
    fn initial_agent_has_no_estimate_and_is_contender() {
        let a = ApproximateAgent::new();
        assert!(a.is_leader());
        assert_eq!(a.estimate(), None);
    }

    #[test]
    fn broadcast_stage_pushes_the_estimate() {
        let proto = Approximate::default();
        let mut done = ApproximateAgent::new();
        done.sync.junta.active = false;
        done.election.done = true;
        done.search.done = true;
        done.search.k = 9;
        let mut fresh = ApproximateAgent::new();
        fresh.sync.junta.active = false;
        fresh.election.done = true;
        let mut rng = ppsim::seeded_rng(0);
        proto.interact(&mut done, &mut fresh, &mut rng);
        assert_eq!(fresh.estimate(), Some(9));
    }

    #[test]
    fn approximate_converges_to_floor_or_ceil_of_log_n() {
        let n = 300usize;
        let proto = Approximate::default();
        let mut sim = Simulator::new(proto, n, 20_240_601).unwrap();
        let outcome = sim.run_until(|s| all_estimated(s.states()), (n * 50) as u64, 60_000_000);
        assert!(
            outcome.converged(),
            "Approximate did not converge within the budget"
        );

        let (floor, ceil) = valid_estimates(n);
        let stats = sim.output_stats();
        let unanimous = stats.unanimous().cloned().flatten();
        assert!(
            unanimous == Some(floor) || unanimous == Some(ceil),
            "expected a unanimous estimate of {floor} or {ceil}, got {:?}",
            sim.output_stats().plurality()
        );
    }

    #[test]
    fn approximate_exercises_exactly_one_leader_at_convergence() {
        let n = 300usize;
        let proto = Approximate::default();
        let mut sim = Simulator::new(proto, n, 77).unwrap();
        let outcome = sim.run_until(|s| all_estimated(s.states()), (n * 50) as u64, 60_000_000);
        assert!(outcome.converged());
        let leaders = sim.states().iter().filter(|a| a.is_leader()).count();
        assert_eq!(leaders, 1);
    }
}
