//! Protocol `Approximate` — Algorithm 2, Theorem 1.1 of the paper.
//!
//! `Approximate` is a uniform population protocol whose agents all output either
//! `⌊log₂ n⌋` or `⌈log₂ n⌉` w.h.p., converging within `O(n log² n)` interactions and
//! using `O(log n · log log n)` states.  It is the composition of
//!
//! 1. the junta process and the phase clocks ([`ppproto::junta`],
//!    [`ppproto::phase_clock`]), which every agent runs all the time,
//! 2. the leader election of [18] ([`ppproto::leader_election`]) — *Stage 1*,
//! 3. the Search Protocol ([`crate::search`], Algorithm 1) — *Stage 2*,
//! 4. a broadcasting stage in which the leader's estimate spreads by one-way
//!    epidemics — *Stage 3*.
//!
//! Whenever an agent meets a partner on a higher junta level (or advances its own
//! level), it re-initialises the phase clock, the leader election and the Search
//! Protocol, so that eventually all agents run the composition on the maximal junta
//! level from a clean state.

use rand::rngs::SmallRng;

use ppproto::leader_election::{LeaderElection, LeaderState};
use ppproto::phase_clock::{sync_interact, PhaseClock, SyncState};
use ppsim::Protocol;

use crate::params::ApproximateParams;
use crate::search::{search_interact, SearchContext, SearchState};

/// Per-agent state of protocol `Approximate` (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ApproximateAgent {
    /// Junta process + phase clock.
    pub sync: SyncState,
    /// Leader-election component (`leader_v`, `leaderDone_v`, …).
    pub election: LeaderState,
    /// Search Protocol component (`k_v`, `searchDone_v`).
    pub search: SearchState,
}

impl ApproximateAgent {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        ApproximateAgent {
            sync: SyncState::new(),
            election: LeaderState::new(),
            search: SearchState::new(),
        }
    }

    /// Whether this agent currently considers itself the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.election.contender
    }

    /// The agent's current estimate of `log₂ n`, if the search has concluded and
    /// the estimate has reached it.
    #[must_use]
    pub fn estimate(&self) -> Option<i32> {
        if self.search.done {
            Some(self.search.k)
        } else {
            None
        }
    }
}

/// Result of the shared stage-1/2 dispatch, consumed by the broadcasting stage of
/// the plain protocol or the error-detection stage of the stable variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StagePass {
    /// The initiator was re-initialised (met or created a higher junta level).
    pub u_reset: bool,
    /// The responder was re-initialised.
    pub v_reset: bool,
    /// The initiator's pending `firstTick` flag (not yet cleared).
    pub u_first_tick: bool,
    /// The initiator has completed stages 1 and 2 (`leaderDone ∧ searchDone`).
    pub stage3: bool,
}

/// Protocol `Approximate` (Algorithm 2).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::{Approximate, ApproximateParams};
/// use ppsim::Simulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1000;
/// let protocol = Approximate::new(ApproximateParams::default());
/// let mut sim = Simulator::new(protocol, n, 7)?;
/// let outcome = sim.run_until(
///     |s| s.states().iter().all(|a| a.estimate().is_some()),
///     n as u64,
///     200_000_000,
/// );
/// assert!(outcome.converged());
/// // All agents now output ⌊log₂ n⌋ or ⌈log₂ n⌉ w.h.p.
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Approximate {
    clock: PhaseClock,
    election: LeaderElection,
    params: ApproximateParams,
}

impl Approximate {
    /// Create the protocol from its parameters.
    #[must_use]
    pub fn new(params: ApproximateParams) -> Self {
        Approximate {
            clock: PhaseClock::new(params.clock_hours),
            election: LeaderElection::new(params.leader_election()),
            params,
        }
    }

    /// The parameters this instance runs with.
    #[must_use]
    pub fn params(&self) -> &ApproximateParams {
        &self.params
    }

    /// Per-interaction preamble (re-initialisation, junta, clocks) and dispatch of
    /// stages 1 and 2.  Stage 3 — the broadcasting stage, or error detection in the
    /// stable variant — is left to the caller, who must also clear the initiator's
    /// `firstTick` flag afterwards.
    pub(crate) fn dispatch_stages_1_2(
        &self,
        initiator: &mut ApproximateAgent,
        responder: &mut ApproximateAgent,
    ) -> StagePass {
        // Lines 1–4 of Algorithm 2: re-initialisation, junta process, phase clocks.
        let outcome = sync_interact(&self.clock, &mut initiator.sync, &mut responder.sync);
        if outcome.u_reset {
            initiator.election.reset();
            initiator.search.reset();
        }
        if outcome.v_reset {
            responder.election.reset();
            responder.search.reset();
        }

        let u_first_tick = initiator.sync.clock.first_tick;
        let mut stage3 = false;

        if !initiator.election.done {
            // Stage 1: leader election [18].
            self.election.interact(
                &mut initiator.election,
                &mut responder.election,
                u_first_tick,
                initiator.sync.clock.phase,
                responder.sync.clock.phase,
                initiator.sync.junta.level,
                responder.sync.junta.level,
                initiator.sync.junta.junta,
                responder.sync.junta.junta,
            );
        } else if !initiator.search.done {
            // Stage 2: the Search Protocol (Algorithm 1).
            let ctx = SearchContext {
                u_leader: initiator.election.contender,
                v_leader: responder.election.contender,
                u_phase: initiator.sync.clock.phase,
                v_phase: responder.sync.clock.phase,
                u_first_tick,
            };
            search_interact(&mut initiator.search, &mut responder.search, &ctx);
        } else {
            stage3 = true;
        }

        StagePass {
            u_reset: outcome.u_reset,
            v_reset: outcome.v_reset,
            u_first_tick,
            stage3,
        }
    }

    /// Shared per-interaction logic of the w.h.p.-correct protocol.  Returns `true`
    /// if the initiator's clock or protocol state was re-initialised.
    pub(crate) fn staged_interact(
        &self,
        initiator: &mut ApproximateAgent,
        responder: &mut ApproximateAgent,
    ) -> bool {
        let pass = self.dispatch_stages_1_2(initiator, responder);
        if pass.stage3 {
            // Stage 3: broadcasting stage — the initiator pushes the estimate.
            responder.search.k = initiator.search.k;
            responder.search.done = true;
        }
        // The initiator consumes its firstTick flag when it initiates.
        initiator.sync.clock.first_tick = false;
        pass.u_reset
    }
}

impl Default for Approximate {
    fn default() -> Self {
        Self::new(ApproximateParams::default())
    }
}

impl Protocol for Approximate {
    type State = ApproximateAgent;
    type Output = Option<i32>;

    fn initial_state(&self) -> ApproximateAgent {
        ApproximateAgent::new()
    }

    fn interact(
        &self,
        initiator: &mut ApproximateAgent,
        responder: &mut ApproximateAgent,
        _rng: &mut SmallRng,
    ) {
        self.staged_interact(initiator, responder);
    }

    fn output(&self, state: &ApproximateAgent) -> Option<i32> {
        state.estimate()
    }

    fn name(&self) -> &'static str {
        "approximate"
    }
}

/// Convergence predicate: every agent outputs an estimate (the broadcasting stage
/// has reached everyone).
#[must_use]
pub fn all_estimated(states: &[ApproximateAgent]) -> bool {
    states.iter().all(|a| a.estimate().is_some())
}

/// The valid outputs for a population of size `n`: `⌊log₂ n⌋` and `⌈log₂ n⌉`.
#[must_use]
pub fn valid_estimates(n: usize) -> (i32, i32) {
    let log = (n as f64).log2();
    (log.floor() as i32, log.ceil() as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn valid_estimates_are_floor_and_ceil() {
        assert_eq!(valid_estimates(1000), (9, 10));
        assert_eq!(valid_estimates(1024), (10, 10));
        assert_eq!(valid_estimates(100), (6, 7));
    }

    #[test]
    fn initial_agent_has_no_estimate_and_is_contender() {
        let a = ApproximateAgent::new();
        assert!(a.is_leader());
        assert_eq!(a.estimate(), None);
    }

    #[test]
    fn broadcast_stage_pushes_the_estimate() {
        let proto = Approximate::default();
        let mut done = ApproximateAgent::new();
        done.sync.junta.active = false;
        done.election.done = true;
        done.search.done = true;
        done.search.k = 9;
        let mut fresh = ApproximateAgent::new();
        fresh.sync.junta.active = false;
        fresh.election.done = true;
        let mut rng = ppsim::seeded_rng(0);
        proto.interact(&mut done, &mut fresh, &mut rng);
        assert_eq!(fresh.estimate(), Some(9));
    }

    #[test]
    fn approximate_converges_to_floor_or_ceil_of_log_n() {
        let n = 300usize;
        let proto = Approximate::default();
        let mut sim = Simulator::new(proto, n, 20_240_601).unwrap();
        let outcome = sim.run_until(|s| all_estimated(s.states()), (n * 50) as u64, 60_000_000);
        assert!(
            outcome.converged(),
            "Approximate did not converge within the budget"
        );

        let (floor, ceil) = valid_estimates(n);
        let stats = sim.output_stats();
        let unanimous = stats.unanimous().cloned().flatten();
        assert!(
            unanimous == Some(floor) || unanimous == Some(ceil),
            "expected a unanimous estimate of {floor} or {ceil}, got {:?}",
            sim.output_stats().plurality()
        );
    }

    #[test]
    fn approximate_exercises_exactly_one_leader_at_convergence() {
        let n = 300usize;
        let proto = Approximate::default();
        let mut sim = Simulator::new(proto, n, 77).unwrap();
        let outcome = sim.run_until(|s| all_estimated(s.states()), (n * 50) as u64, 60_000_000);
        assert!(outcome.converged());
        let leaders = sim.states().iter().filter(|a| a.is_leader()).count();
        assert_eq!(leaders, 1);
    }
}
