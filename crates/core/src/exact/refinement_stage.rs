//! The refinement stage of `CountExact` — Algorithm 5, Lemma 11.
//!
//! Starting from the leader's approximation `k = log₂ n ± 3`, the stage computes the
//! exact population size.  It runs in three phases (relative to the phase in which
//! the approximation stage concluded):
//!
//! * **Phase 0** — initialisation: the approximation `k` spreads to every agent and
//!   all loads are cleared.
//! * **Phase 1** — the leader injects `C · 2^k` tokens (with `C = 2⁸` in the paper);
//!   classical load balancing spreads them so that every agent holds `Θ(1)` tokens.
//! * **Phase 2** — every agent multiplies its load by `2^k`; after balancing, the
//!   total load is `M = C · 2^{2k} ≥ 4n²` and every agent holds
//!   `ℓ_v = C · 2^{2k}/n ± 1.5` tokens w.h.p.
//!
//! Every agent then outputs `ω(v) = ⌊C · 2^{2k_v} / ℓ_v⌉`, which equals `n` exactly
//! (Lemma 11; the rounding analysis is reproduced in [`refinement_output`]).

use ppproto::load_balancing::split_evenly;
use ppproto::max_broadcast;

use super::approximation_stage::ExactStageState;

/// Context of one refinement-stage interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefinementContext {
    /// Whether the initiator is the leader.
    pub u_leader: bool,
    /// The initiator's consumed `firstTick` flag.
    pub u_first_tick: bool,
    /// The initiator's current phase number.
    pub u_phase: u32,
    /// The responder's current phase number.
    pub v_phase: u32,
    /// The refinement constant `C` (the paper uses `2⁸ = 256`).
    pub constant: u64,
}

/// Apply one interaction of the refinement stage (Algorithm 5).
///
/// Both agents must already have `apx_done` set (the caller dispatches on the
/// initiator; a responder that has not yet finished the approximation stage is
/// brought into the refinement stage first, mirroring the `ApxDone` epidemic).
pub fn refinement_interact(
    u: &mut ExactStageState,
    v: &mut ExactStageState,
    ctx: &RefinementContext,
) {
    if !v.apx_done {
        // The partner has not learned about the conclusion of the approximation
        // stage yet: bring it in (one-way epidemics on ApxDone and k).
        v.enter_refinement_from(u);
        return;
    }

    let u_rel = ctx.u_phase.saturating_sub(u.start_phase);
    let v_rel = ctx.v_phase.saturating_sub(v.start_phase);

    if u_rel == 0 || v_rel == 0 {
        // Phase 0: initialise agents and broadcast k (Algorithm 5, lines 1–2).
        max_broadcast(&mut u.k, &mut v.k);
        if u_rel == 0 {
            u.l = 0;
        }
        if v_rel == 0 {
            v.l = 0;
        }
    }

    if ctx.u_first_tick {
        if u_rel == 1 && ctx.u_leader {
            // Phase 1: the leader injects C · 2^k tokens (line 4–5).
            u.l = ctx
                .constant
                .checked_shl(u32::try_from(u.k.max(0)).unwrap_or(u32::MAX).min(50))
                .unwrap_or(u64::MAX);
        }
        if u_rel == 2 && !u.multiplied {
            // Phase 2: multiply the load by 2^k (lines 6–7).
            u.l =
                u.l.checked_shl(u32::try_from(u.k.max(0)).unwrap_or(u32::MAX).min(50))
                    .unwrap_or(u64::MAX);
            u.multiplied = true;
        }
    }

    // Line 8: classical load balancing.  Balancing is restricted to pairs in the
    // same "multiplication pool": either both agents still hold un-multiplied
    // (phase-1) loads, or both have already performed their phase-2 multiplication.
    // The paper's pseudo-code balances unconditionally; restricting it to one pool
    // guarantees that every token is multiplied by `2^k` exactly once even though
    // agents cross the phase boundary at slightly different times (without the
    // restriction, tokens handed from a multiplied agent to a not-yet-multiplied one
    // would be multiplied twice, inflating the total and deflating every output).
    let same_pool = (u_rel == 1 && v_rel == 1 && !u.multiplied && !v.multiplied)
        || (u.multiplied && v.multiplied);
    if same_pool {
        split_evenly(&mut u.l, &mut v.l);
    }
}

/// The output function `ω(v) = ⌊C · 2^{2k_v} / ℓ_v⌉` of the refinement stage.
///
/// Returns `None` while the agent has not yet completed its phase-2 multiplication
/// or holds no load (the value would be meaningless).
#[must_use]
pub fn refinement_output(state: &ExactStageState, constant: u64) -> Option<u64> {
    if !state.apx_done || !state.multiplied || state.l == 0 {
        return None;
    }
    let k = u32::try_from(state.k.max(0)).unwrap_or(0).min(60);
    let numerator = u128::from(constant) << (2 * k);
    let l = u128::from(state.l);
    // Round to the nearest integer.
    Some(u64::try_from((numerator + l / 2) / l).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done_state(k: i64, l: u64, start_phase: u32, multiplied: bool) -> ExactStageState {
        ExactStageState {
            k,
            l,
            apx_done: true,
            start_phase,
            multiplied,
            ..ExactStageState::new()
        }
    }

    fn ctx(leader: bool, first: bool, u_phase: u32, v_phase: u32) -> RefinementContext {
        RefinementContext {
            u_leader: leader,
            u_first_tick: first,
            u_phase,
            v_phase,
            constant: 256,
        }
    }

    #[test]
    fn phase0_broadcasts_k_and_clears_loads() {
        let mut u = done_state(9, 55, 10, false);
        let mut v = done_state(0, 77, 10, false);
        refinement_interact(&mut u, &mut v, &ctx(false, false, 10, 10));
        assert_eq!(u.k, 9);
        assert_eq!(v.k, 9);
        assert_eq!(u.l, 0);
        assert_eq!(v.l, 0);
    }

    #[test]
    fn phase1_leader_injects_c_times_two_to_the_k() {
        let mut u = done_state(4, 0, 10, false);
        let mut v = done_state(4, 0, 10, false);
        refinement_interact(&mut u, &mut v, &ctx(true, true, 11, 11));
        // 256 · 2^4 = 4096, split evenly with the partner.
        assert_eq!(u.l + v.l, 4096);
    }

    #[test]
    fn phase2_multiplies_exactly_once() {
        let mut u = done_state(3, 10, 10, false);
        let mut v = done_state(3, 0, 10, false);
        refinement_interact(&mut u, &mut v, &ctx(false, true, 12, 12));
        assert!(u.multiplied);
        // 10 · 2^3 = 80, split evenly.
        assert_eq!(u.l + v.l, 80);

        // A second firstTick in the same relative phase must not multiply again.
        let mut w = done_state(3, 10, 10, true);
        let mut x = done_state(3, 0, 10, false);
        refinement_interact(&mut w, &mut x, &ctx(false, true, 12, 12));
        assert_eq!(w.l + x.l, 10);
    }

    #[test]
    fn straggler_partner_is_brought_into_the_stage() {
        let mut u = done_state(7, 3, 10, false);
        let mut v = ExactStageState {
            l: 99,
            ..ExactStageState::new()
        };
        refinement_interact(&mut u, &mut v, &ctx(false, false, 11, 11));
        assert!(v.apx_done);
        assert_eq!(v.k, 7);
        assert_eq!(v.l, 0);
        assert_eq!(
            u.l, 3,
            "the straggler adoption does not disturb the initiator"
        );
    }

    #[test]
    fn output_formula_recovers_n_from_a_perfect_balance() {
        // If M = C·2^{2k} tokens are perfectly balanced over n agents, the output is n.
        let n: u64 = 1000;
        let k = 12i64; // 2^12 = 4096 ≥ n/8
        let constant = 256u64;
        let total = u128::from(constant) << (2 * k as u32);
        let per_agent = (total / u128::from(n)) as u64;
        for delta in [-1i64, 0, 1] {
            let l = (per_agent as i64 + delta) as u64;
            let state = done_state(k, l, 0, true);
            let out = refinement_output(&state, constant).unwrap();
            assert_eq!(out, n, "output with per-agent load {l}");
        }
    }

    #[test]
    fn output_is_absent_before_the_multiplication() {
        let state = done_state(5, 100, 0, false);
        assert_eq!(refinement_output(&state, 256), None);
        let empty = done_state(5, 0, 0, true);
        assert_eq!(refinement_output(&empty, 256), None);
        let not_done = ExactStageState {
            l: 10,
            multiplied: true,
            ..ExactStageState::new()
        };
        assert_eq!(refinement_output(&not_done, 256), None);
    }
}
