//! Protocol `CountExact` — Algorithm 3, Theorem 2 of the paper.
//!
//! `CountExact` is a uniform population protocol in which every agent outputs the
//! exact population size `n`.  It stabilises within the asymptotically optimal
//! `O(n log n)` interactions and uses `Õ(n)` states, w.h.p.  The composition
//! (Algorithm 3):
//!
//! 1. junta process + phase clocks (lines 1–4),
//! 2. `FastLeaderElection` (Stage 1, lines 5–6),
//! 3. the approximation stage (Stage 2, lines 7–8) computing `log₂ n ± 3`,
//! 4. the refinement stage (Stage 3, lines 9–10) computing the exact `n`.

use rand::rngs::SmallRng;

use ppproto::fast_leader_election::{FastLeaderElection, FastLeaderState};
use ppproto::phase_clock::{sync_interact, PhaseClock, SyncState};
use ppsim::Protocol;

use crate::params::CountExactParams;

use super::approximation_stage::{approximation_interact, ApproximationContext, ExactStageState};
use super::refinement_stage::{refinement_interact, refinement_output, RefinementContext};

/// Per-agent state of protocol `CountExact` (Figure 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CountExactAgent {
    /// Junta process + phase clock.
    pub sync: SyncState,
    /// Fast leader-election component.
    pub election: FastLeaderState,
    /// Approximation- and refinement-stage state (`i_u`, `k_u`, `ℓ_u`, `ApxDone_u`).
    pub stage: ExactStageState,
}

impl CountExactAgent {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        CountExactAgent {
            sync: SyncState::new(),
            election: FastLeaderState::new(),
            stage: ExactStageState::new(),
        }
    }

    /// Whether this agent currently considers itself the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.election.contender
    }

    /// The leader's approximation of `log₂ n` (Lemma 10), once the approximation
    /// stage has concluded.
    #[must_use]
    pub fn approximation(&self) -> Option<i64> {
        if self.stage.apx_done {
            Some(self.stage.k)
        } else {
            None
        }
    }
}

/// Protocol `CountExact` (Algorithm 3).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::{CountExact, CountExactParams};
/// use ppsim::Simulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1000;
/// let protocol = CountExact::new(CountExactParams::default());
/// let mut sim = Simulator::new(protocol, n, 3)?;
/// let outcome = sim.run_until(
///     |s| {
///         let p = s.protocol().clone();
///         s.states().iter().all(|a| p.agent_output(a) == Some(1000))
///     },
///     n as u64,
///     500_000_000,
/// );
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountExact {
    clock: PhaseClock,
    election: FastLeaderElection,
    params: CountExactParams,
}

impl CountExact {
    /// Create the protocol from its parameters.
    #[must_use]
    pub fn new(params: CountExactParams) -> Self {
        CountExact {
            clock: PhaseClock::new(params.clock_hours),
            election: FastLeaderElection::new(params.fast_leader_election()),
            params,
        }
    }

    /// The parameters this instance runs with.
    #[must_use]
    pub fn params(&self) -> &CountExactParams {
        &self.params
    }

    /// The output function applied to a single agent (exposed so that harness code
    /// can inspect outputs without constructing the protocol's associated type).
    #[must_use]
    pub fn agent_output(&self, agent: &CountExactAgent) -> Option<u64> {
        refinement_output(&agent.stage, self.params.refinement_constant())
    }

    /// Shared per-interaction preamble and staged dispatch, reused by the stable
    /// variant.  Returns `true` if the initiator was re-initialised.
    pub(crate) fn staged_interact(
        &self,
        initiator: &mut CountExactAgent,
        responder: &mut CountExactAgent,
    ) -> bool {
        // Lines 1–4 of Algorithm 3.
        let outcome = sync_interact(&self.clock, &mut initiator.sync, &mut responder.sync);
        if outcome.u_reset {
            initiator.election.reset();
            initiator.stage.reset();
        }
        if outcome.v_reset {
            responder.election.reset();
            responder.stage.reset();
        }

        let u_first_tick = initiator.sync.clock.first_tick;

        if !initiator.election.done {
            // Stage 1: fast leader election.
            self.election.interact(
                &mut initiator.election,
                &mut responder.election,
                u_first_tick,
                initiator.sync.clock.phase,
                responder.sync.clock.phase,
                initiator.sync.junta.level,
                responder.sync.junta.level,
            );
        } else if !initiator.stage.apx_done {
            // Stage 2: approximation stage (Algorithm 4).
            let ctx = ApproximationContext {
                u_leader: initiator.election.contender,
                u_level: initiator.sync.junta.level,
                level_offset: self.params.level_offset,
                u_phase: initiator.sync.clock.phase,
                v_phase: responder.sync.clock.phase,
            };
            approximation_interact(&mut initiator.stage, &mut responder.stage, &ctx);
        } else {
            // Stage 3: refinement stage (Algorithm 5).
            let ctx = RefinementContext {
                u_leader: initiator.election.contender,
                u_first_tick,
                u_phase: initiator.sync.clock.phase,
                v_phase: responder.sync.clock.phase,
                constant: self.params.refinement_constant(),
            };
            refinement_interact(&mut initiator.stage, &mut responder.stage, &ctx);
        }

        initiator.sync.clock.first_tick = false;
        outcome.u_reset
    }
}

impl Default for CountExact {
    fn default() -> Self {
        Self::new(CountExactParams::default())
    }
}

impl Protocol for CountExact {
    type State = CountExactAgent;
    type Output = Option<u64>;

    fn initial_state(&self) -> CountExactAgent {
        CountExactAgent::new()
    }

    fn interact(
        &self,
        initiator: &mut CountExactAgent,
        responder: &mut CountExactAgent,
        _rng: &mut SmallRng,
    ) {
        self.staged_interact(initiator, responder);
    }

    fn output(&self, state: &CountExactAgent) -> Option<u64> {
        refinement_output(&state.stage, self.params.refinement_constant())
    }

    fn name(&self) -> &'static str {
        "count-exact"
    }
}

/// Convergence predicate for a population of size `n`: every agent outputs exactly
/// `n`.
#[must_use]
pub fn all_counted(protocol: &CountExact, states: &[CountExactAgent], n: usize) -> bool {
    states
        .iter()
        .all(|a| protocol.agent_output(a) == Some(n as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn initial_agent_has_no_output() {
        let p = CountExact::default();
        let a = CountExactAgent::new();
        assert_eq!(p.agent_output(&a), None);
        assert_eq!(a.approximation(), None);
        assert!(a.is_leader());
    }

    #[test]
    fn count_exact_outputs_the_exact_population_size() {
        for &(n, seed) in &[(200usize, 11u64), (300, 12)] {
            let proto = CountExact::default();
            let mut sim = Simulator::new(proto, n, seed).unwrap();
            let outcome = sim.run_until(
                move |s| all_counted(s.protocol(), s.states(), n),
                (n * 50) as u64,
                80_000_000,
            );
            assert!(
                outcome.converged(),
                "CountExact did not converge to {n} (seed {seed}); outputs: {:?}",
                sim.output_stats().plurality()
            );
        }
    }

    #[test]
    fn approximation_stage_result_is_within_three_of_log_n() {
        let n = 400usize;
        let proto = CountExact::default();
        let mut sim = Simulator::new(proto, n, 99).unwrap();
        let outcome = sim.run_until(
            |s| s.states().iter().any(|a| a.stage.apx_done),
            (n * 10) as u64,
            80_000_000,
        );
        assert!(
            outcome.converged(),
            "the approximation stage never concluded"
        );
        let k = sim
            .states()
            .iter()
            .find_map(|a| a.approximation())
            .expect("some agent finished the approximation stage");
        let log_n = (n as f64).log2();
        assert!(
            (k as f64 - log_n).abs() <= 3.0,
            "approximation k = {k} is more than 3 away from log2 n = {log_n:.2}"
        );
    }

    #[test]
    fn exactly_one_leader_at_convergence() {
        let n = 250usize;
        let proto = CountExact::default();
        let mut sim = Simulator::new(proto, n, 5).unwrap();
        let outcome = sim.run_until(
            move |s| all_counted(s.protocol(), s.states(), n),
            (n * 50) as u64,
            80_000_000,
        );
        assert!(outcome.converged());
        assert_eq!(sim.states().iter().filter(|a| a.is_leader()).count(), 1);
    }
}
