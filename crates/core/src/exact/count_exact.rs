//! Protocol `CountExact` — Algorithm 3, Theorem 2 of the paper.
//!
//! `CountExact` is a uniform population protocol in which every agent outputs the
//! exact population size `n`.  It stabilises within the asymptotically optimal
//! `O(n log n)` interactions and uses `Õ(n)` states, w.h.p.  The composition
//! (Algorithm 3):
//!
//! 1. junta process + phase clocks (lines 1–4),
//! 2. `FastLeaderElection` (Stage 1, lines 5–6),
//! 3. the approximation stage (Stage 2, lines 7–8) computing `log₂ n ± 3`,
//! 4. the refinement stage (Stage 3, lines 9–10) computing the exact `n`.

use rand::rngs::SmallRng;

use ppproto::composition::{
    DenseComposition, SyncComposition, SyncCtx, SyncedAgent, SyncedComponent,
};
use ppproto::fast_leader_election::{FastLeaderElection, FastLeaderState};
use ppproto::phase_clock::SyncState;
use ppsim::stint::{AgentCodec, BoxedAgentStint};
use ppsim::{DenseProtocol, PersistState, Protocol, SnapshotReader};

use crate::params::CountExactParams;

use super::approximation_stage::{approximation_interact, ApproximationContext, ExactStageState};
use super::refinement_stage::{refinement_interact, refinement_output, RefinementContext};

/// Per-agent state of protocol `CountExact` (Figure 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CountExactAgent {
    /// Junta process + phase clock.
    pub sync: SyncState,
    /// Fast leader-election component.
    pub election: FastLeaderState,
    /// Approximation- and refinement-stage state (`i_u`, `k_u`, `ℓ_u`, `ApxDone_u`).
    pub stage: ExactStageState,
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]) —
/// lets [`ppsim::Checkpointable`] snapshot a sequential `CountExact` run.
impl PersistState for CountExactAgent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.sync.persist(out);
        self.election.persist(out);
        self.stage.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, ppsim::SimError> {
        Ok(CountExactAgent {
            sync: SyncState::unpersist(r)?,
            election: FastLeaderState::unpersist(r)?,
            stage: ExactStageState::unpersist(r)?,
        })
    }
}

impl CountExactAgent {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        CountExactAgent {
            sync: SyncState::new(),
            election: FastLeaderState::new(),
            stage: ExactStageState::new(),
        }
    }

    /// Whether this agent currently considers itself the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.election.contender
    }

    /// The leader's approximation of `log₂ n` (Lemma 10), once the approximation
    /// stage has concluded.
    #[must_use]
    pub fn approximation(&self) -> Option<i64> {
        if self.stage.apx_done {
            Some(self.stage.k)
        } else {
            None
        }
    }
}

/// Protocol `CountExact` (Algorithm 3).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::{CountExact, CountExactParams};
/// use ppsim::Simulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1000;
/// let protocol = CountExact::new(CountExactParams::default());
/// let mut sim = Simulator::new(protocol, n, 3)?;
/// let outcome = sim.run_until(
///     |s| {
///         let p = s.protocol().clone();
///         s.states().iter().all(|a| p.agent_output(a) == Some(1000))
///     },
///     n as u64,
///     500_000_000,
/// );
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountExact {
    composition: SyncComposition<CountExactComponent>,
    params: CountExactParams,
}

/// The component state of protocol `CountExact` below the synchronisation
/// base: the fast leader election (Stage 1) and the approximation/refinement
/// stage bookkeeping (Stages 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CountExactCore {
    /// Fast leader-election component.
    pub election: FastLeaderState,
    /// Approximation- and refinement-stage state (`i_u`, `k_u`, `ℓ_u`, `ApxDone_u`).
    pub stage: ExactStageState,
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for CountExactCore {
    fn persist(&self, out: &mut Vec<u8>) {
        self.election.persist(out);
        self.stage.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, ppsim::SimError> {
        Ok(CountExactCore {
            election: FastLeaderState::unpersist(r)?,
            stage: ExactStageState::unpersist(r)?,
        })
    }
}

/// The stages of protocol `CountExact` as a [`SyncedComponent`]: the part of
/// Algorithm 3 below lines 1–4, driven by the shared synchronisation base
/// ([`SyncComposition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountExactComponent {
    election: FastLeaderElection,
    level_offset: u8,
    constant: u64,
}

impl SyncedComponent for CountExactComponent {
    type State = CountExactCore;
    type Output = Option<u64>;

    fn initial_state(&self) -> CountExactCore {
        CountExactCore::default()
    }

    fn reset(&self, state: &mut CountExactCore) {
        state.election.reset();
        state.stage.reset();
    }

    fn interact(&self, u: &mut CountExactCore, v: &mut CountExactCore, ctx: &SyncCtx) {
        if !u.election.done {
            // Stage 1: fast leader election (lines 5–6).
            self.election.interact(
                &mut u.election,
                &mut v.election,
                ctx.u_first_tick,
                ctx.u_phase,
                ctx.v_phase,
                ctx.u_level,
                ctx.v_level,
            );
        } else if !u.stage.apx_done {
            // Stage 2: approximation stage (Algorithm 4, lines 7–8).
            let actx = ApproximationContext {
                u_leader: u.election.contender,
                u_level: ctx.u_level,
                level_offset: self.level_offset,
                u_phase: ctx.u_phase,
                v_phase: ctx.v_phase,
            };
            approximation_interact(&mut u.stage, &mut v.stage, &actx);
        } else {
            // Stage 3: refinement stage (Algorithm 5, lines 9–10).
            let rctx = RefinementContext {
                u_leader: u.election.contender,
                u_first_tick: ctx.u_first_tick,
                u_phase: ctx.u_phase,
                v_phase: ctx.v_phase,
                constant: self.constant,
            };
            refinement_interact(&mut u.stage, &mut v.stage, &rctx);
        }
    }

    fn output(&self, state: &CountExactCore) -> Option<u64> {
        refinement_output(&state.stage, self.constant)
    }

    fn name(&self) -> &'static str {
        "count-exact"
    }
}

/// Pack a [`CountExactAgent`] into the composition layer's agent shape.
fn pack(agent: &CountExactAgent) -> SyncedAgent<CountExactCore> {
    SyncedAgent {
        sync: agent.sync,
        inner: CountExactCore {
            election: agent.election,
            stage: agent.stage,
        },
    }
}

/// Unpack the composition layer's agent shape back into a [`CountExactAgent`].
fn unpack(agent: SyncedAgent<CountExactCore>) -> CountExactAgent {
    CountExactAgent {
        sync: agent.sync,
        election: agent.inner.election,
        stage: agent.inner.stage,
    }
}

impl CountExact {
    /// Create the protocol from its parameters.
    #[must_use]
    pub fn new(params: CountExactParams) -> Self {
        CountExact {
            composition: SyncComposition::new(
                params.clock_hours,
                CountExactComponent {
                    election: FastLeaderElection::new(params.fast_leader_election()),
                    level_offset: params.level_offset,
                    constant: params.refinement_constant(),
                },
            ),
            params,
        }
    }

    /// The parameters this instance runs with.
    #[must_use]
    pub fn params(&self) -> &CountExactParams {
        &self.params
    }

    /// The composed synchronisation base + stage component this protocol runs
    /// (shared with [`DenseCountExact`], which executes the identical
    /// transition system on the count-based engines).
    pub(crate) fn composition(&self) -> &SyncComposition<CountExactComponent> {
        &self.composition
    }

    /// The output function applied to a single agent (exposed so that harness code
    /// can inspect outputs without constructing the protocol's associated type).
    #[must_use]
    pub fn agent_output(&self, agent: &CountExactAgent) -> Option<u64> {
        refinement_output(&agent.stage, self.params.refinement_constant())
    }

    /// Shared per-interaction preamble and staged dispatch, reused by the stable
    /// variant.  Returns `true` if the initiator was re-initialised.
    pub(crate) fn staged_interact(
        &self,
        initiator: &mut CountExactAgent,
        responder: &mut CountExactAgent,
    ) -> bool {
        let mut u = pack(initiator);
        let mut v = pack(responder);
        // Lines 1–4 of Algorithm 3, then the staged dispatch.
        let ctx = self.composition.interact_pair(&mut u, &mut v);
        *initiator = unpack(u);
        *responder = unpack(v);
        ctx.u_reset
    }
}

impl Default for CountExact {
    fn default() -> Self {
        Self::new(CountExactParams::default())
    }
}

impl Protocol for CountExact {
    type State = CountExactAgent;
    type Output = Option<u64>;

    fn initial_state(&self) -> CountExactAgent {
        CountExactAgent::new()
    }

    fn interact(
        &self,
        initiator: &mut CountExactAgent,
        responder: &mut CountExactAgent,
        _rng: &mut SmallRng,
    ) {
        self.staged_interact(initiator, responder);
    }

    fn output(&self, state: &CountExactAgent) -> Option<u64> {
        refinement_output(&state.stage, self.params.refinement_constant())
    }

    fn name(&self) -> &'static str {
        "count-exact"
    }
}

/// Convergence predicate for a population of size `n`: every agent outputs exactly
/// `n`.
#[must_use]
pub fn all_counted(protocol: &CountExact, states: &[CountExactAgent], n: usize) -> bool {
    states
        .iter()
        .all(|a| protocol.agent_output(a) == Some(n as u64))
}

/// Protocol `CountExact` on an interned dense state space, for the batched
/// and sharded count-based engines.
///
/// This is an **exact encoding** of [`CountExact`]: every dense transition
/// decodes the two agents, applies the identical composed interaction (the
/// same [`SyncComposition`] value [`CountExact::new`] builds), and re-encodes.
///
/// # State-space accounting (the bound on `q`)
///
/// Theorem 2 trades states for time: `CountExact` uses `Õ(n)` states, and
/// the diversity is real, in two distinct ways:
///
/// * **Election values.**  `FastLeaderElection` contenders sample
///   `2^{level−γ}`-bit random values; with the practical default `γ = 2` a
///   population of 10⁶ scatters over up to `2^{16}`-value election rounds.
///   Cure: [`CountExactParams::dense_at_scale`] (the paper's `γ = 8`, 1-bit
///   rounds) keeps the election's live value classes `O(log n)` — stages
///   1–2 then batch beautifully at any size (≈ 7·10⁴ distinct states over
///   the whole `n = 10⁶` window).
/// * **Refinement loads.**  Lemma 11 requires per-agent loads of magnitude
///   `C·2^{2k}/n ≈ 4n`, so the stage-3 balancing transient spreads the
///   population over `Θ(n)` distinct loads — no parameter choice removes
///   this, and a count-based representation degenerates to worse than
///   per-agent execution.  Cure:
///   [`count_exact_dense_staged`](crate::count_exact_dense_staged) runs
///   stages 1–2 dense and hands the configuration to the per-agent engine
///   for the refinement (exact: the process is Markov in the
///   configuration).
///
/// Small populations (`n ≲ 3·10⁴`, any parameters) fit end to end in the
/// dense form — the regime the equivalence tests pin at `n = 10⁴`.
/// [`Self::states_discovered`] reports the realised census either way.
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::{CountExactParams, DenseCountExact};
/// use ppsim::{DenseSimulator, Engine};
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 10_000;
/// let proto = DenseCountExact::new(CountExactParams::default());
/// let mut sim = DenseSimulator::new(Engine::Auto, proto, n, 3)?;
/// let outcome = sim.run_until(
///     |s| s.output_stats().unanimous() == Some(&Some(n as u64)),
///     n as u64,
///     u64::MAX >> 1,
/// );
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseCountExact {
    inner: DenseComposition<CountExactComponent>,
    params: CountExactParams,
}

impl DenseCountExact {
    /// Default interner capacity (2²²).  Stages 1–2 stay narrow at any
    /// simulable size (≈ 7·10⁴ distinct states over a full `n = 10⁶`
    /// stage-1–2 window with [`CountExactParams::dense_at_scale`]), and small
    /// populations fit end to end (≈ 1.6·10⁵ for a converged `n = 10⁴` run).
    /// The **refinement stage** at large `n` does not: its `Θ(n)` live loads
    /// mint new states nearly every interaction (> 4·10⁶ observed at
    /// `n = 10⁶` before the balancing transient ends) — run it per-agent via
    /// [`count_exact_dense_staged`](crate::count_exact_dense_staged), which
    /// is how experiment E19 executes Theorem 2 at scale.  Flat engine
    /// buffers cost ~17 bytes per slot (≈ 70 MB at this capacity); shrink it
    /// for small-`n` studies via [`Self::with_capacity`].
    pub const DEFAULT_CAPACITY: usize = 1 << 22;

    /// Create the dense protocol with the default state capacity.
    ///
    /// # Examples
    ///
    /// ```rust
    /// use popcount::{CountExactParams, DenseCountExact};
    /// use ppsim::{BatchedSimulator, DenseProtocol};
    ///
    /// # fn main() -> Result<(), ppsim::SimError> {
    /// let n = 10_000;
    /// let proto = DenseCountExact::new(CountExactParams::dense_at_scale(n));
    /// let mut sim = BatchedSimulator::new(proto.clone(), n, 3)?;
    /// sim.run(50_000);
    /// // States are interned as the run discovers them; decode is total on
    /// // every discovered index.
    /// let agent = proto.decode(0);
    /// assert_eq!(proto.encode(agent), 0);
    /// assert!(proto.states_discovered() <= proto.num_states());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn new(params: CountExactParams) -> Self {
        Self::with_capacity(params, Self::DEFAULT_CAPACITY)
    }

    /// Create the dense protocol with an explicit state capacity (the
    /// index-space size reported as `num_states()`; only sizes flat engine
    /// buffers — see [`ppsim::interned`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity >= u32::MAX` (dense indices
    /// are 32-bit and `u32::MAX` is reserved; see
    /// [`StateInterner::with_capacity`](ppsim::StateInterner::with_capacity)).
    #[must_use]
    pub fn with_capacity(params: CountExactParams, capacity: usize) -> Self {
        DenseCountExact {
            inner: DenseComposition::new(*CountExact::new(params).composition(), capacity),
            params,
        }
    }

    /// The parameters this instance runs with.
    #[must_use]
    pub fn params(&self) -> &CountExactParams {
        &self.params
    }

    /// Decode a dense index into the full per-agent state.
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been assigned to any state yet.
    #[must_use]
    pub fn decode(&self, index: usize) -> CountExactAgent {
        let agent = self.inner.decode(index);
        CountExactAgent {
            sync: agent.sync,
            election: agent.inner.election,
            stage: agent.inner.stage,
        }
    }

    /// Encode a per-agent state as its dense index, interning it on first
    /// appearance.
    #[must_use]
    pub fn encode(&self, agent: CountExactAgent) -> usize {
        self.inner.encode(pack(&agent))
    }

    /// How many distinct states have been discovered so far — the empirical
    /// state-space size Theorem 2 bounds by `Õ(n)`.
    #[must_use]
    pub fn states_discovered(&self) -> usize {
        self.inner.states_discovered()
    }
}

impl DenseProtocol for DenseCountExact {
    type Output = Option<u64>;

    fn num_states(&self) -> usize {
        self.inner.num_states()
    }

    fn initial_state(&self) -> usize {
        self.inner.initial_state()
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        self.inner.transition(initiator, responder)
    }

    fn output(&self, state: usize) -> Option<u64> {
        self.inner.output(state)
    }

    fn name(&self) -> &'static str {
        "dense-count-exact"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        ppsim::ProtocolInvariants {
            // Interned indices carry no fixed meaning across instances, so
            // no count-indexed quantity is declarable; the structure lives
            // in the composed stages and is exercised dynamically.
            conserved: Vec::new(),
            // The initiator consumes its firstTick flag and drives the
            // token split, so δ is role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn dynamic(&self) -> bool {
        true
    }

    fn discovered_states(&self) -> Option<usize> {
        Some(self.states_discovered())
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<Option<u64>>> {
        // The refinement stage runs here: native `SyncedAgent<CountExactCore>`
        // structs stepped by the monomorphic composed transition, interner
        // traffic confined to the migration boundaries (see `ppsim::stint`) —
        // the Θ(n) transient loads of Lemma 11 never flood the index space.
        self.inner.agent_stint(counts, seed)
    }

    fn save_protocol_state(&self) -> Vec<u8> {
        self.inner.save_protocol_state()
    }

    fn restore_protocol_state(&self, bytes: &[u8]) -> Result<(), ppsim::SimError> {
        self.inner.restore_protocol_state(bytes)
    }

    fn restore_agent_stint(
        &self,
        bytes: &[u8],
    ) -> Option<Result<BoxedAgentStint<Option<u64>>, ppsim::SimError>> {
        self.inner.restore_agent_stint(bytes)
    }
}

/// The typed agent-state codec of `CountExact`, delegated to the underlying
/// [`DenseComposition`]: the hybrid engine's refinement-leg stints step
/// native composition structs and consult the interner only at migration
/// boundaries (measured ≥ 1.25× the interned stint on the refinement leg at
/// `n = 10⁵`; see `BENCH_countexact.json`).
impl AgentCodec for DenseCountExact {
    type Native = SyncComposition<CountExactComponent>;

    fn native(&self) -> Self::Native {
        *self.inner.base()
    }

    fn decode_agent(&self, index: usize) -> SyncedAgent<CountExactCore> {
        self.inner.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<SyncedAgent<CountExactCore>> {
        self.inner.try_decode_agent(index)
    }

    fn encode_agent(&self, state: &SyncedAgent<CountExactCore>) -> usize {
        self.inner.encode(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn initial_agent_has_no_output() {
        let p = CountExact::default();
        let a = CountExactAgent::new();
        assert_eq!(p.agent_output(&a), None);
        assert_eq!(a.approximation(), None);
        assert!(a.is_leader());
    }

    #[test]
    fn count_exact_outputs_the_exact_population_size() {
        for &(n, seed) in &[(200usize, 11u64), (300, 12)] {
            let proto = CountExact::default();
            let mut sim = Simulator::new(proto, n, seed).unwrap();
            let outcome = sim.run_until(
                move |s| all_counted(s.protocol(), s.states(), n),
                (n * 50) as u64,
                80_000_000,
            );
            assert!(
                outcome.converged(),
                "CountExact did not converge to {n} (seed {seed}); outputs: {:?}",
                sim.output_stats().plurality()
            );
        }
    }

    #[test]
    fn approximation_stage_result_is_within_three_of_log_n() {
        let n = 400usize;
        let proto = CountExact::default();
        let mut sim = Simulator::new(proto, n, 99).unwrap();
        let outcome = sim.run_until(
            |s| s.states().iter().any(|a| a.stage.apx_done),
            (n * 10) as u64,
            80_000_000,
        );
        assert!(
            outcome.converged(),
            "the approximation stage never concluded"
        );
        let k = sim
            .states()
            .iter()
            .find_map(|a| a.approximation())
            .expect("some agent finished the approximation stage");
        let log_n = (n as f64).log2();
        assert!(
            (k as f64 - log_n).abs() <= 3.0,
            "approximation k = {k} is more than 3 away from log2 n = {log_n:.2}"
        );
    }

    #[test]
    fn exactly_one_leader_at_convergence() {
        let n = 250usize;
        let proto = CountExact::default();
        let mut sim = Simulator::new(proto, n, 5).unwrap();
        let outcome = sim.run_until(
            move |s| all_counted(s.protocol(), s.states(), n),
            (n * 50) as u64,
            80_000_000,
        );
        assert!(outcome.converged());
        assert_eq!(sim.states().iter().filter(|a| a.is_leader()).count(), 1);
    }
}
