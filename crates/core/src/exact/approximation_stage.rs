//! The approximation stage of `CountExact` — Algorithm 4, Lemma 10.
//!
//! Assuming a unique leader and synchronised phase clocks, the stage computes an
//! approximation `k = log₂ n ± 3`.  The leader starts with a single token; once per
//! phase every agent multiplies its load by `2^(2^(level−γ))` (the "load
//! explosion"); during the rest of the phase the agents run classical load
//! balancing \[10\].  As soon as the leader's balanced load reaches `4`, the total
//! load `M` must be at least `2n` w.h.p., and the leader computes
//! `k = log₂ M − ⌊log₂ ℓ_u⌋`, which is `log₂ n ± 3` (Lemma 10).  The `ApxDone` flag
//! (together with `k`) then spreads to every agent by one-way epidemics.
//!
//! # Differences from the pseudo-code of Algorithm 4
//!
//! The paper's analysis relies on the identity `M = 2^{i·2^{level−γ}}` — every token
//! is multiplied exactly once per phase.  Taken literally, the pseudo-code does not
//! guarantee this at simulable sizes: agents cross a phase boundary at slightly
//! different interactions, so a token can be handed from an agent that has already
//! multiplied to one that has not (and be multiplied twice), or vice versa.  With
//! the paper's asymptotic multiplier (`γ = 8`, a factor `1 + o(1)`) the resulting
//! drift is negligible; with the practical multiplier (`γ = 2`, a factor of 2 or
//! more) it is not.  This implementation therefore
//!
//! 1. tags every agent's load with the phase it is current for and performs the
//!    explosion lazily when the tag falls behind the agent's clock (equivalent to
//!    the paper's `firstTick` rule, but robust to missed ticks), and
//! 2. balances loads only between agents whose tags agree, so that every token is
//!    multiplied exactly once per phase and `M = 2^{(tag − origin)·2^{level−γ}}`
//!    holds exactly,
//! 3. concludes only when the leader's load has stayed at `≥ 4` throughout the
//!    preceding phase (a single sample can be inflated right after the explosion),
//!    which delays the conclusion by `O(1)` phases and leaves Lemma 10 unchanged.
//!
//! The paper's level offset is `γ = 8`; the default here is `γ = 2`
//! (see [`CountExactParams::level_offset`](crate::params::CountExactParams)).

use ppproto::load_balancing::split_evenly;
use ppsim::{PersistState, SimError, SnapshotReader};

/// Per-agent state shared by the approximation and refinement stages
/// (`i_v`, `k_v`, `ℓ_v`, `ApxDone_v` plus bookkeeping for the refinement phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExactStageState {
    /// The phase this agent's load is current for (the paper's phase counter `i_v`
    /// expressed on the shared clock).
    pub tag: u32,
    /// The phase in which the leader injected its initial token; `tag − origin`
    /// explosions have been applied to the load pool.
    pub origin_phase: u32,
    /// Whether the leader has injected its initial token (`i_u = 0` initialisation
    /// of Algorithm 4, line 2–3).
    pub seeded: bool,
    /// The approximation of `log₂ n` (`k_v`); computed by the leader, then spread.
    pub k: i64,
    /// Load used for balancing (`ℓ_v`).
    pub l: u64,
    /// The smallest load observed since this agent's last explosion (see the module
    /// documentation).
    pub l_min: u64,
    /// Whether the approximation stage has concluded (`ApxDone_v`).
    pub apx_done: bool,
    /// The phase number at which `ApxDone` was raised by the leader; adopted
    /// together with the flag so that all agents agree on the refinement stage's
    /// relative phases.
    pub start_phase: u32,
    /// Whether this agent has performed the refinement stage's load multiplication
    /// (gates the output function).
    pub multiplied: bool,
}

impl ExactStageState {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        ExactStageState {
            tag: 0,
            origin_phase: 0,
            seeded: false,
            k: 0,
            l: 0,
            l_min: 0,
            apx_done: false,
            start_phase: 0,
            multiplied: false,
        }
    }

    /// Re-initialise (used when an agent meets a higher junta level).
    pub fn reset(&mut self) {
        *self = ExactStageState::new();
    }

    /// Adopt the "approximation finished" information from a partner: the flag, the
    /// approximation `k` and the phase at which the stage concluded.  The load is
    /// cleared so that leftovers from the approximation stage cannot leak into the
    /// refinement stage.
    pub fn enter_refinement_from(&mut self, other: &ExactStageState) {
        self.apx_done = true;
        self.k = other.k;
        self.start_phase = other.start_phase;
        self.l = 0;
        self.multiplied = false;
    }

    /// The number of explosions applied to this agent's load pool so far
    /// (the paper's `i_u`).
    #[must_use]
    pub fn explosions(&self) -> u32 {
        self.tag.saturating_sub(self.origin_phase)
    }
}

impl Default for ExactStageState {
    fn default() -> Self {
        Self::new()
    }
}

/// Context of one approximation-stage interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproximationContext {
    /// Whether the initiator is the leader.
    pub u_leader: bool,
    /// The initiator's junta level (`level_u`), which determines the per-phase
    /// multiplier `2^(2^(level−γ))`.
    pub u_level: u8,
    /// The level offset `γ` (paper value 8, practical default 2).
    pub level_offset: u8,
    /// The initiator's current phase number.
    pub u_phase: u32,
    /// The responder's current phase number.
    pub v_phase: u32,
}

impl ApproximationContext {
    /// The per-phase exponent step `2^(level − γ)`, clamped to `[1, 32]` so that the
    /// per-phase multiplier always fits in a `u64` shift.
    #[must_use]
    pub fn exponent_step(&self) -> u32 {
        let exp = self.u_level.saturating_sub(self.level_offset);
        1u32 << u32::from(exp).min(5)
    }
}

/// Bring one agent's load pool up to date with its clock: apply the pending load
/// explosions.  Returns the tag (phase) the sampled pre-explosion load belonged to.
fn catch_up(state: &mut ExactStageState, phase: u32, step: u32) -> u32 {
    let old_tag = state.tag;
    if phase > state.tag {
        let missed = u64::from(phase - state.tag);
        let shift = (missed * u64::from(step)).min(63) as u32;
        state.l = state.l.checked_shl(shift).unwrap_or(u64::MAX);
        state.tag = phase;
        state.l_min = state.l;
    }
    old_tag
}

/// Apply one interaction of the approximation stage (Algorithm 4).
///
/// `u` is the initiator and `v` the responder.  Returns `true` if the initiator
/// raised `ApxDone` in this interaction.
pub fn approximation_interact(
    u: &mut ExactStageState,
    v: &mut ExactStageState,
    ctx: &ApproximationContext,
) -> bool {
    // One-way epidemics on ApxDone (Algorithm 4, line 9): an agent that has not yet
    // finished adopts the conclusion (and the approximation k) from a partner that
    // has.  Nothing else happens in such an interaction — the partner is already in
    // the refinement stage and its load must not be mixed with approximation loads.
    if !u.apx_done && v.apx_done {
        u.enter_refinement_from(v);
        return false;
    }
    if u.apx_done {
        if !v.apx_done {
            v.enter_refinement_from(u);
        }
        return false;
    }

    let step = ctx.exponent_step();
    let mut raised = false;

    // Line 2–3: the leader initialises the stage with a single token.
    if ctx.u_leader && !u.seeded {
        u.seeded = true;
        u.l = 1;
        u.l_min = 1;
        u.tag = ctx.u_phase;
        u.origin_phase = ctx.u_phase;
    }

    // Lines 4–7: once per phase, check for conclusion and apply the load explosion.
    if ctx.u_leader && u.seeded && ctx.u_phase > u.tag && u.l >= 4 && u.l_min >= 4 {
        // The balanced load stayed at 4 or above throughout the previous phase, so
        // the total load is ≥ 2n w.h.p.; conclude with k = log₂ M − ⌊log₂ ℓ⌋ where
        // log₂ M = (tag − origin) · 2^(level−γ).
        u.apx_done = true;
        u.start_phase = ctx.u_phase;
        let log_m = i64::from(u.explosions()) * i64::from(step);
        let log_l = (63 - i64::from(u.l.leading_zeros())).max(0);
        u.k = log_m - log_l;
        return true;
    }
    catch_up(u, ctx.u_phase, step);
    catch_up(v, ctx.v_phase, step);

    // Line 8: classical load balancing, restricted to agents whose load pools are
    // current for the same phase so that every token is multiplied exactly once per
    // phase (see the module documentation).
    if u.tag == v.tag {
        split_evenly(&mut u.l, &mut v.l);
        u.l_min = u.l_min.min(u.l);
        v.l_min = v.l_min.min(v.l);
    }
    raised |= false;
    raised
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for ExactStageState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.tag.persist(out);
        self.origin_phase.persist(out);
        self.seeded.persist(out);
        self.k.persist(out);
        self.l.persist(out);
        self.l_min.persist(out);
        self.apx_done.persist(out);
        self.start_phase.persist(out);
        self.multiplied.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(ExactStageState {
            tag: u32::unpersist(r)?,
            origin_phase: u32::unpersist(r)?,
            seeded: bool::unpersist(r)?,
            k: i64::unpersist(r)?,
            l: u64::unpersist(r)?,
            l_min: u64::unpersist(r)?,
            apx_done: bool::unpersist(r)?,
            start_phase: u32::unpersist(r)?,
            multiplied: bool::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(leader: bool, level: u8, u_phase: u32, v_phase: u32) -> ApproximationContext {
        ApproximationContext {
            u_leader: leader,
            u_level: level,
            level_offset: 2,
            u_phase,
            v_phase,
        }
    }

    #[test]
    fn exponent_step_follows_the_level() {
        assert_eq!(ctx(true, 2, 0, 0).exponent_step(), 1);
        assert_eq!(ctx(true, 3, 0, 0).exponent_step(), 2);
        assert_eq!(ctx(true, 4, 0, 0).exponent_step(), 4);
        assert_eq!(ctx(true, 5, 0, 0).exponent_step(), 8);
        // Clamped so that 2^step fits comfortably in u64.
        assert_eq!(ctx(true, 12, 0, 0).exponent_step(), 32);
        assert_eq!(ctx(true, 0, 0, 0).exponent_step(), 1);
    }

    #[test]
    fn leader_seeds_a_single_token() {
        let mut leader = ExactStageState::new();
        let mut other = ExactStageState::new();
        approximation_interact(&mut leader, &mut other, &ctx(true, 4, 10, 10));
        assert!(leader.seeded);
        assert_eq!(leader.origin_phase, 10);
        assert_eq!(leader.explosions(), 0);
        // The single token may have been handed over by balancing but is conserved.
        assert_eq!(leader.l + other.l, 1);
    }

    #[test]
    fn pending_explosions_are_applied_lazily_and_exactly_once_per_phase() {
        // An agent whose load is current for phase 10 and whose clock reached
        // phase 12 multiplies by 2^(2·step) in one go.
        let mut u = ExactStageState {
            seeded: true,
            l: 3,
            l_min: 3,
            tag: 10,
            origin_phase: 8,
            ..ExactStageState::new()
        };
        let mut v = ExactStageState {
            tag: 12,
            ..ExactStageState::new()
        };
        approximation_interact(&mut u, &mut v, &ctx(false, 4, 12, 12));
        assert_eq!(u.tag, 12);
        assert_eq!(u.explosions(), 4);
        // 3 · 2^(2·4) = 768, then balanced with the (empty, same-tag) partner.
        assert_eq!(u.l + v.l, 768);
    }

    #[test]
    fn balancing_is_restricted_to_matching_pools() {
        let mut u = ExactStageState {
            l: 10,
            l_min: 10,
            tag: 5,
            ..ExactStageState::new()
        };
        let mut v = ExactStageState {
            l: 0,
            tag: 7,
            ..ExactStageState::new()
        };
        // The initiator's clock is still at phase 5, the responder's at 7: no
        // balancing across pools.
        approximation_interact(&mut u, &mut v, &ctx(false, 4, 5, 7));
        assert_eq!(u.l, 10);
        assert_eq!(v.l, 0);
    }

    #[test]
    fn leader_concludes_once_its_load_stayed_at_four_for_a_phase() {
        let mut leader = ExactStageState {
            seeded: true,
            l: 6,
            l_min: 4,
            tag: 13,
            origin_phase: 8,
            ..ExactStageState::new()
        };
        let mut other = ExactStageState {
            l: 5,
            tag: 13,
            ..ExactStageState::new()
        };
        let raised = approximation_interact(&mut leader, &mut other, &ctx(true, 4, 14, 14));
        assert!(raised);
        assert!(leader.apx_done);
        assert_eq!(leader.start_phase, 14);
        // k = (tag − origin)·2^(level−γ) − ⌊log₂ l⌋ = 5·4 − 2 = 18.
        assert_eq!(leader.k, 18);
        // The concluded leader no longer balances its load.
        assert_eq!(other.l, 5);
    }

    #[test]
    fn leader_does_not_conclude_on_a_transient_spike() {
        // A single inflated sample (l = 6) is not enough when the load dipped below
        // 4 earlier in the phase: the stage continues with another explosion.
        let mut leader = ExactStageState {
            seeded: true,
            l: 6,
            l_min: 1,
            tag: 13,
            origin_phase: 8,
            ..ExactStageState::new()
        };
        let mut other = ExactStageState {
            l: 0,
            tag: 14,
            ..ExactStageState::new()
        };
        let raised = approximation_interact(&mut leader, &mut other, &ctx(true, 4, 14, 14));
        assert!(!raised);
        assert!(!leader.apx_done);
        assert_eq!(
            leader.explosions(),
            6,
            "the stage continues with another load explosion"
        );
        assert_eq!(
            leader.l + other.l,
            6 << 4,
            "the exploded load is conserved by balancing"
        );
    }

    #[test]
    fn apx_done_spreads_and_resets_the_load() {
        let done = ExactStageState {
            apx_done: true,
            k: 9,
            start_phase: 17,
            l: 123,
            ..ExactStageState::new()
        };
        let mut u = ExactStageState {
            l: 55,
            tag: 3,
            ..ExactStageState::new()
        };
        let mut v = done;
        approximation_interact(&mut u, &mut v, &ctx(false, 4, 18, 18));
        assert!(u.apx_done);
        assert_eq!(u.k, 9);
        assert_eq!(u.start_phase, 17);
        assert_eq!(u.l, 0, "approximation-stage leftovers are cleared");
        assert_eq!(v.l, 123, "the refinement-stage partner keeps its own load");
    }
}
