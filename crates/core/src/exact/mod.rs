//! Exact population counting — Section 4 of the paper.
//!
//! Protocol `CountExact` (Algorithm 3, Theorem 2) outputs the exact population size
//! `n`, stabilising in the asymptotically optimal `O(n log n)` interactions with
//! `Õ(n)` states w.h.p.  It is the composition of
//!
//! 1. the junta process and phase clocks (shared with `Approximate`),
//! 2. `FastLeaderElection` (Lemma 7, Appendix D) — *Stage 1*,
//! 3. the **approximation stage** (Algorithm 4, Lemma 10), which computes
//!    `log₂ n ± 3` — *Stage 2*,
//! 4. the **refinement stage** (Algorithm 5, Lemma 11), which turns the rough
//!    estimate into the exact count — *Stage 3*.
//!
//! The stable variant (Appendix F) additionally runs error detection and the exact
//! backup protocol; see [`stable`].

pub mod approximation_stage;
pub mod count_exact;
pub mod refinement_stage;
pub mod stable;
pub mod staged;

pub use approximation_stage::{approximation_interact, ApproximationContext, ExactStageState};
pub use count_exact::{all_counted, CountExact, CountExactAgent};
pub use refinement_stage::{refinement_interact, refinement_output, RefinementContext};
pub use stable::{StableCountExact, StableCountExactAgent};
