//! The stable (always-correct) variant of `CountExact` — Appendix F of the paper.
//!
//! Like the stable `Approximate`, the stable exact counter is a hybrid: protocol
//! `CountExact` runs alongside the always-correct exact backup protocol of
//! Appendix C.2, and a set of error checks decides which of the two results the
//! agents output:
//!
//! * two agents that both concluded `FastLeaderElection` as leaders raise an error
//!   when they meet;
//! * agents whose phase counters have drifted apart raise an error;
//! * an agent that is about to perform the refinement stage's multiplication with
//!   fewer than `2⁵ − 1` units of load raises an error (the total load would be too
//!   small for the output computation of Lemma 11);
//! * two refinement-stage agents holding different approximations `k` raise an
//!   error;
//! * two agents whose refined loads differ by more than the balancing discrepancy
//!   bound raise an error.
//!
//! The error flag spreads by one-way epidemics; agents that have seen it output the
//! backup count, which converges to the exact `n` with probability 1.

use rand::rngs::SmallRng;

use ppsim::Protocol;

use crate::backup::{exact_backup_interact, ExactBackupState};
use crate::params::CountExactParams;

use super::count_exact::{CountExact, CountExactAgent};

/// Minimum load an agent must hold before the refinement multiplication
/// (`2⁵ − 1`; Appendix F uses `2⁵` minus the balancing error).
pub const MIN_REFINEMENT_LOAD: u64 = 31;

/// Per-agent state of the stable `CountExact` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StableCountExactAgent {
    /// The state of the fast protocol.
    pub fast: CountExactAgent,
    /// The always-correct exact backup protocol (Appendix C.2).
    pub backup: ExactBackupState,
    /// Whether this agent has seen the error flag.
    pub error: bool,
}

impl StableCountExactAgent {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        StableCountExactAgent::default()
    }
}

/// The stable `CountExact` protocol (Algorithm 3 + Appendix F error detection +
/// Appendix C.2 backup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableCountExact {
    fast: CountExact,
}

impl StableCountExact {
    /// Create the protocol from the parameters of the underlying fast protocol.
    #[must_use]
    pub fn new(params: CountExactParams) -> Self {
        StableCountExact {
            fast: CountExact::new(params),
        }
    }

    /// The underlying fast protocol.
    #[must_use]
    pub fn fast(&self) -> &CountExact {
        &self.fast
    }

    /// The count this agent currently outputs: the fast protocol's result when it
    /// is available and unchallenged, the backup count otherwise.
    #[must_use]
    pub fn agent_output(&self, agent: &StableCountExactAgent) -> u64 {
        if !agent.error {
            if let Some(count) = self.fast.agent_output(&agent.fast) {
                return count;
            }
        }
        agent.backup.count
    }
}

impl Default for StableCountExact {
    fn default() -> Self {
        Self::new(CountExactParams::default())
    }
}

impl Protocol for StableCountExact {
    type State = StableCountExactAgent;
    type Output = u64;

    fn initial_state(&self) -> StableCountExactAgent {
        StableCountExactAgent::new()
    }

    fn interact(
        &self,
        initiator: &mut StableCountExactAgent,
        responder: &mut StableCountExactAgent,
        _rng: &mut SmallRng,
    ) {
        // The slow backup protocol runs in parallel throughout.
        exact_backup_interact(&mut initiator.backup, &mut responder.backup);

        // Error source 3: an agent about to multiply with too little load.  The
        // check is performed before the fast protocol acts so that the offending
        // multiplication is flagged in the same interaction.
        let u = &initiator.fast;
        if u.stage.apx_done
            && !u.stage.multiplied
            && u.sync.clock.first_tick
            && u.sync.clock.phase.saturating_sub(u.stage.start_phase) == 2
            && u.stage.l < MIN_REFINEMENT_LOAD
        {
            initiator.error = true;
        }

        // Error source 4: refinement-stage agents holding different approximations.
        if initiator.fast.stage.apx_done
            && responder.fast.stage.apx_done
            && initiator.fast.stage.k != responder.fast.stage.k
        {
            initiator.error = true;
            responder.error = true;
        }

        // The fast protocol (Algorithm 3) itself.
        self.fast
            .staged_interact(&mut initiator.fast, &mut responder.fast);

        // Error source 1: two finished leaders meet.
        if initiator.fast.election.done
            && responder.fast.election.done
            && initiator.fast.election.contender
            && responder.fast.election.contender
        {
            initiator.error = true;
            responder.error = true;
        }

        // Error source 2: phase counters drifted apart (both past leader election).
        if initiator.fast.election.done
            && responder.fast.election.done
            && initiator
                .fast
                .sync
                .clock
                .phase
                .abs_diff(responder.fast.sync.clock.phase)
                > 1
        {
            initiator.error = true;
            responder.error = true;
        }

        // The error flag spreads by one-way epidemics.
        if initiator.error || responder.error {
            initiator.error = true;
            responder.error = true;
        }
    }

    fn output(&self, state: &StableCountExactAgent) -> u64 {
        self.agent_output(state)
    }

    fn name(&self) -> &'static str {
        "count-exact-stable"
    }
}

/// Convergence predicate for a population of size `n`: every agent outputs `n`.
#[must_use]
pub fn all_exact(protocol: &StableCountExact, states: &[StableCountExactAgent], n: usize) -> bool {
    states.iter().all(|a| protocol.agent_output(a) == n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn output_prefers_the_fast_result_and_falls_back_on_error() {
        let proto = StableCountExact::default();
        let mut a = StableCountExactAgent::new();
        a.backup.count = 7;
        assert_eq!(proto.agent_output(&a), 7, "no fast result yet");

        a.fast.stage.apx_done = true;
        a.fast.stage.multiplied = true;
        a.fast.stage.k = 10;
        a.fast.stage.l = 256 * (1 << 20) / 1000;
        let fast = proto.fast().agent_output(&a.fast).unwrap();
        assert_eq!(proto.agent_output(&a), fast);

        a.error = true;
        assert_eq!(proto.agent_output(&a), 7);
    }

    #[test]
    fn differing_refinement_approximations_raise_an_error() {
        let proto = StableCountExact::default();
        let mut rng = ppsim::seeded_rng(0);
        let mut u = StableCountExactAgent::new();
        let mut v = StableCountExactAgent::new();
        for agent in [&mut u, &mut v] {
            agent.fast.sync.junta.active = false;
            agent.fast.election.done = true;
            agent.fast.election.contender = false;
            agent.fast.stage.apx_done = true;
        }
        u.fast.stage.k = 9;
        v.fast.stage.k = 11;
        proto.interact(&mut u, &mut v, &mut rng);
        assert!(u.error && v.error);
    }

    #[test]
    fn stable_count_exact_outputs_n() {
        let n = 250usize;
        let proto = StableCountExact::default();
        let mut sim = Simulator::new(proto, n, 321).unwrap();
        let outcome = sim.run_until(
            move |s| all_exact(s.protocol(), s.states(), n),
            (n * 50) as u64,
            120_000_000,
        );
        assert!(
            outcome.converged(),
            "stable CountExact did not converge to n = {n}"
        );
    }

    #[test]
    fn injected_error_switches_everyone_to_the_backup() {
        let n = 150usize;
        let proto = StableCountExact::default();
        let mut sim = Simulator::new(proto, n, 13).unwrap();
        sim.states_mut()[0].error = true;
        let outcome = sim.run_until(
            move |s| {
                s.states()
                    .iter()
                    .all(|a| a.error && a.backup.count == n as u64)
            },
            (n * n / 8) as u64,
            2_000_000_000,
        );
        assert!(outcome.converged(), "the exact backup did not take over");
        assert!(sim.outputs().iter().all(|&o| o == n as u64));
    }
}
