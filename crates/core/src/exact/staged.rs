//! Staged execution of `CountExact` at population scale, as a thin wrapper
//! over the hybrid engine.
//!
//! Theorem 2 trades states for time, and the state count is precisely the
//! complexity parameter of the count-based engines.  Measured at `n = 10⁶`
//! (`dense_at_scale` parameters):
//!
//! * **Stages 1–2** (fast leader election + approximation — the `O(n log n)`
//!   bulk, ≈ `1.6·10¹⁰` interactions) stay *narrow*: ≈ 7·10⁴ distinct states
//!   over the whole window, a few dozen occupied at a time.  The batched
//!   engine executes them an order of magnitude faster than the per-agent
//!   engine could.
//! * **Stage 3** (refinement, ≈ `3.4·10⁸` interactions) is *wide* by design:
//!   Lemma 11 needs per-agent loads of magnitude `C·2^{2k}/n ≈ 4n`, so the
//!   balancing transient scatters the population over `Θ(n)` distinct loads
//!   — nearly every interaction mints two new states (> 4·10⁶ observed
//!   before the transient ends), occupancy approaches the population size,
//!   and *any* count-based representation degenerates below per-agent
//!   speed.
//!
//! Earlier revisions implemented the hand-off by hand: run the dense engine
//! until every agent had concluded the approximation stage, then copy the
//! configuration into the per-agent engine — a one-shot, protocol-specific
//! switch that lived in this file.  That mechanism is now the general
//! [`HybridSimulator`]: its occupancy monitor detects the refinement
//! transient by its `q_occ² > c·√n` signature (no knowledge of `ApxDone`
//! required), performs the same Markov-in-configuration migration, and can
//! even migrate *back* once the balancing transient collapses the census
//! again.  [`count_exact_dense_staged`] just parameterises that engine for
//! `CountExact` and reports the phase accounting.
//!
//! The hand-off is **exact** either way: the population process is Markov in
//! the *configuration* (the multiset of states), which is transferred
//! verbatim; only the schedule's randomness source changes, exactly as it
//! does between the batched and sequential engines in the equivalence suite.
//!
//! Since the agent-state codec landed ([`ppsim::stint`]), the per-agent leg
//! steps **native structs** — `DenseCountExact` hands the hybrid engine a
//! decoded stint, so the refinement loop carries no interner traffic at all
//! (the PR 4 interned stint cost a measured ~40 % of that leg at `n = 10⁵`).
//! [`StintMode::Interned`] keeps the old stepping path measurable.

use std::path::{Path, PathBuf};

use ppsim::snapshot::ENGINE_COMPOSITE_BASE;
use ppsim::{
    Checkpointable, Engine, EngineSnapshot, HybridConfig, HybridSimulator, HybridSubstrate,
    PersistState, SimError, Simulator,
};

use crate::params::CountExactParams;

use super::count_exact::{CountExact, DenseCountExact};

/// Engine tag of the composite staged-runner snapshot: a
/// [`count_exact_dense_staged`] checkpoint wraps the inner engine snapshot
/// together with the run parameters that shape its trajectory.
pub const ENGINE_STAGED: u8 = ENGINE_COMPOSITE_BASE;

/// Outcome of a staged (hybrid) dense `CountExact` run.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct StagedCountOutcome {
    /// Total interactions executed across the run.
    pub interactions: u64,
    /// Interactions executed on the count-based substrate.
    pub dense_interactions: u64,
    /// Interactions executed on the per-agent engine.  Always
    /// `interactions - dense_interactions`: the phase counters partition the
    /// total exactly (no interaction is counted in both phases at a switch).
    pub agent_interactions: u64,
    /// Wall-clock seconds spent on the count-based substrate (per-leg
    /// throughput accounting; 0 for runs that resolved to the sequential
    /// engine).
    pub dense_seconds: f64,
    /// Wall-clock seconds spent on per-agent stints.
    pub agent_seconds: f64,
    /// Total-interaction counts at which the hybrid engine migrated between
    /// representations (the measured switch points; empty when the run never
    /// left the dense substrate or ran entirely per-agent).
    pub switch_interactions: Vec<u64>,
    /// Distinct dense states the run interned (0 when the whole run stayed
    /// on the per-agent engine with struct states).  Decoded stints intern
    /// only at migration boundaries, so this census covers the dense legs
    /// plus each boundary configuration — far below the `Θ(n)` transient
    /// states the refinement mints (which the interned-stint baseline pushes
    /// through the interner one by one).
    pub states_discovered: usize,
    /// The per-agent stepping representation the hybrid engine used
    /// (`Some("decoded")` with the codec, `Some("interned")` under
    /// [`StintMode::Interned`], `None` if no stint ran).
    pub stint_kind: Option<&'static str>,
    /// The unanimous output, if the run converged (`Some(n)` when correct).
    pub output: Option<u64>,
    /// Whether a unanimous output was reached within the budget.
    pub converged: bool,
}

/// Which representation the hybrid engine's per-agent stints step (the
/// decoded-vs-interned comparison lever of experiment E20 and
/// `bench_batched_json --interned-stints`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StintMode {
    /// Native structs through the protocol's agent-state codec — the fast
    /// path, no interner traffic per interaction.
    #[default]
    Decoded,
    /// Interned `u32` indices through `DenseProtocol::transition` — the PR 4
    /// behaviour, kept measurable as the comparison baseline.
    Interned,
}

/// Run `CountExact` to a unanimous output at population scale on the hybrid
/// engine: the count-based substrate while the configuration stays narrow
/// (stages 1–2), per-agent execution while the refinement's `Θ(n)` live
/// loads keep it degenerate, automatic migration in between (see the module
/// docs for why the switch happens at the refinement transient).
///
/// `engine` selects the dense substrate: [`Engine::Batched`] and
/// [`Engine::Hybrid`] run it batched, [`Engine::Sharded`] sharded.  If
/// `engine` resolves to [`Engine::Sequential`] (small populations under
/// [`Engine::Auto`]), the whole run stays per-agent on struct states and no
/// hand-off machinery is involved.  `budget` caps the *total* interactions.
///
/// # Errors
///
/// Propagates the engine constructors' errors
/// ([`SimError::PopulationTooSmall`], [`SimError::InvalidParameter`]).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::exact::staged::count_exact_dense_staged;
/// use popcount::CountExactParams;
/// use ppsim::Engine;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1_000_000;
/// let outcome = count_exact_dense_staged(
///     CountExactParams::dense_at_scale(n),
///     n,
///     42,
///     Engine::Batched,
///     u64::MAX >> 1,
/// )?;
/// assert!(outcome.converged);
/// assert_eq!(outcome.output, Some(n as u64));
/// assert!(!outcome.switch_interactions.is_empty(), "the refinement forces a hand-off");
/// # Ok(())
/// # }
/// ```
pub fn count_exact_dense_staged(
    params: CountExactParams,
    n: usize,
    seed: u64,
    engine: Engine,
    budget: u64,
) -> Result<StagedCountOutcome, SimError> {
    count_exact_dense_staged_with(params, n, seed, engine, budget, StintMode::Decoded)
}

/// [`count_exact_dense_staged`] with an explicit per-agent stepping mode:
/// [`StintMode::Interned`] pins the PR 4 interned-index stint as the
/// comparison baseline (experiment E20's decoded-vs-interned column and the
/// bench tooling's `--interned-stints` flag run through here).
///
/// # Errors
///
/// Propagates the engine constructors' errors
/// ([`SimError::PopulationTooSmall`], [`SimError::InvalidParameter`]).
pub fn count_exact_dense_staged_with(
    params: CountExactParams,
    n: usize,
    seed: u64,
    engine: Engine,
    budget: u64,
    stints: StintMode,
) -> Result<StagedCountOutcome, SimError> {
    count_exact_dense_staged_checkpointed(params, n, seed, engine, budget, stints, None, None)
}

/// Autosave policy for [`count_exact_dense_staged_checkpointed`]: write an
/// atomic checkpoint to `path` whenever at least `every` interactions have
/// elapsed since the last save (checked at the runner's convergence-probe
/// boundaries, so the cadence is rounded up to the probe granularity
/// `n · 20`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedCheckpoint {
    /// Where to write the snapshot (atomically: temp + fsync + rename).
    pub path: PathBuf,
    /// Minimum interactions between consecutive autosaves.
    pub every: u64,
}

/// [`count_exact_dense_staged_with`] plus crash recovery: optional periodic
/// autosaves and an optional snapshot to resume from.
///
/// Determinism: `run_until` chunks its work at **absolute** interaction
/// counts (`min(check_every, budget − interactions())`), so a resumed run —
/// whose restored interaction counter sits on a probe boundary — issues
/// exactly the chunk sequence the uninterrupted run would have issued from
/// that point, and the continued trajectory is bit-identical.  Checkpoints
/// are taken only at those probe boundaries, never mid-chunk.
///
/// The snapshot is a composite frame (tag [`ENGINE_STAGED`]) wrapping the
/// inner engine snapshot with the run parameters that shape the trajectory
/// (`params`, `n`, `seed`, stint mode, engine kind); `resume` fails with
/// [`SimError::SnapshotMismatch`] when those disagree with the arguments.
///
/// # Errors
///
/// Propagates the engine constructors' errors, snapshot decode/IO errors
/// from `resume`, and the first autosave write failure (a long run silently
/// losing its checkpoints would defeat the point).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn count_exact_dense_staged_checkpointed(
    params: CountExactParams,
    n: usize,
    seed: u64,
    engine: Engine,
    budget: u64,
    stints: StintMode,
    autosave: Option<&StagedCheckpoint>,
    resume: Option<&Path>,
) -> Result<StagedCountOutcome, SimError> {
    let check_every = (n as u64).max(1) * 20;

    let resumed = match resume {
        Some(path) => Some(read_staged_snapshot(path, &params, n, seed, stints)?),
        None => None,
    };

    let substrate = match engine.resolve(n) {
        Engine::Sequential => {
            // Small populations: the per-agent engine serves every stage.
            let mut sim = Simulator::new(CountExact::new(params), n, seed)?;
            if let Some((kind, inner)) = &resumed {
                expect_kind(*kind, KIND_SEQUENTIAL)?;
                sim.restore_state(inner)?;
            }
            let started = std::time::Instant::now();
            let mut saver = Autosaver::new(autosave, sim.interactions());
            let outcome = sim.run_until(
                |s| {
                    saver.observe(
                        s,
                        s.interactions(),
                        &params,
                        n,
                        seed,
                        stints,
                        KIND_SEQUENTIAL,
                    ) || s.output_stats().unanimous().is_some_and(|o| o.is_some())
                },
                check_every,
                budget,
            );
            saver.into_result()?;
            let output = sim.output_stats().unanimous().cloned().flatten();
            return Ok(StagedCountOutcome {
                interactions: sim.interactions(),
                dense_interactions: 0,
                agent_interactions: sim.interactions(),
                dense_seconds: 0.0,
                agent_seconds: started.elapsed().as_secs_f64(),
                switch_interactions: Vec::new(),
                states_discovered: 0,
                stint_kind: None,
                output,
                converged: outcome.converged(),
            });
        }
        Engine::Sharded { shards, threads } => HybridSubstrate::Sharded { shards, threads },
        Engine::Batched | Engine::Hybrid => HybridSubstrate::Batched,
        Engine::Auto => unreachable!("resolve() never returns Auto"),
    };

    // The interned-stint baseline keeps interning through its per-agent
    // phase, so the index space must hold the refinement's Θ(n) load values.
    // The decoded stint only interns boundary configurations, but sizing for
    // the worst case keeps the two modes byte-comparable.
    let proto = DenseCountExact::with_capacity(params, CountExactParams::dense_capacity(n));
    let handle = proto.clone(); // shares the interner: state census + decode
    let mut sim = HybridSimulator::with_config(
        proto,
        n,
        seed,
        HybridConfig {
            substrate,
            interned_stints: stints == StintMode::Interned,
            ..HybridConfig::default()
        },
    )?;
    if let Some((kind, inner)) = &resumed {
        expect_kind(*kind, KIND_HYBRID)?;
        sim.restore_state(inner)?;
    }
    let mut saver = Autosaver::new(autosave, sim.interactions());
    let outcome = sim.run_until(
        |s| {
            saver.observe(s, s.interactions(), &params, n, seed, stints, KIND_HYBRID)
                || s.output_stats().unanimous().is_some_and(|o| o.is_some())
        },
        check_every,
        budget,
    );
    saver.into_result()?;
    let output = sim.output_stats().unanimous().cloned().flatten();
    debug_assert_eq!(
        sim.dense_interactions() + sim.agent_interactions(),
        sim.interactions(),
        "phase counters must partition the total exactly"
    );
    Ok(StagedCountOutcome {
        interactions: sim.interactions(),
        dense_interactions: sim.dense_interactions(),
        agent_interactions: sim.agent_interactions(),
        dense_seconds: sim.dense_seconds(),
        agent_seconds: sim.agent_seconds(),
        switch_interactions: sim.switches().iter().map(|e| e.interactions).collect(),
        states_discovered: handle.states_discovered(),
        stint_kind: sim.stint_kind(),
        output,
        converged: outcome.converged(),
    })
}

/// Engine-resolution kind recorded in the composite frame: per-agent
/// [`Simulator`] (small populations under [`Engine::Auto`]).
const KIND_SEQUENTIAL: u8 = 0;
/// Engine-resolution kind recorded in the composite frame: [`HybridSimulator`].
const KIND_HYBRID: u8 = 1;

fn expect_kind(found: u8, expected: u8) -> Result<(), SimError> {
    if found == expected {
        return Ok(());
    }
    let name = |k| match k {
        KIND_SEQUENTIAL => "sequential",
        KIND_HYBRID => "hybrid",
        _ => "unknown",
    };
    Err(SimError::SnapshotMismatch {
        reason: format!(
            "staged snapshot was taken on the {} engine but this run resolved to the {} engine \
             (same n and engine selection reproduce the original resolution)",
            name(found),
            name(expected)
        ),
    })
}

/// Wrap the inner engine snapshot in the composite staged frame together
/// with every run parameter that shapes the trajectory.
fn staged_snapshot<S: Checkpointable>(
    sim: &S,
    params: &CountExactParams,
    n: usize,
    seed: u64,
    stints: StintMode,
    kind: u8,
) -> EngineSnapshot {
    let mut payload = Vec::new();
    params.clock_hours.persist(&mut payload);
    params.level_offset.persist(&mut payload);
    params.election_phases.persist(&mut payload);
    params.refinement_constant_log2.persist(&mut payload);
    n.persist(&mut payload);
    seed.persist(&mut payload);
    (stints == StintMode::Interned).persist(&mut payload);
    kind.persist(&mut payload);
    sim.save_state().to_bytes().persist(&mut payload);
    EngineSnapshot::new(ENGINE_STAGED, payload)
}

/// Read a composite staged checkpoint, validate the trajectory-shaping
/// parameters against the caller's, and hand back `(kind, inner snapshot)`.
fn read_staged_snapshot(
    path: &Path,
    params: &CountExactParams,
    n: usize,
    seed: u64,
    stints: StintMode,
) -> Result<(u8, EngineSnapshot), SimError> {
    let snap = EngineSnapshot::read_file(path)?;
    snap.expect_engine(ENGINE_STAGED, "staged CountExact runner")?;
    let mut r = snap.reader();
    let saved = CountExactParams {
        clock_hours: u8::unpersist(&mut r)?,
        level_offset: u8::unpersist(&mut r)?,
        election_phases: u32::unpersist(&mut r)?,
        refinement_constant_log2: u8::unpersist(&mut r)?,
    };
    let saved_n = usize::unpersist(&mut r)?;
    let saved_seed = u64::unpersist(&mut r)?;
    let saved_interned = bool::unpersist(&mut r)?;
    let kind = u8::unpersist(&mut r)?;
    let inner_bytes = Vec::<u8>::unpersist(&mut r)?;
    r.finish()?;
    let interned = stints == StintMode::Interned;
    if saved != *params || saved_n != n || saved_seed != seed || saved_interned != interned {
        return Err(SimError::SnapshotMismatch {
            reason: format!(
                "staged snapshot was taken with (params {saved:?}, n {saved_n}, seed \
                 {saved_seed}, interned stints {saved_interned}) but this run asked for \
                 (params {params:?}, n {n}, seed {seed}, interned stints {interned})"
            ),
        });
    }
    Ok((kind, EngineSnapshot::from_bytes(&inner_bytes)?))
}

/// Periodic autosave state threaded through `run_until`'s convergence probe:
/// saves at probe boundaries once `every` interactions have elapsed, stashes
/// the first write error, and asks the run to stop when one occurred (its
/// `observe` return value is or-ed into the predicate).
struct Autosaver<'a> {
    spec: Option<&'a StagedCheckpoint>,
    last_saved: u64,
    error: Option<SimError>,
}

impl<'a> Autosaver<'a> {
    fn new(spec: Option<&'a StagedCheckpoint>, interactions_now: u64) -> Self {
        Autosaver {
            spec,
            last_saved: interactions_now,
            error: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn observe<S: Checkpointable>(
        &mut self,
        sim: &S,
        interactions: u64,
        params: &CountExactParams,
        n: usize,
        seed: u64,
        stints: StintMode,
        kind: u8,
    ) -> bool {
        let Some(spec) = self.spec else { return false };
        if self.error.is_some() {
            return true;
        }
        if interactions.saturating_sub(self.last_saved) < spec.every.max(1) {
            return false;
        }
        match staged_snapshot(sim, params, n, seed, stints, kind).write_atomic(&spec.path) {
            Ok(()) => {
                self.last_saved = interactions;
                false
            }
            Err(e) => {
                self.error = Some(e);
                true
            }
        }
    }

    fn into_result(self) -> Result<(), SimError> {
        self.error.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_run_counts_exactly_at_small_scale() {
        // Cross-over covered end to end: stages 1–2 batched, refinement
        // per-agent via the hybrid monitor, exact output.
        let n = 3_000usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::dense_at_scale(n),
            n,
            11,
            Engine::Batched,
            u64::MAX >> 1,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.output, Some(n as u64));
        assert!(outcome.dense_interactions > 0);
        assert!(
            outcome.agent_interactions > 0,
            "the refinement transient must trigger the per-agent migration"
        );
        assert_eq!(
            outcome.dense_interactions + outcome.agent_interactions,
            outcome.interactions
        );
        assert!(!outcome.switch_interactions.is_empty());
        assert!(outcome.states_discovered > 100);
    }

    #[test]
    fn sequential_resolution_skips_the_hand_off() {
        let n = 500usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::default(),
            n,
            7,
            Engine::Auto, // resolves to Sequential below the crossover
            u64::MAX >> 1,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.output, Some(n as u64));
        assert_eq!(outcome.dense_interactions, 0);
        assert_eq!(outcome.agent_interactions, outcome.interactions);
        assert!(outcome.switch_interactions.is_empty());
    }

    fn scratch_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ppsim-staged-{tag}-{}.ppss", std::process::id()))
    }

    /// The CI smoke scenario in miniature: cap the budget (the "kill"),
    /// resume from the autosave, and compare every trajectory-determined
    /// field against an uninterrupted run.
    #[test]
    fn killed_run_resumes_to_the_uninterrupted_trajectory() {
        let n = 3_000usize;
        let params = CountExactParams::dense_at_scale(n);
        let budget = u64::MAX >> 1;
        let reference = count_exact_dense_staged(params, n, 21, Engine::Batched, budget).unwrap();
        assert!(reference.converged);
        assert_eq!(reference.output, Some(n as u64));

        // The victim autosaves at every probe boundary and dies (budget
        // exhaustion stands in for SIGKILL — same observable: the process
        // stops, only the snapshot file survives) somewhere mid-run.
        let path = scratch_path("kill-resume");
        let check_every = (n as u64) * 20;
        let spec = StagedCheckpoint {
            path: path.clone(),
            every: 1,
        };
        let killed = count_exact_dense_staged_checkpointed(
            params,
            n,
            21,
            Engine::Batched,
            check_every * 7,
            StintMode::Decoded,
            Some(&spec),
            None,
        )
        .unwrap();
        assert!(!killed.converged, "the kill must land mid-run");

        let resumed = count_exact_dense_staged_checkpointed(
            params,
            n,
            21,
            Engine::Batched,
            budget,
            StintMode::Decoded,
            None,
            Some(&path),
        )
        .unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(resumed.interactions, reference.interactions);
        assert_eq!(resumed.dense_interactions, reference.dense_interactions);
        assert_eq!(resumed.agent_interactions, reference.agent_interactions);
        assert_eq!(resumed.switch_interactions, reference.switch_interactions);
        assert_eq!(resumed.output, reference.output);
        assert_eq!(resumed.converged, reference.converged);
    }

    #[test]
    fn sequential_resolution_is_checkpointable_too() {
        let n = 400usize;
        let params = CountExactParams::default();
        let budget = u64::MAX >> 1;
        let reference = count_exact_dense_staged(params, n, 5, Engine::Auto, budget).unwrap();
        assert!(reference.converged);

        let path = scratch_path("sequential");
        let spec = StagedCheckpoint {
            path: path.clone(),
            every: 1,
        };
        let killed = count_exact_dense_staged_checkpointed(
            params,
            n,
            5,
            Engine::Auto,
            (n as u64) * 20 * 3,
            StintMode::Decoded,
            Some(&spec),
            None,
        )
        .unwrap();
        assert!(!killed.converged);
        let resumed = count_exact_dense_staged_checkpointed(
            params,
            n,
            5,
            Engine::Auto,
            budget,
            StintMode::Decoded,
            None,
            Some(&path),
        )
        .unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(resumed.interactions, reference.interactions);
        assert_eq!(resumed.output, reference.output);
    }

    #[test]
    fn resume_validates_parameters_and_engine_resolution() {
        let n = 2_000usize;
        let params = CountExactParams::dense_at_scale(n);
        let path = scratch_path("validate");
        let spec = StagedCheckpoint {
            path: path.clone(),
            every: 1,
        };
        // Only the snapshot written as a side effect matters here.
        let _ = count_exact_dense_staged_checkpointed(
            params,
            n,
            9,
            Engine::Batched,
            (n as u64) * 20 * 2,
            StintMode::Decoded,
            Some(&spec),
            None,
        )
        .unwrap();

        // Different seed: the snapshot is for another trajectory.
        let err = count_exact_dense_staged_checkpointed(
            params,
            n,
            10,
            Engine::Batched,
            u64::MAX >> 1,
            StintMode::Decoded,
            None,
            Some(&path),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::SnapshotMismatch { .. }), "{err}");

        // Different stint mode: the per-agent legs would step differently.
        let err = count_exact_dense_staged_checkpointed(
            params,
            n,
            9,
            Engine::Batched,
            u64::MAX >> 1,
            StintMode::Interned,
            None,
            Some(&path),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::SnapshotMismatch { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hidden() {
        let n = 5_000usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::dense_at_scale(n),
            n,
            3,
            Engine::Batched,
            10_000, // far too small
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.output, None);
        assert_eq!(
            outcome.interactions, 10_000,
            "an exhausted run reports the interactions actually executed"
        );
        assert_eq!(
            outcome.dense_interactions + outcome.agent_interactions,
            outcome.interactions
        );
    }
}
