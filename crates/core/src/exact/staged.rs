//! Staged execution of `CountExact` at population scale, as a thin wrapper
//! over the hybrid engine.
//!
//! Theorem 2 trades states for time, and the state count is precisely the
//! complexity parameter of the count-based engines.  Measured at `n = 10⁶`
//! (`dense_at_scale` parameters):
//!
//! * **Stages 1–2** (fast leader election + approximation — the `O(n log n)`
//!   bulk, ≈ `1.6·10¹⁰` interactions) stay *narrow*: ≈ 7·10⁴ distinct states
//!   over the whole window, a few dozen occupied at a time.  The batched
//!   engine executes them an order of magnitude faster than the per-agent
//!   engine could.
//! * **Stage 3** (refinement, ≈ `3.4·10⁸` interactions) is *wide* by design:
//!   Lemma 11 needs per-agent loads of magnitude `C·2^{2k}/n ≈ 4n`, so the
//!   balancing transient scatters the population over `Θ(n)` distinct loads
//!   — nearly every interaction mints two new states (> 4·10⁶ observed
//!   before the transient ends), occupancy approaches the population size,
//!   and *any* count-based representation degenerates below per-agent
//!   speed.
//!
//! Earlier revisions implemented the hand-off by hand: run the dense engine
//! until every agent had concluded the approximation stage, then copy the
//! configuration into the per-agent engine — a one-shot, protocol-specific
//! switch that lived in this file.  That mechanism is now the general
//! [`HybridSimulator`]: its occupancy monitor detects the refinement
//! transient by its `q_occ² > c·√n` signature (no knowledge of `ApxDone`
//! required), performs the same Markov-in-configuration migration, and can
//! even migrate *back* once the balancing transient collapses the census
//! again.  [`count_exact_dense_staged`] just parameterises that engine for
//! `CountExact` and reports the phase accounting.
//!
//! The hand-off is **exact** either way: the population process is Markov in
//! the *configuration* (the multiset of states), which is transferred
//! verbatim; only the schedule's randomness source changes, exactly as it
//! does between the batched and sequential engines in the equivalence suite.

use ppsim::{Engine, HybridConfig, HybridSimulator, HybridSubstrate, SimError, Simulator};

use crate::params::CountExactParams;

use super::count_exact::{CountExact, DenseCountExact};

/// Outcome of a staged (hybrid) dense `CountExact` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedCountOutcome {
    /// Total interactions executed across the run.
    pub interactions: u64,
    /// Interactions executed on the count-based substrate.
    pub dense_interactions: u64,
    /// Interactions executed on the per-agent engine.  Always
    /// `interactions - dense_interactions`: the phase counters partition the
    /// total exactly (no interaction is counted in both phases at a switch).
    pub agent_interactions: u64,
    /// Total-interaction counts at which the hybrid engine migrated between
    /// representations (the measured switch points; empty when the run never
    /// left the dense substrate or ran entirely per-agent).
    pub switch_interactions: Vec<u64>,
    /// Distinct dense states the run interned (0 when the whole run stayed
    /// on the per-agent engine with struct states).
    pub states_discovered: usize,
    /// The unanimous output, if the run converged (`Some(n)` when correct).
    pub output: Option<u64>,
    /// Whether a unanimous output was reached within the budget.
    pub converged: bool,
}

/// Run `CountExact` to a unanimous output at population scale on the hybrid
/// engine: the count-based substrate while the configuration stays narrow
/// (stages 1–2), per-agent execution while the refinement's `Θ(n)` live
/// loads keep it degenerate, automatic migration in between (see the module
/// docs for why the switch happens at the refinement transient).
///
/// `engine` selects the dense substrate: [`Engine::Batched`] and
/// [`Engine::Hybrid`] run it batched, [`Engine::Sharded`] sharded.  If
/// `engine` resolves to [`Engine::Sequential`] (small populations under
/// [`Engine::Auto`]), the whole run stays per-agent on struct states and no
/// hand-off machinery is involved.  `budget` caps the *total* interactions.
///
/// # Errors
///
/// Propagates the engine constructors' errors
/// ([`SimError::PopulationTooSmall`], [`SimError::InvalidParameter`]).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::exact::staged::count_exact_dense_staged;
/// use popcount::CountExactParams;
/// use ppsim::Engine;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1_000_000;
/// let outcome = count_exact_dense_staged(
///     CountExactParams::dense_at_scale(n),
///     n,
///     42,
///     Engine::Batched,
///     u64::MAX >> 1,
/// )?;
/// assert!(outcome.converged);
/// assert_eq!(outcome.output, Some(n as u64));
/// assert!(!outcome.switch_interactions.is_empty(), "the refinement forces a hand-off");
/// # Ok(())
/// # }
/// ```
pub fn count_exact_dense_staged(
    params: CountExactParams,
    n: usize,
    seed: u64,
    engine: Engine,
    budget: u64,
) -> Result<StagedCountOutcome, SimError> {
    let check_every = (n as u64).max(1) * 20;

    let substrate = match engine.resolve(n) {
        Engine::Sequential => {
            // Small populations: the per-agent engine serves every stage.
            let mut sim = Simulator::new(CountExact::new(params), n, seed)?;
            let outcome = sim.run_until(
                |s| s.output_stats().unanimous().is_some_and(|o| o.is_some()),
                check_every,
                budget,
            );
            let output = sim.output_stats().unanimous().cloned().flatten();
            return Ok(StagedCountOutcome {
                interactions: sim.interactions(),
                dense_interactions: 0,
                agent_interactions: sim.interactions(),
                switch_interactions: Vec::new(),
                states_discovered: 0,
                output,
                converged: outcome.converged(),
            });
        }
        Engine::Sharded { shards, threads } => HybridSubstrate::Sharded { shards, threads },
        Engine::Batched | Engine::Hybrid => HybridSubstrate::Batched,
        Engine::Auto => unreachable!("resolve() never returns Auto"),
    };

    // The hybrid engine keeps interning through its per-agent phase, so the
    // index space must hold the refinement's Θ(n) load values.
    let proto = DenseCountExact::with_capacity(params, CountExactParams::dense_capacity(n));
    let handle = proto.clone(); // shares the interner: state census + decode
    let mut sim = HybridSimulator::with_config(
        proto,
        n,
        seed,
        HybridConfig {
            substrate,
            ..HybridConfig::default()
        },
    )?;
    let outcome = sim.run_until(
        |s| s.output_stats().unanimous().is_some_and(|o| o.is_some()),
        check_every,
        budget,
    );
    let output = sim.output_stats().unanimous().cloned().flatten();
    debug_assert_eq!(
        sim.dense_interactions() + sim.agent_interactions(),
        sim.interactions(),
        "phase counters must partition the total exactly"
    );
    Ok(StagedCountOutcome {
        interactions: sim.interactions(),
        dense_interactions: sim.dense_interactions(),
        agent_interactions: sim.agent_interactions(),
        switch_interactions: sim.switches().iter().map(|e| e.interactions).collect(),
        states_discovered: handle.states_discovered(),
        output,
        converged: outcome.converged(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_run_counts_exactly_at_small_scale() {
        // Cross-over covered end to end: stages 1–2 batched, refinement
        // per-agent via the hybrid monitor, exact output.
        let n = 3_000usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::dense_at_scale(n),
            n,
            11,
            Engine::Batched,
            u64::MAX >> 1,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.output, Some(n as u64));
        assert!(outcome.dense_interactions > 0);
        assert!(
            outcome.agent_interactions > 0,
            "the refinement transient must trigger the per-agent migration"
        );
        assert_eq!(
            outcome.dense_interactions + outcome.agent_interactions,
            outcome.interactions
        );
        assert!(!outcome.switch_interactions.is_empty());
        assert!(outcome.states_discovered > 100);
    }

    #[test]
    fn sequential_resolution_skips_the_hand_off() {
        let n = 500usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::default(),
            n,
            7,
            Engine::Auto, // resolves to Sequential below the crossover
            u64::MAX >> 1,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.output, Some(n as u64));
        assert_eq!(outcome.dense_interactions, 0);
        assert_eq!(outcome.agent_interactions, outcome.interactions);
        assert!(outcome.switch_interactions.is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hidden() {
        let n = 5_000usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::dense_at_scale(n),
            n,
            3,
            Engine::Batched,
            10_000, // far too small
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.output, None);
        assert_eq!(
            outcome.interactions, 10_000,
            "an exhausted run reports the interactions actually executed"
        );
        assert_eq!(
            outcome.dense_interactions + outcome.agent_interactions,
            outcome.interactions
        );
    }
}
