//! Staged execution of `CountExact` at population scale: dense engines for
//! stages 1–2, the per-agent engine for stage 3.
//!
//! Theorem 2 trades states for time, and the state count is precisely the
//! complexity parameter of the count-based engines.  Measured at `n = 10⁶`
//! (`dense_at_scale` parameters):
//!
//! * **Stages 1–2** (fast leader election + approximation — the `O(n log n)`
//!   bulk, ≈ `1.6·10¹⁰` interactions) stay *narrow*: ≈ 7·10⁴ distinct states
//!   over the whole window, a few dozen occupied at a time.  The batched
//!   engine executes them an order of magnitude faster than the per-agent
//!   engine could (the whole window is ~15 minutes of single-core
//!   wall-clock; per-agent it would be ~an hour of pure stage-1–2 work).
//! * **Stage 3** (refinement, ≈ `3.4·10⁸` interactions) is *wide* by design:
//!   Lemma 11 needs per-agent loads of magnitude `C·2^{2k}/n ≈ 4n`, so the
//!   balancing transient scatters the population over `Θ(n)` distinct loads
//!   — nearly every interaction mints two new states (> 4·10⁶ observed
//!   before the transient ends), occupancy approaches the population size,
//!   and *any* count-based representation degenerates below per-agent
//!   speed.
//!
//! [`count_exact_dense_staged`] therefore runs the dense engine until every
//! agent has concluded the approximation stage (`ApxDone` everywhere) and
//! hands the configuration to the sequential engine for the refinement.
//! The hand-off is **exact**: the population process is Markov in the
//! *configuration* (the multiset of states), which is transferred verbatim;
//! only the schedule's randomness source changes, exactly as it does between
//! the batched and sequential engines in the equivalence suite.

use ppsim::{derive_seed, DenseSimulator, Engine, SimError, Simulator};

use crate::params::CountExactParams;

use super::count_exact::{CountExact, CountExactAgent, DenseCountExact};

/// Outcome of a staged dense `CountExact` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedCountOutcome {
    /// Total interactions executed across both stages of the run.
    pub interactions: u64,
    /// Interactions executed on the dense engine (stages 1–2).
    pub dense_interactions: u64,
    /// Distinct dense states the stage-1–2 window interned.
    pub states_discovered: usize,
    /// The unanimous output, if the run converged (`Some(n)` when correct).
    pub output: Option<u64>,
    /// Whether a unanimous output was reached within the budget.
    pub converged: bool,
}

/// Run `CountExact` to a unanimous output at population scale: stages 1–2 on
/// the dense engine selected by `engine`, stage 3 on the per-agent engine
/// (see the module docs for why the hand-off point is `ApxDone`).
///
/// `budget` caps the *total* interactions across both stages.  If `engine`
/// resolves to [`Engine::Sequential`], the whole run stays per-agent and no
/// hand-off happens.
///
/// # Errors
///
/// Propagates the engine constructors' errors
/// ([`SimError::PopulationTooSmall`], [`SimError::InvalidParameter`]).
///
/// # Examples
///
/// ```rust,no_run
/// use popcount::exact::staged::count_exact_dense_staged;
/// use popcount::CountExactParams;
/// use ppsim::Engine;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 1_000_000;
/// let outcome = count_exact_dense_staged(
///     CountExactParams::dense_at_scale(n),
///     n,
///     42,
///     Engine::Batched,
///     u64::MAX >> 1,
/// )?;
/// assert!(outcome.converged);
/// assert_eq!(outcome.output, Some(n as u64));
/// # Ok(())
/// # }
/// ```
pub fn count_exact_dense_staged(
    params: CountExactParams,
    n: usize,
    seed: u64,
    engine: Engine,
    budget: u64,
) -> Result<StagedCountOutcome, SimError> {
    let check_every = (n as u64).max(1) * 20;

    if engine.resolve(n) == Engine::Sequential {
        // Small populations: the per-agent engine serves every stage.
        let mut sim = Simulator::new(CountExact::new(params), n, seed)?;
        let outcome = sim.run_until(
            |s| s.output_stats().unanimous().is_some_and(|o| o.is_some()),
            check_every,
            budget,
        );
        let output = sim.output_stats().unanimous().cloned().flatten();
        return Ok(StagedCountOutcome {
            interactions: sim.interactions(),
            dense_interactions: 0,
            states_discovered: 0,
            output,
            converged: outcome.converged(),
        });
    }

    // Stages 1–2 on the dense engine, until every agent has ApxDone.
    let proto = DenseCountExact::new(params);
    let handle = proto.clone(); // shares the interner: state census + decode
    let mut dense = DenseSimulator::new(engine, proto, n, seed)?;
    let all_apx_done = |counts: &[u64]| {
        counts
            .iter()
            .enumerate()
            .all(|(s, &c)| c == 0 || handle.decode(s).stage.apx_done)
    };
    let stage12 = dense.run_until(
        |s| match s {
            // Borrowed counts on the count-based engines: no per-check clone.
            DenseSimulator::Batched(b) => all_apx_done(b.counts()),
            DenseSimulator::Sharded(sh) => all_apx_done(sh.counts()),
            DenseSimulator::Sequential(seq) => seq
                .states()
                .iter()
                .all(|&idx| handle.decode(idx as usize).stage.apx_done),
        },
        check_every,
        budget,
    );
    let dense_interactions = dense.interactions();
    if !stage12.converged() {
        return Ok(StagedCountOutcome {
            interactions: dense_interactions,
            dense_interactions,
            states_discovered: handle.states_discovered(),
            output: None,
            converged: false,
        });
    }

    // Hand-off: transfer the configuration (the multiset of states — the
    // process is Markov in it) to the per-agent engine for the refinement.
    let mut seq = Simulator::new(CountExact::new(params), n, derive_seed(seed, 0x57A6))?;
    {
        let states = seq.states_mut();
        let mut slot = 0usize;
        for (s, &c) in dense.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let agent: CountExactAgent = handle.decode(s);
            for _ in 0..c {
                states[slot] = agent;
                slot += 1;
            }
        }
        debug_assert_eq!(slot, n, "the configuration must cover the population");
    }
    let outcome = seq.run_until(
        |s| s.output_stats().unanimous().is_some_and(|o| o.is_some()),
        check_every,
        budget.saturating_sub(dense_interactions),
    );
    let output = seq.output_stats().unanimous().cloned().flatten();
    Ok(StagedCountOutcome {
        interactions: dense_interactions + seq.interactions(),
        dense_interactions,
        states_discovered: handle.states_discovered(),
        output,
        converged: outcome.converged(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_run_counts_exactly_at_small_scale() {
        // Cross-over covered end to end: stages 1–2 batched, refinement
        // per-agent, exact output.
        let n = 3_000usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::dense_at_scale(n),
            n,
            11,
            Engine::Batched,
            u64::MAX >> 1,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.output, Some(n as u64));
        assert!(outcome.dense_interactions > 0);
        assert!(outcome.interactions > outcome.dense_interactions);
        assert!(outcome.states_discovered > 100);
    }

    #[test]
    fn sequential_resolution_skips_the_hand_off() {
        let n = 500usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::default(),
            n,
            7,
            Engine::Auto, // resolves to Sequential below the crossover
            u64::MAX >> 1,
        )
        .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.output, Some(n as u64));
        assert_eq!(outcome.dense_interactions, 0);
    }

    #[test]
    fn budget_exhaustion_is_reported_not_hidden() {
        let n = 5_000usize;
        let outcome = count_exact_dense_staged(
            CountExactParams::dense_at_scale(n),
            n,
            3,
            Engine::Batched,
            10_000, // far too small
        )
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.output, None);
    }
}
