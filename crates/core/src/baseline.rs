//! The simple uniform baseline counter described in the introduction of the paper.
//!
//! > *"There is a simple and uniform protocol for exact population counting, which
//! > completes in expected `Θ(n²)` interactions and uses `Θ(n²)` states: the agents
//! > start with one token each and keep combining the tokens into bags, propagating
//! > at the same time the maximum size of a bag and using that maximum as their
//! > current output."*
//!
//! This protocol is the natural comparison point for `CountExact`: it needs no
//! leader, no clock and no junta, but pays with quadratically many interactions and
//! a state space of size `Θ(n²)` (bag size × best-seen maximum).  Experiment E13
//! reproduces the comparison.

use rand::rngs::SmallRng;

use ppsim::Protocol;

/// Per-agent state of the token-merging baseline: the agent's own bag of tokens and
/// the largest bag size it has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenMergingState {
    /// Number of tokens currently held by this agent.
    pub bag: u64,
    /// The largest bag size observed so far — the agent's output.
    pub best: u64,
}

impl TokenMergingState {
    /// The common initial state: one token, best = 1.
    #[must_use]
    pub fn new() -> Self {
        TokenMergingState { bag: 1, best: 1 }
    }
}

impl Default for TokenMergingState {
    fn default() -> Self {
        Self::new()
    }
}

/// The token-merging baseline counter.
///
/// Transition: if both agents hold non-empty bags, the initiator takes all tokens;
/// both agents then adopt the maximum bag size seen as their output.  Eventually a
/// single agent holds all `n` tokens and the maximum `n` spreads to everyone.
///
/// # Examples
///
/// ```rust
/// use popcount::TokenMergingCounter;
/// use ppsim::{Protocol, Simulator};
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 64;
/// let mut sim = Simulator::new(TokenMergingCounter::new(), n, 5)?;
/// let outcome = sim.run_until(
///     |s| s.states().iter().all(|a| a.best == n as u64),
///     64,
///     50_000_000,
/// );
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenMergingCounter;

impl TokenMergingCounter {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        TokenMergingCounter
    }
}

impl Protocol for TokenMergingCounter {
    type State = TokenMergingState;
    type Output = u64;

    fn initial_state(&self) -> TokenMergingState {
        TokenMergingState::new()
    }

    fn interact(
        &self,
        initiator: &mut TokenMergingState,
        responder: &mut TokenMergingState,
        _rng: &mut SmallRng,
    ) {
        if initiator.bag > 0 && responder.bag > 0 {
            initiator.bag += responder.bag;
            responder.bag = 0;
        }
        let best = initiator.best.max(responder.best).max(initiator.bag);
        initiator.best = best;
        responder.best = best;
    }

    fn output(&self, state: &TokenMergingState) -> u64 {
        state.best
    }

    fn name(&self) -> &'static str {
        "token-merging-baseline"
    }
}

/// Convergence predicate for a population of size `n`: all agents output `n`.
#[must_use]
pub fn all_output_n(states: &[TokenMergingState], n: usize) -> bool {
    states.iter().all(|s| s.best == n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{seeded_rng, Simulator};

    #[test]
    fn merging_moves_all_tokens_to_the_initiator() {
        let p = TokenMergingCounter::new();
        let mut rng = seeded_rng(0);
        let mut u = TokenMergingState { bag: 3, best: 3 };
        let mut v = TokenMergingState { bag: 5, best: 5 };
        p.interact(&mut u, &mut v, &mut rng);
        assert_eq!(u.bag, 8);
        assert_eq!(v.bag, 0);
        assert_eq!(u.best, 8);
        assert_eq!(v.best, 8);
    }

    #[test]
    fn empty_bags_only_exchange_the_maximum() {
        let p = TokenMergingCounter::new();
        let mut rng = seeded_rng(0);
        let mut u = TokenMergingState { bag: 0, best: 6 };
        let mut v = TokenMergingState { bag: 4, best: 4 };
        p.interact(&mut u, &mut v, &mut rng);
        assert_eq!(u.bag, 0);
        assert_eq!(v.bag, 4);
        assert_eq!(u.best, 6);
        assert_eq!(v.best, 6);
    }

    #[test]
    fn tokens_are_conserved_along_a_run() {
        let n = 150usize;
        let mut sim = Simulator::new(TokenMergingCounter::new(), n, 9).unwrap();
        for _ in 0..20 {
            sim.run(5_000);
            let total: u64 = sim.states().iter().map(|s| s.bag).sum();
            assert_eq!(total, n as u64);
            assert!(
                sim.states().iter().all(|s| s.best <= n as u64),
                "never overcounts"
            );
        }
    }

    #[test]
    fn baseline_counts_exactly() {
        let n = 120usize;
        let mut sim = Simulator::new(TokenMergingCounter::new(), n, 31).unwrap();
        let outcome = sim.run_until(
            move |s| all_output_n(s.states(), n),
            (n * n / 8) as u64,
            500_000_000,
        );
        assert!(outcome.converged(), "baseline did not converge");
        assert!(sim.outputs().iter().all(|&o| o == n as u64));
    }
}
