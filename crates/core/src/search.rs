//! The Search Protocol — Algorithm 1, the centrepiece of protocol `Approximate`
//! (Section 3.1 of the paper).
//!
//! A unique leader performs a linear search over `k ∈ {0, 1, 2, …}`: in round `k`
//! it injects `2^k` tokens into the system; the non-leader agents balance the load
//! with the powers-of-two process; if some agent ends up with more than one token
//! (`k_v > 0`), the injected load must have exceeded `3n/4` (Lemma 8) and the search
//! stops with `3n/4 < 2^{k_u} ≤ 2^{⌈log n⌉}` (Lemma 9), i.e.
//! `k_u ∈ {⌊log n⌋, ⌈log n⌉}`.
//!
//! Each round consists of five phases measured by the phase clock
//! (`phase mod 5`):
//!
//! | phase | active agents | action |
//! |---|---|---|
//! | 0 | non-leaders | reset the load to empty (`k = −1`) |
//! | 1 | leader | inject `2^{k_u}` tokens into its interaction partner |
//! | 2 | non-leaders | powers-of-two load balancing |
//! | 3 | non-leaders | one-way epidemics on the maximum `k` |
//! | 4 | leader | decide: continue with `k_u + 1` or set `searchDone` |

use ppproto::load_balancing::{po2_balance, EMPTY_LOAD};
use ppproto::max_broadcast;
use ppsim::{PersistState, SimError, SnapshotReader};

/// Number of phases in one round of the Search Protocol.
pub const PHASES_PER_ROUND: u32 = 5;

/// Per-agent state of the Search Protocol: `(k_v, searchDone_v)`.
///
/// For a non-leader agent, `k` is the logarithmic load of the powers-of-two
/// balancing process (`−1` = empty).  For the leader, `k` is the exponent of the
/// load injected in the current round and, once `done` is set, the estimate of
/// `log₂ n`.  After the broadcasting stage every agent's `k` holds the leader's
/// estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchState {
    /// Logarithmic load / search exponent (`k_v` in the paper, `−1` = empty).
    pub k: i32,
    /// Whether the search has concluded (`searchDone_v`).
    pub done: bool,
}

impl SearchState {
    /// The common initial state `(−1, false)`.
    #[must_use]
    pub fn new() -> Self {
        SearchState {
            k: EMPTY_LOAD,
            done: false,
        }
    }

    /// Re-initialise (used when an agent meets a higher junta level).
    pub fn reset(&mut self) {
        *self = SearchState::new();
    }
}

impl Default for SearchState {
    fn default() -> Self {
        Self::new()
    }
}

/// Context of one Search Protocol interaction, derived from the surrounding
/// synchronisation and leader-election components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchContext {
    /// Whether the initiator is the leader.
    pub u_leader: bool,
    /// Whether the responder is the leader.
    pub v_leader: bool,
    /// The initiator's current phase number (absolute; reduced mod 5 internally).
    pub u_phase: u32,
    /// The responder's current phase number.
    pub v_phase: u32,
    /// The initiator's consumed `firstTick` flag.
    pub u_first_tick: bool,
}

/// Apply one interaction of the Search Protocol (Algorithm 1).
///
/// `u` is the initiator and `v` the responder; `ctx` carries the phase and
/// leadership information maintained by the composed protocol.
pub fn search_interact(u: &mut SearchState, v: &mut SearchState, ctx: &SearchContext) {
    let u_phase = ctx.u_phase % PHASES_PER_ROUND;
    let v_phase = ctx.v_phase % PHASES_PER_ROUND;

    if ctx.u_leader && !u.done {
        // Leader actions (Algorithm 1, lines 1–8).
        if u_phase == 1 && ctx.u_first_tick && !ctx.v_leader {
            // Phase 1: load infusion — transfer 2^{k_u} tokens to the partner.
            v.k = u.k;
        }
        if u_phase == 4 && ctx.u_first_tick && !ctx.v_leader {
            // Phase 4: decision.
            if v.k <= 0 {
                u.k += 1;
            } else {
                u.done = true;
            }
        }
    }

    if !ctx.u_leader && !ctx.v_leader && !u.done && !v.done {
        // Follower actions (Algorithm 1, lines 9–16).  An agent whose `searchDone`
        // flag is already set holds the leader's final estimate in `k`, not a load,
        // so it no longer takes part in resets, balancing or epidemics.
        if u_phase == 0 {
            // Phase 0: initialise.  The paper resets the initiator; resetting each
            // agent when *it* is in phase 0 is the same rule applied from both
            // roles and removes the dependence on who initiates first.
            u.k = EMPTY_LOAD;
        }
        if v_phase == 0 {
            v.k = EMPTY_LOAD;
        }
        if u_phase == 2 {
            // Phase 2: powers-of-two load balancing.
            po2_balance(&mut u.k, &mut v.k);
        }
        if u_phase == 3 {
            // Phase 3: one-way epidemics on the maximum logarithmic load.
            max_broadcast(&mut u.k, &mut v.k);
        }
    }
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for SearchState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.k.persist(out);
        self.done.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(SearchState {
            k: i32::unpersist(r)?,
            done: bool::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(u_leader: bool, v_leader: bool, phase: u32, first: bool) -> SearchContext {
        SearchContext {
            u_leader,
            v_leader,
            u_phase: phase,
            v_phase: phase,
            u_first_tick: first,
        }
    }

    #[test]
    fn initial_state_is_empty_and_not_done() {
        let s = SearchState::new();
        assert_eq!(s.k, EMPTY_LOAD);
        assert!(!s.done);
    }

    #[test]
    fn phase1_leader_injects_its_exponent_into_the_partner() {
        let mut leader = SearchState { k: 5, done: false };
        let mut follower = SearchState::new();
        search_interact(&mut leader, &mut follower, &ctx(true, false, 1, true));
        assert_eq!(follower.k, 5);
        assert_eq!(leader.k, 5, "the leader keeps its exponent");
    }

    #[test]
    fn phase1_without_first_tick_does_not_inject() {
        let mut leader = SearchState { k: 5, done: false };
        let mut follower = SearchState::new();
        search_interact(&mut leader, &mut follower, &ctx(true, false, 1, false));
        assert_eq!(follower.k, EMPTY_LOAD);
    }

    #[test]
    fn phase4_decision_continues_on_small_load() {
        let mut leader = SearchState { k: 3, done: false };
        let mut follower = SearchState { k: 0, done: false };
        search_interact(&mut leader, &mut follower, &ctx(true, false, 4, true));
        assert_eq!(leader.k, 4, "k_v ≤ 0 means the injected load was too small");
        assert!(!leader.done);
    }

    #[test]
    fn phase4_decision_stops_on_overload() {
        let mut leader = SearchState { k: 9, done: false };
        let mut follower = SearchState { k: 1, done: false };
        search_interact(&mut leader, &mut follower, &ctx(true, false, 4, true));
        assert_eq!(leader.k, 9);
        assert!(leader.done, "k_v > 0 concludes the search");
    }

    #[test]
    fn phase0_resets_followers_only() {
        let mut u = SearchState { k: 3, done: false };
        let mut v = SearchState { k: 2, done: false };
        search_interact(&mut u, &mut v, &ctx(false, false, 0, false));
        assert_eq!(u.k, EMPTY_LOAD);
        assert_eq!(v.k, EMPTY_LOAD);

        // A done agent (carrying the final estimate) is never reset.
        let mut w = SearchState { k: 9, done: true };
        let mut x = SearchState { k: 1, done: false };
        search_interact(&mut w, &mut x, &ctx(false, false, 0, false));
        assert_eq!(w.k, 9);
    }

    #[test]
    fn phase2_balances_and_phase3_broadcasts() {
        let mut u = SearchState { k: 4, done: false };
        let mut v = SearchState {
            k: EMPTY_LOAD,
            done: false,
        };
        search_interact(&mut u, &mut v, &ctx(false, false, 2, false));
        assert_eq!((u.k, v.k), (3, 3));

        let mut a = SearchState { k: 1, done: false };
        let mut b = SearchState { k: -1, done: false };
        search_interact(&mut a, &mut b, &ctx(false, false, 3, false));
        assert_eq!((a.k, b.k), (1, 1));
    }

    #[test]
    fn leader_is_excluded_from_balancing_and_epidemics() {
        // The leader's k is its search exponent, not a load: a follower interacting
        // with the leader in phases 2/3 must not mix the two.
        let mut follower = SearchState {
            k: EMPTY_LOAD,
            done: false,
        };
        let mut leader = SearchState { k: 7, done: false };
        search_interact(&mut follower, &mut leader, &ctx(false, true, 2, false));
        assert_eq!(follower.k, EMPTY_LOAD);
        assert_eq!(leader.k, 7);
        search_interact(&mut follower, &mut leader, &ctx(false, true, 3, false));
        assert_eq!(follower.k, EMPTY_LOAD);
    }
}
