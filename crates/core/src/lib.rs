//! # `popcount` — uniform population protocols for counting the population size
//!
//! This crate implements the protocols of *On Counting the Population Size*
//! (Berenbrink, Kaaser, Radzik — PODC 2019): uniform population protocols with
//! which `n` anonymous, randomly interacting agents learn how many of them there
//! are.
//!
//! | protocol | paper | output | interactions | states |
//! |---|---|---|---|---|
//! | [`Approximate`] | Algorithm 2, Theorem 1.1 | `⌊log₂ n⌋` or `⌈log₂ n⌉` w.h.p. | `O(n log² n)` | `O(log n · log log n)` |
//! | [`StableApproximate`] | Appendix B, Theorem 1.2/1.3 | `⌊log₂ n⌋` or `⌈log₂ n⌉`, correct with probability 1 | `O(n log² n)` | `O(log² n · log log n)` |
//! | [`CountExact`] | Algorithm 3, Theorem 2 | exactly `n` w.h.p. | `O(n log n)` | `Õ(n)` |
//! | [`StableCountExact`] | Appendix F | exactly `n`, correct with probability 1 | `O(n log n)` | `Õ(n)` |
//! | [`ApproximateBackup`] | Appendix C.1 | `⌊log₂ n⌋`, probability 1 | `O(n² log² n)` | `≤ (log n + 1)²` |
//! | [`ExactBackup`] | Appendix C.2 | exactly `n`, probability 1 | `O(n² log n)` | `O(n log n)` |
//! | [`TokenMergingCounter`] | Section 1 (baseline) | exactly `n`, probability 1 | `Θ(n²)` | `Θ(n²)` |
//!
//! [`DenseApproximate`], [`DenseCountExact`] and [`DenseApproximateBackup`]
//! are the same protocols on enumerated (dense) state spaces, for the
//! count-based engines — see *Dense encodings* below.
//!
//! All protocols are **uniform**: their transition functions do not depend on `n`.
//! They are executed on the probabilistic population model implemented by the
//! [`ppsim`] crate and are composed from the auxiliary protocols of the
//! [`ppproto`] crate (junta process, phase clocks, leader election, load
//! balancing).
//!
//! # Theorems 1 and 2, mapped to types
//!
//! Both headline protocols are instances of one composition pattern
//! (Algorithms 2 and 3, [`ppproto::composition`]):
//!
//! ```text
//!                      every interaction, all the time
//!          ┌────────────────────────────────────────────────────┐
//!          │ SyncState: junta process (Lemma 4) + junta-driven  │ lines 1–4 —
//!          │ phase clock (Lemma 5); meeting a higher junta      │ ppproto::
//!          │ level resets the clock AND the stages below        │ sync_interact
//!          └──────────────────────┬─────────────────────────────┘
//!                                 │ SyncCtx (phases, levels, junta bits, firstTick)
//!       Theorem 1 (Approximate)   │            Theorem 2 (CountExact)
//!   ┌─────────────────────────────▼──┐   ┌─────────────────────────────────┐
//!   │ Stage 1  LeaderElection        │   │ Stage 1  FastLeaderElection     │
//!   │          (Lemma 6, \[18\])       │   │          (Lemma 7, Appendix D)  │
//!   │ Stage 2  Search Protocol       │   │ Stage 2  approximation stage    │
//!   │          (Algorithm 1, Lemma 9)│   │          (Algorithm 4, Lemma 10)│
//!   │ Stage 3  one-way broadcast of  │   │ Stage 3  refinement stage       │
//!   │          the estimate          │   │          (Algorithm 5, Lemma 11)│
//!   └─────────────┬──────────────────┘   └──────────────┬──────────────────┘
//!   output: ⌊log₂ n⌋ or ⌈log₂ n⌉ w.h.p.      output: exactly n w.h.p.
//! ```
//!
//! Concretely: [`Approximate`] = `SyncComposition<`[`ApproximateComponent`]`>`
//! over per-agent state [`ApproximateAgent`] `= (SyncState, LeaderState,
//! SearchState)`; [`CountExact`] = `SyncComposition<`[`CountExactComponent`]`>`
//! over [`CountExactAgent`] `= (SyncState, FastLeaderState, ExactStageState)`.
//! The stable variants ([`StableApproximate`], [`StableCountExact`]) reuse the
//! same base and stages 1–2, swapping stage 3 for error detection
//! (Algorithms 6/7, Appendix F) with the Appendix C backups running alongside.
//!
//! # Dense encodings and their state-space accounting
//!
//! [`DenseApproximate`] and [`DenseCountExact`] run the **identical**
//! transition systems on the count-based engines
//! ([`ppsim::BatchedSimulator`], [`ppsim::ShardedBatchedSimulator`]) by
//! interning each `(sync, stages)` struct into a dense index on first
//! appearance ([`ppsim::StateInterner`]).  How the realised index space `q`
//! grows with `n` is exactly the paper's state-space story:
//!
//! * **`DenseApproximate`** — Theorem 1 bounds the protocol by
//!   `O(log n · log log n)` states per constant-size counter window; the
//!   implementation keeps the absolute phase counter (reduced modulo small
//!   constants where the paper does), so a run of `O(log n)` phases interns
//!   `O(log² n · log log n)` distinct states — `1.9·10⁵` over a full
//!   converged `n = 10⁶` execution (measured; experiment E19 tabulates the
//!   census per run).
//! * **`DenseCountExact`** — Theorem 2's `Õ(n)` state bound is real.  Dense
//!   runs at `n ≥ 10⁶` use [`CountExactParams::dense_at_scale`] (the paper's
//!   `γ = 8`: 1-bit election rounds, `O(log n)` live value classes, an
//!   election lengthened to `2(⌈log₂ n⌉ + 16)` phases to keep the
//!   unique-leader guarantee), which makes stages 1–2 — the `O(n log n)`
//!   bulk — batch at any size.  The refinement stage's `Θ(n)` live loads are
//!   irreducible, so at scale it runs per-agent:
//!   [`count_exact_dense_staged`] hands the configuration across engines
//!   exactly (see [`exact::staged`]).  The simpler
//!   [`DenseApproximateBackup`] (Appendix C.1) has a closed-form product
//!   encoding with `q = (K+2)(K+1)` — no interning needed.
//!
//! Equivalence of the dense and sequential forms is pinned by
//! `crates/core/tests/dense_equivalence.rs`: lockstep bisimulation at
//! `n = 10⁴` plus Kolmogorov–Smirnov and mean-ratio checks, the same pattern
//! the engine-equivalence suite uses.
//!
//! # Quick start
//!
//! ```rust,no_run
//! use popcount::{CountExact, CountExactParams};
//! use ppsim::Simulator;
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let n = 5_000;
//! let protocol = CountExact::new(CountExactParams::default());
//! let mut sim = Simulator::new(protocol, n, 42)?;
//! let outcome = sim.run_until(
//!     |s| {
//!         s.output_stats().unanimous().cloned().flatten() == Some(n as u64)
//!     },
//!     n as u64,
//!     2_000_000_000,
//! );
//! println!(
//!     "counted {n} agents after {} interactions",
//!     outcome.interactions().unwrap()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate;
pub mod approximate_stable;
pub mod backup;
pub mod baseline;
pub mod error_detection;
pub mod exact;
pub mod params;
pub mod search;

pub use approximate::{
    all_estimated, dense_all_estimated, valid_estimates, Approximate, ApproximateAgent,
    ApproximateComponent, ApproximateCore, DenseApproximate,
};
pub use approximate_stable::{all_estimates_valid, StableApproximate, StableApproximateAgent};
pub use backup::{
    approximate_backup_interact, approximate_backup_tokens, dense_approximate_backup_tokens,
    exact_backup_interact, exact_backup_tokens, ApproximateBackup, ApproximateBackupState,
    DenseApproximateBackup, ExactBackup, ExactBackupState,
};
pub use baseline::{all_output_n, TokenMergingCounter, TokenMergingState};
pub use error_detection::{ErrorDetectionContext, ErrorDetectionState};
pub use exact::approximation_stage::ExactStageState;
pub use exact::count_exact::{
    all_counted, CountExact, CountExactAgent, CountExactComponent, CountExactCore, DenseCountExact,
};
pub use exact::stable::{all_exact, StableCountExact, StableCountExactAgent};
pub use exact::staged::{
    count_exact_dense_staged, count_exact_dense_staged_checkpointed, count_exact_dense_staged_with,
    StagedCheckpoint, StagedCountOutcome, StintMode,
};
pub use params::{ApproximateParams, CountExactParams};
pub use search::{search_interact, SearchContext, SearchState};
