//! # `popcount` — uniform population protocols for counting the population size
//!
//! This crate implements the protocols of *On Counting the Population Size*
//! (Berenbrink, Kaaser, Radzik — PODC 2019): uniform population protocols with
//! which `n` anonymous, randomly interacting agents learn how many of them there
//! are.
//!
//! | protocol | paper | output | interactions | states |
//! |---|---|---|---|---|
//! | [`Approximate`] | Algorithm 2, Theorem 1.1 | `⌊log₂ n⌋` or `⌈log₂ n⌉` w.h.p. | `O(n log² n)` | `O(log n · log log n)` |
//! | [`StableApproximate`] | Appendix B, Theorem 1.2/1.3 | `⌊log₂ n⌋` or `⌈log₂ n⌉`, correct with probability 1 | `O(n log² n)` | `O(log² n · log log n)` |
//! | [`CountExact`] | Algorithm 3, Theorem 2 | exactly `n` w.h.p. | `O(n log n)` | `Õ(n)` |
//! | [`StableCountExact`] | Appendix F | exactly `n`, correct with probability 1 | `O(n log n)` | `Õ(n)` |
//! | [`ApproximateBackup`] | Appendix C.1 | `⌊log₂ n⌋`, probability 1 | `O(n² log² n)` | `≤ (log n + 1)²` |
//! | [`ExactBackup`] | Appendix C.2 | exactly `n`, probability 1 | `O(n² log n)` | `O(n log n)` |
//! | [`TokenMergingCounter`] | Section 1 (baseline) | exactly `n`, probability 1 | `Θ(n²)` | `Θ(n²)` |
//!
//! All protocols are **uniform**: their transition functions do not depend on `n`.
//! They are executed on the probabilistic population model implemented by the
//! [`ppsim`] crate and are composed from the auxiliary protocols of the
//! [`ppproto`] crate (junta process, phase clocks, leader election, load
//! balancing).
//!
//! # Quick start
//!
//! ```rust,no_run
//! use popcount::{CountExact, CountExactParams};
//! use ppsim::Simulator;
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let n = 5_000;
//! let protocol = CountExact::new(CountExactParams::default());
//! let mut sim = Simulator::new(protocol, n, 42)?;
//! let outcome = sim.run_until(
//!     |s| {
//!         s.output_stats().unanimous().cloned().flatten() == Some(n as u64)
//!     },
//!     n as u64,
//!     2_000_000_000,
//! );
//! println!(
//!     "counted {n} agents after {} interactions",
//!     outcome.interactions().unwrap()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate;
pub mod approximate_stable;
pub mod backup;
pub mod baseline;
pub mod error_detection;
pub mod exact;
pub mod params;
pub mod search;

pub use approximate::{all_estimated, valid_estimates, Approximate, ApproximateAgent};
pub use approximate_stable::{all_estimates_valid, StableApproximate, StableApproximateAgent};
pub use backup::{
    approximate_backup_interact, approximate_backup_tokens, dense_approximate_backup_tokens,
    exact_backup_interact, exact_backup_tokens, ApproximateBackup, ApproximateBackupState,
    DenseApproximateBackup, ExactBackup, ExactBackupState,
};
pub use baseline::{all_output_n, TokenMergingCounter, TokenMergingState};
pub use error_detection::{ErrorDetectionContext, ErrorDetectionState};
pub use exact::approximation_stage::ExactStageState;
pub use exact::count_exact::{all_counted, CountExact, CountExactAgent};
pub use exact::stable::{all_exact, StableCountExact, StableCountExactAgent};
pub use params::{ApproximateParams, CountExactParams};
pub use search::{search_interact, SearchContext, SearchState};
