//! The error-detection stage of the stable `Approximate` protocol — Algorithm 7,
//! Appendix B of the paper.
//!
//! After the Search Protocol has concluded, the leader validates its estimate `k`
//! by re-running a load-balancing experiment with `2^{k−2}` tokens and `32` units of
//! secondary load per token:
//!
//! | phase′ | action |
//! |---|---|
//! | 0 | the leader injects `2^{k−2}` tokens (powers-of-two representation) |
//! | 1 | powers-of-two load balancing on the `k` values |
//! | 2 | every agent converts its token (if any) into 32 units of secondary load; an agent left with more than one token raises the error flag |
//! | 3 | classical load balancing on the secondary load |
//! | 4 | the leader recomputes `k ← ⌊k + 3 − log₂ ℓ⌉`; every agent checks `ℓ ≥ 3` and that the remaining discrepancy is at most 2, raising the error flag otherwise; the result spreads by maximum broadcast and the stage stops |
//!
//! If the estimate produced by the Search Protocol was too small, some agent ends up
//! with fewer than 3 units of load; if it was too large, the powers-of-two balancing
//! cannot complete and some agent keeps more than one token — either way the error
//! flag is raised, spreads by one-way epidemics, and every agent switches its output
//! to the always-correct backup protocol (Appendix C.1).

use ppproto::load_balancing::{po2_balance, split_evenly, EMPTY_LOAD};

use crate::search::SearchState;

/// Number of phases of the error-detection stage.
pub const ERROR_DETECTION_PHASES: u32 = 5;

/// Secondary load assigned per token in phase′ 2 (the paper's constant 32).
pub const SECONDARY_LOAD: u64 = 32;

/// Per-agent bookkeeping of the error-detection stage (in addition to the Search
/// Protocol state whose `k` field it reuses, exactly as Algorithm 7 does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ErrorDetectionState {
    /// Whether this agent has entered the error-detection stage.
    pub entered: bool,
    /// The phase in which the stage was entered (adopted from the leader so that
    /// all agents agree on the relative phase′ numbering).
    pub start_phase: u32,
    /// Secondary load `ℓ_v ∈ {0, …, 32·…}` used in phases′ 2–4.
    pub l: u64,
    /// Error flag raised by any of the checks.
    pub error: bool,
}

impl ErrorDetectionState {
    /// The initial state (stage not yet entered).
    #[must_use]
    pub fn new() -> Self {
        ErrorDetectionState::default()
    }

    /// Relative phase′ of this agent, capped at 4 ("the phase clock stops").
    #[must_use]
    pub fn relative_phase(&self, clock_phase: u32) -> u32 {
        clock_phase
            .saturating_sub(self.start_phase + 1)
            .min(ERROR_DETECTION_PHASES - 1)
    }
}

/// Context of one error-detection interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorDetectionContext {
    /// Whether the initiator is the leader.
    pub u_leader: bool,
    /// Whether the responder is the leader.
    pub v_leader: bool,
    /// The initiator's pending `firstTick` flag.
    pub u_first_tick: bool,
    /// The initiator's current phase number.
    pub u_phase: u32,
    /// The responder's current phase number.
    pub v_phase: u32,
}

/// Apply one interaction of the error-detection stage (Algorithm 7).
///
/// `u_search`/`v_search` are the Search Protocol states (whose `k` and `done`
/// fields the stage reuses); `u_ed`/`v_ed` the additional error-detection state.
/// The initiator must already have entered the stage.
pub fn error_detection_interact(
    u_search: &mut SearchState,
    u_ed: &mut ErrorDetectionState,
    v_search: &mut SearchState,
    v_ed: &mut ErrorDetectionState,
    ctx: &ErrorDetectionContext,
) {
    debug_assert!(u_ed.entered);

    // Algorithm 7, lines 1–2: a partner that has not yet entered the stage is
    // initialised with an empty token load and joins the relative phase numbering.
    if !v_ed.entered {
        v_search.k = EMPTY_LOAD;
        v_search.done = true;
        v_ed.entered = true;
        v_ed.start_phase = u_ed.start_phase;
        v_ed.l = 0;
        return;
    }

    let u_rel = u_ed.relative_phase(ctx.u_phase);
    let v_rel = v_ed.relative_phase(ctx.v_phase);

    // Synchronisation check (Appendix B): interacting agents whose relative phases
    // have drifted apart signal an error.  The paper compares for exact equality;
    // a slack of one phase is allowed here because adjacent agents routinely differ
    // by one during a phase boundary even when the clock works perfectly.
    if u_rel.abs_diff(v_rel) > 1 {
        u_ed.error = true;
        v_ed.error = true;
    }

    match u_rel {
        0 => {
            // Phase′ 0: load infusion by the leader.
            if ctx.u_first_tick && ctx.u_leader && !ctx.v_leader {
                v_search.k = u_search.k - 2;
            }
        }
        1 => {
            // Phase′ 1: powers-of-two load balancing among non-leaders.
            if !ctx.u_leader && !ctx.v_leader && u_rel == v_rel {
                po2_balance(&mut u_search.k, &mut v_search.k);
            }
        }
        2 => {
            // Phase′ 2: convert tokens into secondary load.
            if ctx.u_first_tick {
                if u_search.k == EMPTY_LOAD || ctx.u_leader {
                    u_ed.l = 0;
                } else if u_search.k == 0 {
                    u_ed.l = SECONDARY_LOAD;
                } else {
                    // More than one token left: the injected load exceeded n, so the
                    // estimate was too large (or balancing failed).
                    u_ed.error = true;
                }
            }
        }
        3 => {
            // Phase′ 3: classical load balancing on the secondary load.
            if u_rel == v_rel {
                split_evenly(&mut u_ed.l, &mut v_ed.l);
            }
        }
        _ => {
            // Phase′ 4: recompute the estimate, validate, broadcast, stop.
            if ctx.u_leader && ctx.u_first_tick {
                let l = u_ed.l.max(1) as f64;
                u_search.k = (u_search.k as f64 + 3.0 - l.log2()).round() as i32;
            }
            if v_rel == u_rel {
                if u_ed.l < 3 || u_ed.l.abs_diff(v_ed.l) > 2 {
                    u_ed.error = true;
                    v_ed.error = true;
                }
                // Broadcast the leader's validated result.
                let k = u_search.k.max(v_search.k);
                u_search.k = k;
                v_search.k = k;
            }
        }
    }

    // The error flag always spreads by one-way epidemics.
    if u_ed.error || v_ed.error {
        u_ed.error = true;
        v_ed.error = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entered(start: u32) -> ErrorDetectionState {
        ErrorDetectionState {
            entered: true,
            start_phase: start,
            l: 0,
            error: false,
        }
    }

    fn ctx(u_leader: bool, first: bool, u_phase: u32, v_phase: u32) -> ErrorDetectionContext {
        ErrorDetectionContext {
            u_leader,
            v_leader: false,
            u_first_tick: first,
            u_phase,
            v_phase,
        }
    }

    #[test]
    fn relative_phase_is_capped_at_four() {
        let ed = entered(10);
        assert_eq!(ed.relative_phase(10), 0);
        assert_eq!(ed.relative_phase(11), 0);
        assert_eq!(ed.relative_phase(13), 2);
        assert_eq!(ed.relative_phase(100), 4);
    }

    #[test]
    fn new_agents_are_initialised_into_the_stage() {
        let mut us = SearchState { k: 9, done: true };
        let mut ue = entered(10);
        let mut vs = SearchState { k: 0, done: false };
        let mut ve = ErrorDetectionState::new();
        error_detection_interact(
            &mut us,
            &mut ue,
            &mut vs,
            &mut ve,
            &ctx(true, false, 11, 11),
        );
        assert!(ve.entered);
        assert!(vs.done);
        assert_eq!(vs.k, EMPTY_LOAD);
        assert_eq!(ve.start_phase, 10);
    }

    #[test]
    fn phase0_leader_infuses_k_minus_two() {
        let mut us = SearchState { k: 9, done: true };
        let mut ue = entered(10);
        let mut vs = SearchState {
            k: EMPTY_LOAD,
            done: true,
        };
        let mut ve = entered(10);
        error_detection_interact(&mut us, &mut ue, &mut vs, &mut ve, &ctx(true, true, 11, 11));
        assert_eq!(vs.k, 7);
        assert_eq!(us.k, 9);
    }

    #[test]
    fn phase2_converts_tokens_and_detects_oversized_loads() {
        // An agent holding exactly one token gets 32 units of secondary load.
        let mut us = SearchState { k: 0, done: true };
        let mut ue = entered(10);
        let mut vs = SearchState {
            k: EMPTY_LOAD,
            done: true,
        };
        let mut ve = entered(10);
        error_detection_interact(
            &mut us,
            &mut ue,
            &mut vs,
            &mut ve,
            &ctx(false, true, 13, 13),
        );
        assert_eq!(ue.l, SECONDARY_LOAD);
        assert!(!ue.error);

        // An agent still holding more than one token raises the error flag.
        let mut ws = SearchState { k: 2, done: true };
        let mut we = entered(10);
        let mut xs = SearchState {
            k: EMPTY_LOAD,
            done: true,
        };
        let mut xe = entered(10);
        error_detection_interact(
            &mut ws,
            &mut we,
            &mut xs,
            &mut xe,
            &ctx(false, true, 13, 13),
        );
        assert!(we.error);
        assert!(xe.error, "the error spreads to the partner immediately");
    }

    #[test]
    fn phase4_detects_underloaded_agents_and_broadcasts_the_result() {
        // Underloaded agent: error.
        let mut us = SearchState { k: 0, done: true };
        let mut ue = ErrorDetectionState {
            l: 2,
            ..entered(10)
        };
        let mut vs = SearchState { k: 0, done: true };
        let mut ve = ErrorDetectionState {
            l: 4,
            ..entered(10)
        };
        error_detection_interact(
            &mut us,
            &mut ue,
            &mut vs,
            &mut ve,
            &ctx(false, false, 15, 15),
        );
        assert!(ue.error && ve.error);

        // Healthy agents: the maximum (the leader's validated estimate) spreads.
        let mut as_ = SearchState { k: 9, done: true };
        let mut ae = ErrorDetectionState {
            l: 5,
            ..entered(10)
        };
        let mut bs = SearchState { k: 0, done: true };
        let mut be = ErrorDetectionState {
            l: 6,
            ..entered(10)
        };
        error_detection_interact(
            &mut as_,
            &mut ae,
            &mut bs,
            &mut be,
            &ctx(false, false, 15, 15),
        );
        assert!(!ae.error && !be.error);
        assert_eq!(bs.k, 9);
    }

    #[test]
    fn leader_recomputes_its_estimate_in_phase4() {
        // k = 9, l = 8  ⇒  k ← round(9 + 3 − 3) = 9.
        let mut us = SearchState { k: 9, done: true };
        let mut ue = ErrorDetectionState {
            l: 8,
            ..entered(10)
        };
        let mut vs = SearchState { k: 0, done: true };
        let mut ve = ErrorDetectionState {
            l: 8,
            ..entered(10)
        };
        error_detection_interact(&mut us, &mut ue, &mut vs, &mut ve, &ctx(true, true, 15, 15));
        assert_eq!(us.k, 9);
    }

    #[test]
    fn drifted_phases_raise_the_error_flag() {
        let mut us = SearchState { k: 0, done: true };
        let mut ue = entered(10);
        let mut vs = SearchState { k: 0, done: true };
        let mut ve = entered(16);
        error_detection_interact(
            &mut us,
            &mut ue,
            &mut vs,
            &mut ve,
            &ctx(false, false, 16, 16),
        );
        assert!(ue.error && ve.error);
    }
}
