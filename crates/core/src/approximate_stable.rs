//! The stable (always-correct) variant of `Approximate` — Theorem 1.2/1.3 and
//! Appendix B of the paper.
//!
//! The stable protocol is a *hybrid*: it runs protocol `Approximate` and, in
//! parallel, the slow but always-correct backup protocol of Appendix C.1.  The
//! broadcasting stage of `Approximate` is replaced by the error-detection stage
//! (Algorithm 7), which validates the leader's estimate by re-balancing
//! `2^{k−2}` tokens.  Any detected inconsistency — several agents finishing the
//! leader election as leaders, drifting phase counters, an over- or under-loaded
//! balancing experiment — raises an error flag that spreads by one-way epidemics;
//! agents that have seen the error flag output the backup protocol's result
//! instead, which converges to `⌊log₂ n⌋` with probability 1.
//!
//! Implementation note: the paper pauses the backup protocol once `leaderDone` is
//! raised and restarts a fresh instance on error, which saves a constant factor of
//! states.  This implementation keeps the backup running throughout, which is
//! simpler, has the same asymptotic state bound of Theorem 1.2
//! (`O(log² n · log log n)`), and only strengthens stability.

use rand::rngs::SmallRng;

use ppsim::Protocol;

use crate::approximate::{Approximate, ApproximateAgent};
use crate::backup::{approximate_backup_interact, ApproximateBackupState};
use crate::error_detection::{
    error_detection_interact, ErrorDetectionContext, ErrorDetectionState, ERROR_DETECTION_PHASES,
};
use crate::params::ApproximateParams;

/// Per-agent state of the stable `Approximate` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StableApproximateAgent {
    /// The state of the fast protocol (junta, clock, election, search).
    pub fast: ApproximateAgent,
    /// Error-detection bookkeeping.
    pub ed: ErrorDetectionState,
    /// The always-correct backup protocol (Appendix C.1), running in parallel.
    pub backup: ApproximateBackupState,
    /// Whether this agent has seen the error flag.
    pub error: bool,
}

impl StableApproximateAgent {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        StableApproximateAgent::default()
    }

    /// The estimate of `log₂ n` this agent currently outputs.
    ///
    /// Until the fast protocol has produced a *validated* result, and whenever an
    /// error has been detected, the output falls back to the backup protocol.
    #[must_use]
    pub fn estimate(&self, clock_phase: u32) -> i32 {
        if !self.error
            && self.ed.entered
            && self.ed.relative_phase(clock_phase) >= ERROR_DETECTION_PHASES - 1
        {
            self.fast.search.k
        } else {
            self.backup.k_max
        }
    }

    /// Whether the agent's current output comes from the validated fast protocol
    /// (`true`) or from the backup (`false`).
    #[must_use]
    pub fn uses_fast_path(&self) -> bool {
        !self.error
            && self.ed.entered
            && self.ed.relative_phase(self.fast.sync.clock.phase) >= ERROR_DETECTION_PHASES - 1
    }
}

/// The stable `Approximate` protocol (Algorithm 2 + Algorithm 6/7 + Appendix C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableApproximate {
    fast: Approximate,
}

impl StableApproximate {
    /// Create the protocol from the parameters of the underlying fast protocol.
    #[must_use]
    pub fn new(params: ApproximateParams) -> Self {
        StableApproximate {
            fast: Approximate::new(params),
        }
    }

    /// The underlying fast protocol.
    #[must_use]
    pub fn fast(&self) -> &Approximate {
        &self.fast
    }
}

impl Default for StableApproximate {
    fn default() -> Self {
        Self::new(ApproximateParams::default())
    }
}

impl Protocol for StableApproximate {
    type State = StableApproximateAgent;
    type Output = i32;

    fn initial_state(&self) -> StableApproximateAgent {
        StableApproximateAgent::new()
    }

    fn interact(
        &self,
        initiator: &mut StableApproximateAgent,
        responder: &mut StableApproximateAgent,
        _rng: &mut SmallRng,
    ) {
        // The slow backup protocol runs in parallel throughout.
        approximate_backup_interact(&mut initiator.backup, &mut responder.backup);

        // Stages 1 and 2 of Algorithm 2 (with re-initialisation and clocks).
        let pass = self
            .fast
            .dispatch_stages_1_2(&mut initiator.fast, &mut responder.fast);
        if pass.u_reset {
            initiator.ed = ErrorDetectionState::new();
        }
        if pass.v_reset {
            responder.ed = ErrorDetectionState::new();
        }

        // Error source 1: two agents that both finished the leader election as
        // leaders detect the collision when they meet.
        if initiator.fast.election.done
            && responder.fast.election.done
            && initiator.fast.election.contender
            && responder.fast.election.contender
        {
            initiator.error = true;
            responder.error = true;
        }

        // Stage 3 is the error-detection stage instead of plain broadcasting.
        if pass.stage3 {
            if !initiator.ed.entered {
                // The initiator (the leader, or an agent converted by the stage)
                // enters error detection in the phase in which its search concluded.
                initiator.ed.entered = true;
                initiator.ed.start_phase = initiator.fast.sync.clock.phase;
            }
            let ctx = ErrorDetectionContext {
                u_leader: initiator.fast.election.contender,
                v_leader: responder.fast.election.contender,
                u_first_tick: pass.u_first_tick,
                u_phase: initiator.fast.sync.clock.phase,
                v_phase: responder.fast.sync.clock.phase,
            };
            error_detection_interact(
                &mut initiator.fast.search,
                &mut initiator.ed,
                &mut responder.fast.search,
                &mut responder.ed,
                &ctx,
            );
            if initiator.ed.error || responder.ed.error {
                initiator.error = true;
                responder.error = true;
            }
        }

        // The error flag spreads by one-way epidemics.
        if initiator.error || responder.error {
            initiator.error = true;
            responder.error = true;
        }

        initiator.fast.sync.clock.first_tick = false;
    }

    fn output(&self, state: &StableApproximateAgent) -> i32 {
        state.estimate(state.fast.sync.clock.phase)
    }

    fn name(&self) -> &'static str {
        "approximate-stable"
    }
}

/// Convergence predicate for a population of size `n`: every agent outputs
/// `⌊log₂ n⌋` or `⌈log₂ n⌉`.
#[must_use]
pub fn all_estimates_valid(
    protocol: &StableApproximate,
    states: &[StableApproximateAgent],
    n: usize,
) -> bool {
    let floor = (n as f64).log2().floor() as i32;
    let ceil = (n as f64).log2().ceil() as i32;
    states.iter().all(|a| {
        let o = protocol.output(a);
        o == floor || o == ceil
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn output_falls_back_to_backup_before_validation_and_on_error() {
        let mut a = StableApproximateAgent::new();
        a.backup.k_max = 5;
        a.fast.search.k = 9;
        assert_eq!(a.estimate(0), 5, "no validated fast result yet");

        a.ed.entered = true;
        a.ed.start_phase = 0;
        assert_eq!(a.estimate(20), 9, "validated fast result is used");

        a.error = true;
        assert_eq!(a.estimate(20), 5, "errors always defer to the backup");
    }

    #[test]
    fn colliding_leaders_raise_the_error_flag() {
        let proto = StableApproximate::default();
        let mut rng = ppsim::seeded_rng(0);
        let mut u = StableApproximateAgent::new();
        let mut v = StableApproximateAgent::new();
        for agent in [&mut u, &mut v] {
            agent.fast.sync.junta.active = false;
            agent.fast.election.done = true;
            agent.fast.election.contender = true;
        }
        proto.interact(&mut u, &mut v, &mut rng);
        assert!(u.error && v.error);
    }

    #[test]
    fn stable_approximate_converges_to_a_valid_estimate() {
        let n = 300usize;
        let proto = StableApproximate::default();
        let mut sim = Simulator::new(proto, n, 2025).unwrap();
        let outcome = sim.run_until(
            move |s| all_estimates_valid(s.protocol(), s.states(), n),
            (n * 50) as u64,
            120_000_000,
        );
        assert!(outcome.converged(), "stable Approximate did not converge");
        // At this population size the fast path should normally validate cleanly.
        let errors = sim.states().iter().filter(|a| a.error).count();
        assert!(
            errors == 0 || errors == n,
            "the error flag must be all-or-nothing once spread, found {errors}"
        );
    }

    #[test]
    fn injected_error_forces_the_backup_result_everywhere() {
        let n = 200usize;
        let proto = StableApproximate::default();
        let mut sim = Simulator::new(proto, n, 7).unwrap();
        // Adversarially corrupt the system: flip an error flag by hand.
        sim.states_mut()[0].error = true;
        let outcome = sim.run_until(
            move |s| {
                s.states().iter().all(|a| a.error)
                    && s.states()
                        .iter()
                        .all(|a| a.backup.k_max == (n as f64).log2().floor() as i32)
            },
            (n * n / 8) as u64,
            2_000_000_000,
        );
        assert!(
            outcome.converged(),
            "the backup did not take over after an injected error"
        );
        let floor = (n as f64).log2().floor() as i32;
        assert!(sim.states().iter().all(|a| {
            let p = StableApproximate::default();
            p.output(a) == floor
        }));
    }
}
