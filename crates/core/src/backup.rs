//! Slow, always-correct backup protocols — Appendix C of the paper.
//!
//! The stable variants of `Approximate` and `CountExact` are hybrid protocols: the
//! fast protocol runs first and an error-detection stage validates its result; if an
//! error is detected, the agents fall back to one of the backup protocols defined
//! here, which are slow (`Θ(n² polylog n)` interactions) but correct with
//! probability 1.
//!
//! * [`ApproximateBackup`] (Appendix C.1) computes `⌊log₂ n⌋` with at most
//!   `(log n + 1)²` states, stabilising within `O(n² log² n)` interactions w.h.p.
//!   (Lemma 12).
//! * [`ExactBackup`] (Appendix C.2) computes the exact size `n` and stabilises
//!   within `O(n² log n)` interactions w.h.p. (Lemma 13).

use rand::rngs::SmallRng;

use ppsim::{PersistState, Protocol, SimError, SnapshotReader};

/// Per-agent state of the approximate backup protocol (Appendix C.1):
/// `(k_v, kmax_v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApproximateBackupState {
    /// Logarithm of the number of tokens held (`−1` = no tokens).
    pub k: i32,
    /// The largest `k` this agent is aware of; the agent's output.
    pub k_max: i32,
}

impl ApproximateBackupState {
    /// The common initial state `(0, 0)`: every agent holds one token.
    #[must_use]
    pub fn new() -> Self {
        ApproximateBackupState { k: 0, k_max: 0 }
    }
}

impl Default for ApproximateBackupState {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for ApproximateBackupState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.k.persist(out);
        self.k_max.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(ApproximateBackupState {
            k: i32::unpersist(r)?,
            k_max: i32::unpersist(r)?,
        })
    }
}

/// One interaction of the approximate backup protocol (Equation (3) of the paper).
///
/// If both agents hold the same number of tokens (`k_u = k_v ≥ 0`), the initiator
/// takes all of them (its `k` increases by one) and the responder becomes empty.
/// Both agents always propagate the maximum `k` they have seen.
pub fn approximate_backup_interact(u: &mut ApproximateBackupState, v: &mut ApproximateBackupState) {
    let merged = u.k == v.k && u.k >= 0;
    if merged {
        u.k += 1;
        v.k = -1;
    }
    let k_max = u.k_max.max(v.k_max).max(u.k).max(v.k);
    u.k_max = k_max;
    v.k_max = k_max;
}

/// The approximate backup protocol (Appendix C.1) as a standalone protocol.
///
/// Output: the agent's `kmax`, which converges to `⌊log₂ n⌋`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApproximateBackup;

impl ApproximateBackup {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        ApproximateBackup
    }
}

impl Protocol for ApproximateBackup {
    type State = ApproximateBackupState;
    type Output = i32;

    fn initial_state(&self) -> ApproximateBackupState {
        ApproximateBackupState::new()
    }

    fn interact(
        &self,
        initiator: &mut ApproximateBackupState,
        responder: &mut ApproximateBackupState,
        _rng: &mut SmallRng,
    ) {
        approximate_backup_interact(initiator, responder);
    }

    fn output(&self, state: &ApproximateBackupState) -> i32 {
        state.k_max
    }

    fn name(&self) -> &'static str {
        "approximate-backup"
    }
}

/// Per-agent state of the exact backup protocol (Appendix C.2): `(c_u, n_u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExactBackupState {
    /// Whether this agent's token has already been counted (`c_u`).
    pub counted: bool,
    /// The largest count this agent is aware of (`n_u`); the agent's output.
    pub count: u64,
}

impl ExactBackupState {
    /// The common initial state `(false, 1)`.
    #[must_use]
    pub fn new() -> Self {
        ExactBackupState {
            counted: false,
            count: 1,
        }
    }
}

impl Default for ExactBackupState {
    fn default() -> Self {
        Self::new()
    }
}

/// One interaction of the exact backup protocol (Equation (4) of the paper).
///
/// Two uncounted agents combine their token counts (the initiator keeps collecting,
/// the responder is marked as counted); **counted** agents propagate the maximum
/// count they have observed.
///
/// Equation (4) of the paper lets an *uncounted* agent also overwrite its value with
/// the observed maximum; taken literally that loses track of how many tokens the
/// agent actually holds and can over-count (the adopted maximum would be added to
/// another uncounted agent's tokens in a later merge).  This implementation keeps an
/// uncounted agent's token count untouched, which preserves the intended invariant
/// that the uncounted agents jointly hold exactly `n` tokens, and still converges to
/// every agent outputting `n` (the last uncounted agent holds all `n` tokens and
/// every counted agent adopts that maximum).
pub fn exact_backup_interact(u: &mut ExactBackupState, v: &mut ExactBackupState) {
    if !u.counted && !v.counted {
        let total = u.count + v.count;
        u.count = total;
        v.count = total;
        v.counted = true;
    } else {
        let m = u.count.max(v.count);
        if u.counted {
            u.count = m;
        }
        if v.counted {
            v.count = m;
        }
    }
}

/// The exact backup protocol (Appendix C.2) as a standalone protocol.
///
/// Output: the agent's `n_u`, which converges to the exact population size `n`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactBackup;

impl ExactBackup {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        ExactBackup
    }
}

impl Protocol for ExactBackup {
    type State = ExactBackupState;
    type Output = u64;

    fn initial_state(&self) -> ExactBackupState {
        ExactBackupState::new()
    }

    fn interact(
        &self,
        initiator: &mut ExactBackupState,
        responder: &mut ExactBackupState,
        _rng: &mut SmallRng,
    ) {
        exact_backup_interact(initiator, responder);
    }

    fn output(&self, state: &ExactBackupState) -> u64 {
        state.count
    }

    fn name(&self) -> &'static str {
        "exact-backup"
    }
}

/// Total number of tokens represented in a configuration of the approximate backup
/// protocol (must always equal `n`).
#[must_use]
pub fn approximate_backup_tokens(states: &[ApproximateBackupState]) -> u64 {
    states
        .iter()
        .filter(|s| s.k >= 0)
        .map(|s| 1u64 << u32::try_from(s.k).expect("token exponents stay small"))
        .sum()
}

/// Total number of tokens still held by *uncounted* agents in a configuration of
/// the exact backup protocol (must always equal `n`: counted agents have handed
/// their tokens over, so the uncounted agents jointly hold all of them).
#[must_use]
pub fn exact_backup_tokens(states: &[ExactBackupState]) -> u64 {
    states.iter().filter(|s| !s.counted).map(|s| s.count).sum()
}

/// The approximate backup counter over an enumerated state space, for the
/// batched count-based engine ([`BatchedSimulator`](ppsim::BatchedSimulator)).
///
/// This is the counting protocol best suited to the count-based
/// representation: Appendix C.1 bounds its state space by `(log n + 1)²`
/// states *total*, so even populations of 10⁹ agents fit in a few thousand
/// counts.  An [`ApproximateBackupState`] `(k, k_max)` with `k ∈ {−1, …, K}`
/// and `k_max ∈ {0, …, K}` is encoded as `(k + 1)·(K + 1) + k_max`, giving
/// `q = (K + 2)(K + 1)` for the exponent cap `K = max_k`.
///
/// The cap only matters for populations of at least `2^K` agents (a bag of
/// `2^K` tokens would need `k = K + 1` after a merge); the default
/// [`DenseApproximateBackup::DEFAULT_MAX_K`] = 48 is beyond any simulable
/// population, making the dense process exactly the protocol of Appendix C.1.
///
/// Output: `k_max`, which converges to `⌊log₂ n⌋`.
///
/// ```rust
/// use popcount::DenseApproximateBackup;
/// use ppsim::BatchedSimulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 6_000usize;
/// let proto = DenseApproximateBackup::new();
/// let mut sim = BatchedSimulator::new(proto, n, 7)?;
/// let expected = (n as f64).log2().floor() as i32;
/// let outcome = sim.run_until(
///     |s| s.output_stats().unanimous() == Some(&expected),
///     (n * n / 4) as u64,
///     u64::MAX >> 1,
/// );
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseApproximateBackup {
    max_k: i32,
}

impl DenseApproximateBackup {
    /// Default exponent cap: reachable only by populations of ≥ 2⁴⁸ agents.
    pub const DEFAULT_MAX_K: i32 = 48;

    /// Create the dense approximate backup counter with the default cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_k(Self::DEFAULT_MAX_K)
    }

    /// Create the dense approximate backup counter with exponent cap `max_k`
    /// (tokens per bag up to `2^max_k`).
    ///
    /// # Panics
    ///
    /// Panics if `max_k < 1`.
    #[must_use]
    pub fn with_max_k(max_k: i32) -> Self {
        assert!(max_k >= 1, "the exponent cap must be positive, got {max_k}");
        DenseApproximateBackup { max_k }
    }

    /// The exponent cap `K`.
    #[must_use]
    pub fn max_k(&self) -> i32 {
        self.max_k
    }

    /// Decode a dense index into an [`ApproximateBackupState`].
    #[must_use]
    pub fn decode(&self, index: usize) -> ApproximateBackupState {
        let stride = (self.max_k + 1) as usize;
        ApproximateBackupState {
            k: (index / stride) as i32 - 1,
            k_max: (index % stride) as i32,
        }
    }

    /// Encode an [`ApproximateBackupState`] as a dense index, saturating both
    /// exponents at the cap.
    #[must_use]
    pub fn encode(&self, state: ApproximateBackupState) -> usize {
        let stride = (self.max_k + 1) as usize;
        let k = state.k.clamp(-1, self.max_k);
        let k_max = state.k_max.clamp(0, self.max_k);
        (k + 1) as usize * stride + k_max as usize
    }
}

impl Default for DenseApproximateBackup {
    fn default() -> Self {
        Self::new()
    }
}

impl ppsim::DenseProtocol for DenseApproximateBackup {
    type Output = i32;

    fn num_states(&self) -> usize {
        ((self.max_k + 2) * (self.max_k + 1)) as usize
    }

    fn initial_state(&self) -> usize {
        self.encode(ApproximateBackupState::new())
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        approximate_backup_interact(&mut u, &mut v);
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> i32 {
        self.decode(state).k_max
    }

    fn name(&self) -> &'static str {
        "dense-approximate-backup"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        let p = *self;
        ppsim::ProtocolInvariants {
            // The merged bag holds exactly the tokens of its two halves, so
            // the total token mass `Σ 2^k` over non-empty agents is exact —
            // except at the encoding cap `k = K`, where a merge clamps and
            // sheds tokens.  Only the non-increasing law holds on *every*
            // index pair, which is what ppcheck verifies exhaustively.
            conserved: vec![ppsim::ConservedQuantity {
                name: "tokens",
                law: ppsim::ConservationLaw::NonIncreasing,
                value: std::sync::Arc::new(move |c: &[u64]| {
                    c.iter()
                        .enumerate()
                        .map(|(s, &n)| {
                            u32::try_from(p.decode(s).k).map_or(0, |k| {
                                n.saturating_mul(1u64.checked_shl(k).unwrap_or(u64::MAX))
                            })
                        })
                        .fold(0u64, u64::saturating_add)
                }),
            }],
            // The initiator takes the merged bag; the responder empties.
            role_symmetric: Some(false),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        // Silent configurations: every exponent `k ≥ 0` is held by at most
        // one agent (no merge can fire) and all agents already agree on a
        // `k_max` that dominates every held exponent (no update spreads).
        let mut holders = vec![0u64; usize::try_from(self.max_k + 2).unwrap_or(0)];
        let mut k_max: Option<i32> = None;
        let mut top_held = -1i32;
        for (s, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let st = self.decode(s);
            if let Ok(slot) = usize::try_from(st.k + 1) {
                holders[slot] += n;
            }
            top_held = top_held.max(st.k);
            match k_max {
                None => k_max = Some(st.k_max),
                Some(m) if m != st.k_max => return Some(false),
                Some(_) => {}
            }
        }
        let no_merges = holders.iter().skip(1).all(|&h| h <= 1);
        Some(no_merges && k_max.is_none_or(|m| m >= top_held))
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<ppsim::stint::BoxedAgentStint<i32>> {
        Some(ppsim::stint::DecodedStint::boxed(*self, counts, seed))
    }

    fn restore_agent_stint(
        &self,
        bytes: &[u8],
    ) -> Option<Result<ppsim::stint::BoxedAgentStint<i32>, SimError>> {
        // No interner here, so the default (empty) protocol-state hooks
        // apply; only the stint itself needs restoring.
        Some(ppsim::stint::DecodedStint::restore_boxed(*self, bytes))
    }
}

/// The typed agent-state codec of the dense backup counter: the decode /
/// encode pair is pure index arithmetic (no interner exists here at all), so
/// a hybrid per-agent stint steps bare [`ApproximateBackupState`] structs
/// with [`approximate_backup_interact`] — the same native transition the
/// sequential [`ApproximateBackup`] protocol applies.
///
/// `encode` saturates both exponents at the cap `K`, so the codec round-trip
/// is the identity on the whole index space `0..q` while out-of-range states
/// (unreachable for populations below `2^K`) clamp.
impl ppsim::stint::AgentCodec for DenseApproximateBackup {
    type Native = ApproximateBackup;

    fn native(&self) -> ApproximateBackup {
        ApproximateBackup
    }

    fn decode_agent(&self, index: usize) -> ApproximateBackupState {
        self.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<ApproximateBackupState> {
        use ppsim::DenseProtocol as _;
        if index < self.num_states() {
            Some(self.decode(index))
        } else {
            None
        }
    }

    fn encode_agent(&self, state: &ApproximateBackupState) -> usize {
        self.encode(*state)
    }
}

/// Total number of tokens represented in a counts configuration of
/// [`DenseApproximateBackup`] (must always equal `n`).
#[must_use]
pub fn dense_approximate_backup_tokens(protocol: &DenseApproximateBackup, counts: &[u64]) -> u64 {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(s, &c)| {
            let k = protocol.decode(s).k;
            if k >= 0 {
                c * (1u64 << u32::try_from(k).expect("token exponents stay small"))
            } else {
                0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{BatchedSimulator, DenseProtocol, Simulator};

    #[test]
    fn equal_bags_merge_and_unequal_bags_do_not() {
        let mut u = ApproximateBackupState { k: 2, k_max: 2 };
        let mut v = ApproximateBackupState { k: 2, k_max: 3 };
        approximate_backup_interact(&mut u, &mut v);
        assert_eq!(u.k, 3);
        assert_eq!(v.k, -1);
        assert_eq!(u.k_max, 3);
        assert_eq!(v.k_max, 3);

        let mut a = ApproximateBackupState { k: 1, k_max: 1 };
        let mut b = ApproximateBackupState { k: 2, k_max: 2 };
        approximate_backup_interact(&mut a, &mut b);
        assert_eq!(a.k, 1);
        assert_eq!(b.k, 2);
        assert_eq!(a.k_max, 2);
    }

    #[test]
    fn empty_agents_do_not_merge() {
        let mut u = ApproximateBackupState { k: -1, k_max: 4 };
        let mut v = ApproximateBackupState { k: -1, k_max: 2 };
        approximate_backup_interact(&mut u, &mut v);
        assert_eq!(u.k, -1);
        assert_eq!(v.k, -1);
        assert_eq!(u.k_max, 4);
        assert_eq!(v.k_max, 4);
    }

    #[test]
    fn approximate_backup_converges_to_floor_log_n() {
        for &n in &[64usize, 100, 200] {
            let mut sim = Simulator::new(ApproximateBackup::new(), n, n as u64).unwrap();
            let expected = (n as f64).log2().floor() as i32;
            // Lemma 12: in the stable configuration every agent outputs ⌊log₂ n⌋ and
            // the multiset of bag sizes matches the binary representation of n.
            let stable = move |states: &[ApproximateBackupState]| {
                states.iter().all(|st| st.k_max == expected)
                    && (0..=expected)
                        .all(|bit| states.iter().filter(|s| s.k == bit).count() == (n >> bit) & 1)
            };
            let outcome =
                sim.run_until(move |s| stable(s.states()), (n * n / 4) as u64, 500_000_000);
            assert!(
                outcome.converged(),
                "approximate backup did not stabilise for n = {n}"
            );
            assert_eq!(
                approximate_backup_tokens(sim.states()),
                n as u64,
                "tokens conserved"
            );
        }
    }

    #[test]
    fn dense_backup_encoding_roundtrips_and_matches_the_component() {
        let d = DenseApproximateBackup::with_max_k(6);
        for index in 0..d.num_states() {
            assert_eq!(d.encode(d.decode(index)), index, "roundtrip at {index}");
        }
        assert_eq!(d.num_states(), 8 * 7);
        for i in 0..d.num_states() {
            for j in 0..d.num_states() {
                let (a, b) = d.transition(i, j);
                let mut u = d.decode(i);
                let mut v = d.decode(j);
                approximate_backup_interact(&mut u, &mut v);
                u.k = u.k.clamp(-1, 6);
                u.k_max = u.k_max.clamp(0, 6);
                v.k = v.k.clamp(-1, 6);
                v.k_max = v.k_max.clamp(0, 6);
                assert_eq!(d.decode(a), u, "initiator mismatch at ({i}, {j})");
                assert_eq!(d.decode(b), v, "responder mismatch at ({i}, {j})");
            }
        }
    }

    #[test]
    fn dense_backup_codec_round_trips_and_bisimulates_the_dense_delta() {
        // The AgentCodec surface on pure index arithmetic: exhaustive over
        // the whole (reachable) index space — encode(decode(i)) == i, and
        // decode → native Protocol::interact → encode equals `transition`.
        use ppsim::stint::AgentCodec;
        use ppsim::DenseProtocol;
        let d = DenseApproximateBackup::with_max_k(5);
        let q = DenseProtocol::num_states(&d);
        for i in 0..q {
            assert_eq!(d.encode_agent(&d.decode_agent(i)), i);
            assert_eq!(d.try_decode_agent(i), Some(d.decode_agent(i)));
        }
        assert_eq!(d.try_decode_agent(q), None);
        let native = d.native();
        let mut rng = ppsim::seeded_rng(0);
        for i in 0..q {
            for j in 0..q {
                let mut u = d.decode_agent(i);
                let mut v = d.decode_agent(j);
                ppsim::Protocol::interact(&native, &mut u, &mut v, &mut rng);
                assert_eq!(
                    (d.encode_agent(&u), d.encode_agent(&v)),
                    d.transition(i, j),
                    "codec path diverged from δ at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn dense_backup_hands_the_hybrid_engine_a_decoded_stint() {
        use ppsim::DenseProtocol;
        let d = DenseApproximateBackup::with_max_k(8);
        let counts = {
            let mut c = vec![0u64; DenseProtocol::num_states(&d)];
            c[DenseProtocol::initial_state(&d)] = 600;
            c
        };
        let mut stint = d
            .agent_stint(&counts, 3)
            .expect("the dense backup counter carries a codec");
        assert_eq!(stint.kind(), "decoded");
        stint.run(20_000);
        let tallied = stint.counts();
        assert_eq!(tallied.iter().sum::<u64>(), 600);
        assert_eq!(
            dense_approximate_backup_tokens(&d, &tallied),
            600,
            "tokens conserved through the decoded stint"
        );
    }

    #[test]
    fn dense_backup_counts_on_the_batched_engine() {
        // Lemma 12 on the batched engine, at a size the sequential test
        // cannot afford (Θ(n² log² n) interactions): every agent converges to
        // ⌊log₂ n⌋ and the bag multiset encodes n in binary.
        let n = 3000usize;
        let d = DenseApproximateBackup::new();
        let mut sim = BatchedSimulator::new(d, n, 5).unwrap();
        let expected = (n as f64).log2().floor() as i32;
        let stable = move |s: &BatchedSimulator<DenseApproximateBackup>| {
            s.output_stats().unanimous() == Some(&expected)
                && (0..=expected).all(|bit| {
                    let holders: u64 = s
                        .counts()
                        .iter()
                        .enumerate()
                        .filter(|(idx, &c)| c > 0 && s.protocol().decode(*idx).k == bit)
                        .map(|(_, &c)| c)
                        .sum();
                    holders == ((n >> bit) & 1) as u64
                })
        };
        let outcome = sim.run_until(stable, (n * n / 4) as u64, u64::MAX >> 1);
        assert!(
            outcome.converged(),
            "dense approximate backup did not stabilise"
        );
        assert_eq!(
            dense_approximate_backup_tokens(sim.protocol(), sim.counts()),
            n as u64,
            "tokens conserved"
        );
    }

    #[test]
    fn exact_backup_counts_and_broadcasts() {
        let mut u = ExactBackupState {
            counted: false,
            count: 3,
        };
        let mut v = ExactBackupState {
            counted: false,
            count: 4,
        };
        exact_backup_interact(&mut u, &mut v);
        assert_eq!(u.count, 7);
        assert_eq!(v.count, 7);
        assert!(!u.counted);
        assert!(v.counted);

        let mut a = ExactBackupState {
            counted: true,
            count: 3,
        };
        let mut b = ExactBackupState {
            counted: false,
            count: 5,
        };
        exact_backup_interact(&mut a, &mut b);
        assert_eq!(a.count, 5, "counted agents track the maximum they observe");
        assert_eq!(b.count, 5, "uncounted agents keep their own token count");
        assert!(!b.counted, "a counted agent never absorbs further tokens");
    }

    #[test]
    fn exact_backup_converges_to_n() {
        for &n in &[50usize, 128, 333] {
            let mut sim = Simulator::new(ExactBackup::new(), n, 3 * n as u64).unwrap();
            let expected = n as u64;
            let outcome = sim.run_until(
                move |s| s.states().iter().all(|st| st.count == expected),
                (n * n / 4) as u64,
                2_000_000_000,
            );
            assert!(
                outcome.converged(),
                "exact backup did not converge for n = {n}"
            );
        }
    }

    #[test]
    fn exact_backup_never_overcounts() {
        let n = 200usize;
        let mut sim = Simulator::new(ExactBackup::new(), n, 1).unwrap();
        for _ in 0..50 {
            sim.run(10_000);
            assert!(sim.states().iter().all(|s| s.count <= n as u64));
        }
    }
}
