//! Fast leader election — Lemma 7 and Appendix D of the paper, following \[8\].
//!
//! `FastLeaderElection` trades states for time: using `Õ(n)` states it elects a
//! unique leader within `O(n log n)` interactions w.h.p. (instead of `O(n log² n)`
//! for the election of \[18\]).  The idea (Algorithm 8 of the paper):
//!
//! * the protocol runs in a *constant* number of phases measured by the phase clock;
//! * in **even** phases every remaining contender samples `Θ(log n)` random bits
//!   (one synthetic-coin bit per initiated interaction, up to `2^{level−γ}` bits,
//!   where `level` comes from the junta process and is `log log n ± O(1)` so that
//!   `2^{level−γ} = Θ(log n)`);
//! * in **odd** phases the maximum sampled value spreads by one-way epidemics and
//!   every contender that observes a strictly larger value becomes a follower;
//! * after a fixed number of phases (the paper uses `2¹³`; the constant is
//!   configurable here) each agent sets `leaderDone`.
//!
//! There is always at least one contender (the maximum-value holder never drops
//! out); w.h.p. exactly one remains when `leaderDone` is raised.

use rand::rngs::SmallRng;

use ppsim::{PersistState, Protocol, SimError, SnapshotReader};

use crate::phase_clock::{sync_interact, PhaseClock, SyncState};
use crate::synthetic_coin::{coin_interact, CoinState};

/// Tunable constants of `FastLeaderElection`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastLeaderElectionConfig {
    /// Offset `γ` subtracted from the junta level when computing the number of
    /// random bits per sampling phase (`bits = 2^{level − γ}`, clamped to
    /// `[1, 48]`).  The paper uses `γ = 8`, which is tuned for asymptotically large
    /// populations; the practical default is `2`.
    pub level_offset: u8,
    /// Total number of phases after which `leaderDone` is raised.  The paper uses
    /// `2¹³` to make the w.h.p. union bounds go through at astronomic sizes; the
    /// practical default of `20` already pushes the collision probability below
    /// `n⁻²` for every population that fits in memory.
    pub total_phases: u32,
}

impl Default for FastLeaderElectionConfig {
    fn default() -> Self {
        FastLeaderElectionConfig {
            level_offset: 2,
            total_phases: 32,
        }
    }
}

impl FastLeaderElectionConfig {
    /// The constants exactly as stated in the paper (Appendix D): `γ = 8`,
    /// `2¹³` phases.
    #[must_use]
    pub fn paper() -> Self {
        FastLeaderElectionConfig {
            level_offset: 8,
            total_phases: 1 << 13,
        }
    }

    /// Number of random bits a contender samples per even phase, given its junta
    /// level.
    #[must_use]
    pub fn bits_for_level(&self, level: u8) -> u32 {
        let exp = level.saturating_sub(self.level_offset);
        // 2^{level-γ}, clamped so the sampled value always fits in a u64.
        1u32 << u32::from(exp).min(5) // 2^5 = 32 bits per phase at most
    }
}

/// Per-agent state of the fast leader-election component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FastLeaderState {
    /// Whether this agent is still a leader contender (`leader_u`).
    pub contender: bool,
    /// Whether this agent has concluded the election (`leaderDone_u`).
    pub done: bool,
    /// Synthetic-coin parity bit.
    pub coin: CoinState,
    /// The random value sampled this round (`l_u`), built bit by bit.
    pub value: u64,
    /// Number of bits of [`value`](Self::value) sampled so far this round (`j_u`).
    pub bits_sampled: u32,
    /// The (even) phase in which [`value`](Self::value) was sampled.  Values from
    /// older rounds are treated as stale: they are never used to eliminate a
    /// contender, which is what makes the "at least one contender" invariant robust
    /// against an agent missing the start of a round.
    pub round: u32,
}

impl FastLeaderState {
    /// The common initial state: everyone is a contender.
    #[must_use]
    pub fn new() -> Self {
        FastLeaderState {
            contender: true,
            done: false,
            coin: CoinState::new(),
            value: 0,
            bits_sampled: 0,
            round: 0,
        }
    }

    /// Re-initialise the election state (used when an agent meets a higher junta
    /// level, Algorithm 3 line 1–2).
    pub fn reset(&mut self) {
        *self = FastLeaderState::new();
    }
}

impl Default for FastLeaderState {
    fn default() -> Self {
        Self::new()
    }
}

/// The fast leader-election transition rule (component form), Algorithm 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastLeaderElection {
    config: FastLeaderElectionConfig,
}

impl FastLeaderElection {
    /// Create the component from its configuration.
    #[must_use]
    pub fn new(config: FastLeaderElectionConfig) -> Self {
        FastLeaderElection { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FastLeaderElectionConfig {
        &self.config
    }

    /// Apply one interaction of the component.
    ///
    /// * `u` is the initiator, `v` the responder;
    /// * `u_first_tick` — the initiator's consumed `firstTick` flag;
    /// * `u_phase` / `v_phase` — current phase numbers of the two agents;
    /// * `u_level` / `v_level` — junta levels.  The level of the initiator
    ///   determines the number of random bits sampled per round; all cross-agent
    ///   exchanges are restricted to agents on the same level so that stale values
    ///   from superseded levels cannot eliminate contenders on the maximal level.
    #[allow(clippy::too_many_arguments)]
    pub fn interact(
        &self,
        u: &mut FastLeaderState,
        v: &mut FastLeaderState,
        u_first_tick: bool,
        u_phase: u32,
        v_phase: u32,
        u_level: u8,
        v_level: u8,
    ) {
        let (u_bit, _v_bit) = coin_interact(&mut u.coin, &mut v.coin);
        let same_level = u_level == v_level;

        // Even phases: the initiator samples random bits for the current round.  A
        // round is identified by its (even) phase number; the sampled value is reset
        // lazily when the round tag is out of date (Algorithm 8 resets at the
        // firstTick — the lazy reset is equivalent but does not depend on the
        // partner being synchronised).
        if u_phase.is_multiple_of(2) {
            if u.round != u_phase {
                u.value = 0;
                u.bits_sampled = 0;
                u.round = u_phase;
            }
            let bits = self.config.bits_for_level(u_level);
            if u.contender && u.bits_sampled < bits {
                u.value = (u.value << 1) | u64::from(u_bit);
                u.bits_sampled += 1;
            }
        }

        // Odd phases: spread the maximum value sampled in the round that just ended;
        // contenders observing a strictly larger *fresh* value become followers.
        // Stale values (from older rounds) are adopted for broadcasting but never
        // eliminate anyone, so the maximum-holder of the current round always
        // survives and the contender set can never become empty.
        if u_phase % 2 == 1 && u_phase == v_phase && same_level {
            let u_fresh = u.round + 1 == u_phase;
            let v_fresh = v.round + 1 == v_phase;
            if v_fresh && (!u_fresh || u.value < v.value) {
                if u_fresh {
                    u.contender = false;
                }
                u.value = v.value;
                u.round = v.round;
            } else if u_fresh && (!v_fresh || v.value < u.value) {
                if v_fresh {
                    v.contender = false;
                }
                v.value = u.value;
                v.round = u.round;
            }
        }

        if u_first_tick && u_phase >= self.config.total_phases {
            u.done = true;
        }
        // `leaderDone` spreads by one-way epidemics (between agents on the same
        // level, so that a superseded level cannot terminate the election early).
        if same_level && (u.done || v.done) {
            u.done = true;
            v.done = true;
        }
    }
}

impl Default for FastLeaderElection {
    fn default() -> Self {
        Self::new(FastLeaderElectionConfig::default())
    }
}

/// Per-agent state of the standalone [`FastLeaderElectionProtocol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FastLeaderAgent {
    /// Junta + phase clock.
    pub sync: SyncState,
    /// The election component state.
    pub election: FastLeaderState,
}

/// Standalone fast leader-election protocol (junta + clock + Algorithm 8), used to
/// validate Lemma 7 in isolation (experiment E05).
///
/// The output of an agent is `true` iff it currently considers itself a contender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastLeaderElectionProtocol {
    clock: PhaseClock,
    election: FastLeaderElection,
}

impl FastLeaderElectionProtocol {
    /// Create the protocol with a phase clock of `hours` positions.
    #[must_use]
    pub fn new(hours: u8, config: FastLeaderElectionConfig) -> Self {
        FastLeaderElectionProtocol {
            clock: PhaseClock::new(hours),
            election: FastLeaderElection::new(config),
        }
    }
}

impl Default for FastLeaderElectionProtocol {
    fn default() -> Self {
        Self::new(
            PhaseClock::DEFAULT_HOURS,
            FastLeaderElectionConfig::default(),
        )
    }
}

impl Protocol for FastLeaderElectionProtocol {
    type State = FastLeaderAgent;
    type Output = bool;

    fn initial_state(&self) -> FastLeaderAgent {
        FastLeaderAgent::default()
    }

    fn interact(
        &self,
        initiator: &mut FastLeaderAgent,
        responder: &mut FastLeaderAgent,
        _rng: &mut SmallRng,
    ) {
        let outcome = sync_interact(&self.clock, &mut initiator.sync, &mut responder.sync);
        if outcome.u_reset {
            initiator.election.reset();
        }
        if outcome.v_reset {
            responder.election.reset();
        }
        if !initiator.election.done {
            let u_first_tick = initiator.sync.clock.first_tick;
            self.election.interact(
                &mut initiator.election,
                &mut responder.election,
                u_first_tick,
                initiator.sync.clock.phase,
                responder.sync.clock.phase,
                initiator.sync.junta.level,
                responder.sync.junta.level,
            );
        }
        initiator.sync.clock.first_tick = false;
    }

    fn output(&self, state: &FastLeaderAgent) -> bool {
        state.election.contender
    }

    fn name(&self) -> &'static str {
        "fast-leader-election"
    }
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for FastLeaderState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.contender.persist(out);
        self.done.persist(out);
        self.coin.persist(out);
        self.value.persist(out);
        self.bits_sampled.persist(out);
        self.round.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(FastLeaderState {
            contender: bool::unpersist(r)?,
            done: bool::unpersist(r)?,
            coin: CoinState::unpersist(r)?,
            value: u64::unpersist(r)?,
            bits_sampled: u32::unpersist(r)?,
            round: u32::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn bits_per_phase_follow_the_junta_level() {
        let cfg = FastLeaderElectionConfig {
            level_offset: 2,
            total_phases: 32,
        };
        assert_eq!(cfg.bits_for_level(2), 1);
        assert_eq!(cfg.bits_for_level(3), 2);
        assert_eq!(cfg.bits_for_level(4), 4);
        assert_eq!(cfg.bits_for_level(5), 8);
        // Clamped so that one round never exceeds 32 bits.
        assert_eq!(cfg.bits_for_level(20), 32);
        // Levels below the offset still give one bit.
        assert_eq!(cfg.bits_for_level(0), 1);
    }

    #[test]
    fn paper_constants_are_preserved() {
        let cfg = FastLeaderElectionConfig::paper();
        assert_eq!(cfg.level_offset, 8);
        assert_eq!(cfg.total_phases, 1 << 13);
    }

    #[test]
    fn even_phase_samples_bits_only_for_contenders() {
        let fle = FastLeaderElection::default();
        let mut u = FastLeaderState::new();
        let mut v = FastLeaderState::new();
        v.coin.parity = true; // the initiator's synthetic bit will be 1
        fle.interact(&mut u, &mut v, true, 2, 2, 4, 4);
        assert_eq!(u.bits_sampled, 1);
        assert_eq!(u.value, 1);

        let mut f = FastLeaderState {
            contender: false,
            ..FastLeaderState::new()
        };
        let mut w = FastLeaderState::new();
        fle.interact(&mut f, &mut w, true, 2, 2, 4, 4);
        assert_eq!(f.bits_sampled, 0, "followers do not sample");
    }

    #[test]
    fn odd_phase_comparison_kills_the_smaller_value() {
        let fle = FastLeaderElection::default();
        let mut u = FastLeaderState {
            value: 3,
            round: 2,
            ..FastLeaderState::new()
        };
        let mut v = FastLeaderState {
            value: 9,
            round: 2,
            ..FastLeaderState::new()
        };
        fle.interact(&mut u, &mut v, false, 3, 3, 4, 4);
        assert!(!u.contender);
        assert!(v.contender);
        assert_eq!(
            u.value, 9,
            "the larger value is adopted for further broadcasting"
        );
    }

    #[test]
    fn odd_phase_comparison_never_kills_with_a_stale_value() {
        let fle = FastLeaderElection::default();
        // The partner carries a larger value, but from an older round: it must be
        // adopted for broadcasting without eliminating the fresh contender.
        let mut u = FastLeaderState {
            value: 3,
            round: 2,
            ..FastLeaderState::new()
        };
        let mut v = FastLeaderState {
            value: 9,
            round: 0,
            ..FastLeaderState::new()
        };
        fle.interact(&mut u, &mut v, false, 3, 3, 4, 4);
        assert!(
            u.contender,
            "a stale value must not eliminate a fresh contender"
        );
        assert!(v.contender);
        assert_eq!(v.value, 3, "the stale agent adopts the fresh value");
        assert_eq!(v.round, 2);
    }

    #[test]
    fn mismatched_phases_do_nothing() {
        let fle = FastLeaderElection::default();
        let mut u = FastLeaderState {
            value: 3,
            ..FastLeaderState::new()
        };
        let mut v = FastLeaderState {
            value: 9,
            ..FastLeaderState::new()
        };
        fle.interact(&mut u, &mut v, false, 3, 4, 4, 4);
        assert!(u.contender && v.contender);
        assert_eq!(u.value, 3);
    }

    #[test]
    fn done_is_raised_after_the_configured_number_of_phases_and_spreads() {
        let fle = FastLeaderElection::new(FastLeaderElectionConfig {
            level_offset: 2,
            total_phases: 6,
        });
        let mut u = FastLeaderState::new();
        let mut v = FastLeaderState::new();
        fle.interact(&mut u, &mut v, true, 6, 6, 4, 4);
        assert!(u.done);
        assert!(v.done, "done spreads to the partner immediately");
    }

    #[test]
    fn fast_election_produces_a_unique_leader() {
        let n = 800usize;
        let proto = FastLeaderElectionProtocol::new(
            16,
            FastLeaderElectionConfig {
                level_offset: 2,
                total_phases: 32,
            },
        );
        let mut sim = Simulator::new(proto, n, 2024).unwrap();
        let outcome = sim.run_until(
            |s| s.states().iter().all(|a| a.election.done),
            (n * 10) as u64,
            80_000_000,
        );
        assert!(outcome.converged(), "fast leader election did not finish");
        let leaders = sim.states().iter().filter(|a| a.election.contender).count();
        assert_eq!(leaders, 1, "expected a unique leader, found {leaders}");
    }

    #[test]
    fn there_is_always_at_least_one_contender() {
        let n = 300usize;
        let proto = FastLeaderElectionProtocol::default();
        let mut sim = Simulator::new(proto, n, 31).unwrap();
        for _ in 0..60 {
            sim.run(20_000);
            assert!(sim.states().iter().any(|a| a.election.contender));
        }
    }
}
