//! The shared synchronisation base of the composed counting protocols —
//! Algorithms 2 and 3, lines 1–4 — factored into a reusable layer.
//!
//! Both `Approximate` (Theorem 1) and `CountExact` (Theorem 2) are built the
//! same way: every agent runs the junta process and a junta-driven phase
//! clock *all the time*; whenever an agent meets a strictly higher junta
//! level (or advances its own), its clock **and all downstream protocol
//! state** are re-initialised; on top of that base a protocol-specific
//! *component* (leader election, search, approximation/refinement stages)
//! dispatches on the synchronised phases.  The composition diagram:
//!
//! ```text
//!                 ┌──────────────────────────────────────────┐
//!  every          │  SyncState = junta (level, active, junta)│
//!  interaction ──▶│            + phase clock (hour, phase,   │  lines 1–4:
//!                 │              first_tick)                 │  sync_interact
//!                 └───────────────┬──────────────────────────┘
//!                                 │ resets, SyncCtx (phases, levels, junta
//!                                 │ bits, consumed firstTick)
//!                 ┌───────────────▼──────────────────────────┐
//!                 │  SyncedComponent::interact               │  lines 5+:
//!                 │  (election / search / stages …)          │  the protocol
//!                 └──────────────────────────────────────────┘
//! ```
//!
//! [`SyncComposition`] drives a [`SyncedComponent`] on per-agent
//! [`SyncedAgent`] states and implements [`Protocol`] for the sequential
//! engine.  [`DenseComposition`] runs the *same* transition system on the
//! count-based engines by interning the `(SyncState, component)` pairs into
//! dense indices on first appearance ([`ppsim::StateInterner`]) — an exact
//! bisimulation of the sequential protocol, because the transition applied to
//! the interned structs is the identical [`SyncComposition::interact_pair`].
//!
//! Why interning rather than a fixed product encoding (as
//! [`DenseSyncClock`](crate::DenseSyncClock) uses for the standalone clock):
//! the composed protocols carry an absolute phase counter, `u64` token loads
//! and per-round election values whose *ranges* multiply out to an
//! astronomically large product, while the states that actually occur are few
//! — Theorem 1 bounds `Approximate` by `O(log n · log log n)` states per
//! phase.  The interner's capacity only sizes flat per-state buffers; see
//! [`ppsim::interned`] for the cost model.

use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

use rand::rngs::SmallRng;

use ppsim::stint::{AgentCodec, BoxedAgentStint, DecodedStint};
use ppsim::{DenseProtocol, PersistState, Protocol, SimError, SnapshotReader, StateInterner};

use crate::phase_clock::{sync_interact, PhaseClock, SyncState};

/// Context handed to the downstream component of one composed interaction:
/// everything the synchronisation preamble (junta + clocks + resets) learned.
///
/// All fields are read **after** the junta process and the phase clocks have
/// acted, exactly as the composed protocols of the paper dispatch on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncCtx {
    /// The initiator was re-initialised (met or created a higher junta level).
    pub u_reset: bool,
    /// The responder was re-initialised.
    pub v_reset: bool,
    /// The initiator's pending `firstTick` flag (consumed by this interaction).
    pub u_first_tick: bool,
    /// The initiator's current phase number.
    pub u_phase: u32,
    /// The responder's current phase number.
    pub v_phase: u32,
    /// The initiator's junta level.
    pub u_level: u8,
    /// The responder's junta level.
    pub v_level: u8,
    /// Whether the initiator still believes it belongs to the junta.
    pub u_junta: bool,
    /// Whether the responder still believes it belongs to the junta.
    pub v_junta: bool,
}

/// A protocol component driven by the shared synchronisation base: the part
/// of a composed counting protocol that sits below lines 1–4 of
/// Algorithms 2/3.
pub trait SyncedComponent {
    /// Per-agent component state (election flags, search exponent, stage
    /// loads, …).  `Copy + Eq + Hash` so the dense composition can intern it;
    /// `Send + Sync` so shard copies can ride along to worker threads;
    /// [`PersistState`] so engine snapshots can carry interner contents and
    /// per-agent stints across a crash (see [`ppsim::snapshot`]).
    type State: Copy + Eq + Hash + Debug + Send + Sync + PersistState;
    /// The output domain of the composed protocol.
    type Output: Clone + Debug + PartialEq + Send;

    /// The common initial component state.
    fn initial_state(&self) -> Self::State;

    /// Re-initialise an agent's component state (the agent met or created a
    /// higher junta level — Algorithm 2/3, lines 1–2).
    fn reset(&self, state: &mut Self::State);

    /// One component interaction, dispatched with the synchronised context.
    /// `u` is the initiator, `v` the responder.
    fn interact(&self, u: &mut Self::State, v: &mut Self::State, ctx: &SyncCtx);

    /// The output function `ω` on component states.
    fn output(&self, state: &Self::State) -> Self::Output;

    /// A short protocol name for reports.
    fn name(&self) -> &'static str;
}

/// Per-agent state of a composed protocol: the synchronisation base plus the
/// component state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SyncedAgent<S> {
    /// Junta process + phase clock (lines 1–4 of Algorithms 2/3).
    pub sync: SyncState,
    /// The component state (lines 5+).
    pub inner: S,
}

/// Snapshot codec: synchronisation base, then component state (see
/// [`ppsim::snapshot`]).
impl<S: PersistState> PersistState for SyncedAgent<S> {
    fn persist(&self, out: &mut Vec<u8>) {
        self.sync.persist(out);
        self.inner.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(SyncedAgent {
            sync: SyncState::unpersist(r)?,
            inner: S::unpersist(r)?,
        })
    }
}

/// A composed protocol: the shared synchronisation base driving a
/// [`SyncedComponent`].  Implements [`Protocol`] for the sequential engine;
/// [`DenseComposition`] lifts the same transition system onto the count-based
/// engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncComposition<C> {
    clock: PhaseClock,
    component: C,
}

impl<C: SyncedComponent> SyncComposition<C> {
    /// Compose `component` over a junta-driven phase clock of `hours`
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if `hours < 4` (see [`PhaseClock::new`]).
    #[must_use]
    pub fn new(hours: u8, component: C) -> Self {
        SyncComposition {
            clock: PhaseClock::new(hours),
            component,
        }
    }

    /// The shared phase-clock rule.
    #[must_use]
    pub fn clock(&self) -> &PhaseClock {
        &self.clock
    }

    /// The composed component.
    #[must_use]
    pub fn component(&self) -> &C {
        &self.component
    }

    /// Run **only** the synchronisation preamble: junta process, clocks,
    /// component re-initialisation on resets.  Returns the component context.
    ///
    /// The caller performs its own staged dispatch afterwards and must clear
    /// the initiator's `sync.clock.first_tick` once the tick is consumed —
    /// this is the hook the stable protocol variants use to substitute their
    /// own final stage (error detection) for the component's.
    pub fn preamble(
        &self,
        u: &mut SyncedAgent<C::State>,
        v: &mut SyncedAgent<C::State>,
    ) -> SyncCtx {
        let outcome = sync_interact(&self.clock, &mut u.sync, &mut v.sync);
        if outcome.u_reset {
            self.component.reset(&mut u.inner);
        }
        if outcome.v_reset {
            self.component.reset(&mut v.inner);
        }
        SyncCtx {
            u_reset: outcome.u_reset,
            v_reset: outcome.v_reset,
            u_first_tick: u.sync.clock.first_tick,
            u_phase: u.sync.clock.phase,
            v_phase: v.sync.clock.phase,
            u_level: u.sync.junta.level,
            v_level: v.sync.junta.level,
            u_junta: u.sync.junta.junta,
            v_junta: v.sync.junta.junta,
        }
    }

    /// One full composed interaction: preamble, component dispatch, and the
    /// consumption of the initiator's `firstTick` flag.  Deterministic — the
    /// composed protocols draw their random bits from the schedule itself
    /// (synthetic coins), never from an RNG.
    pub fn interact_pair(
        &self,
        u: &mut SyncedAgent<C::State>,
        v: &mut SyncedAgent<C::State>,
    ) -> SyncCtx {
        let ctx = self.preamble(u, v);
        self.component.interact(&mut u.inner, &mut v.inner, &ctx);
        u.sync.clock.first_tick = false;
        ctx
    }
}

impl<C: SyncedComponent> Protocol for SyncComposition<C> {
    type State = SyncedAgent<C::State>;
    type Output = C::Output;

    fn initial_state(&self) -> SyncedAgent<C::State> {
        SyncedAgent {
            sync: SyncState::new(),
            inner: self.component.initial_state(),
        }
    }

    fn interact(
        &self,
        initiator: &mut SyncedAgent<C::State>,
        responder: &mut SyncedAgent<C::State>,
        _rng: &mut SmallRng,
    ) {
        self.interact_pair(initiator, responder);
    }

    fn output(&self, state: &SyncedAgent<C::State>) -> C::Output {
        self.component.output(&state.inner)
    }

    fn name(&self) -> &'static str {
        self.component.name()
    }
}

/// A composed protocol on an interned dense state space: the **same**
/// transition system as [`SyncComposition`] (every transition goes through
/// [`SyncComposition::interact_pair`] on the decoded structs), indexed for
/// the count-based engines by assigning dense indices to `(sync, component)`
/// states on first appearance.
///
/// Clones share the interner (via [`Arc`]), so the sharded engine's per-shard
/// copies agree on every index.  [`DenseProtocol::dynamic`] returns `true`:
/// the engines evaluate transitions and outputs lazily on occupied states and
/// pin the sharded within-shard phase to one worker thread (see
/// [`ppsim::interned`]).
#[derive(Debug, Clone)]
pub struct DenseComposition<C: SyncedComponent> {
    base: SyncComposition<C>,
    interner: Arc<StateInterner<SyncedAgent<C::State>>>,
}

impl<C: SyncedComponent + Clone> DenseComposition<C> {
    /// Lift a composed protocol onto an interned dense state space with room
    /// for `capacity` distinct states.
    ///
    /// `capacity` only sizes the engines' flat per-state buffers (a few bytes
    /// per slot); the distinct states actually interned are the ones the run
    /// visits.  A run that discovers more than `capacity` states panics with
    /// a message pointing here.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity >= u32::MAX` (dense indices
    /// are 32-bit and `u32::MAX` is reserved; see
    /// [`StateInterner::with_capacity`](ppsim::StateInterner::with_capacity)).
    #[must_use]
    pub fn new(base: SyncComposition<C>, capacity: usize) -> Self {
        let interner = Arc::new(StateInterner::with_capacity(capacity));
        let q0 = interner.intern(SyncedAgent {
            sync: SyncState::new(),
            inner: base.component.initial_state(),
        });
        debug_assert_eq!(q0, 0, "the initial state takes index 0");
        DenseComposition { base, interner }
    }

    /// The underlying sequential composition.
    #[must_use]
    pub fn base(&self) -> &SyncComposition<C> {
        &self.base
    }

    /// Decode a dense index into the full per-agent state.
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been assigned to any state yet.
    #[must_use]
    pub fn decode(&self, index: usize) -> SyncedAgent<C::State> {
        self.interner.get(index)
    }

    /// Encode a per-agent state as its dense index, interning it on first
    /// appearance.
    ///
    /// # Panics
    ///
    /// Panics if the state is new and the capacity is exhausted.
    #[must_use]
    pub fn encode(&self, state: SyncedAgent<C::State>) -> usize {
        self.interner.intern(state)
    }

    /// How many distinct states the runs sharing this protocol value have
    /// discovered so far — the empirical state-space size the paper's
    /// theorems bound.
    #[must_use]
    pub fn states_discovered(&self) -> usize {
        self.interner.len()
    }

    /// The index-space capacity this protocol reports as `num_states()`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.interner.capacity()
    }
}

impl<C: SyncedComponent + Clone + Send + Sync + 'static> DenseProtocol for DenseComposition<C> {
    type Output = C::Output;

    fn num_states(&self) -> usize {
        self.interner.capacity()
    }

    fn initial_state(&self) -> usize {
        0
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.interner.get(initiator);
        let mut v = self.interner.get(responder);
        self.base.interact_pair(&mut u, &mut v);
        (self.interner.intern(u), self.interner.intern(v))
    }

    fn output(&self, state: usize) -> C::Output {
        self.base.component.output(&self.interner.get(state).inner)
    }

    fn name(&self) -> &'static str {
        self.base.component.name()
    }

    fn dynamic(&self) -> bool {
        true
    }

    fn discovered_states(&self) -> Option<usize> {
        // The occupancy-reporting hook the hybrid engine's switch log reads:
        // the interner census attributes an occupancy blow-up to the protocol
        // stage that minted the states.
        Some(self.interner.len())
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<C::Output>> {
        Some(DecodedStint::boxed(self.clone(), counts, seed))
    }

    fn save_protocol_state(&self) -> Vec<u8> {
        // The interner's discovery order IS protocol state: dense indices in
        // a snapshot are meaningless without the exact index → state table
        // that minted them.
        let mut out = Vec::new();
        self.interner.contents().persist(&mut out);
        out
    }

    fn restore_protocol_state(&self, bytes: &[u8]) -> Result<(), SimError> {
        let mut r = SnapshotReader::new(bytes);
        let states = Vec::<SyncedAgent<C::State>>::unpersist(&mut r)?;
        r.finish()?;
        self.interner.replace_contents(states)
    }

    fn restore_agent_stint(
        &self,
        bytes: &[u8],
    ) -> Option<Result<BoxedAgentStint<C::Output>, SimError>> {
        Some(DecodedStint::restore_boxed(self.clone(), bytes))
    }
}

/// The typed agent-state codec of a composed protocol: per-agent stints of
/// the hybrid engine decode each occupied index **once** at the migration
/// boundary and then step native [`SyncedAgent`] structs with the identical
/// [`SyncComposition::interact_pair`] — no interner probe per interaction.
/// States minted during the stint reach the interner only if the run
/// migrates back to the count-based substrate (or tallies its final
/// configuration), so a refinement-style transient that scatters the
/// population over `Θ(n)` loads no longer floods the index space.
impl<C: SyncedComponent + Clone + Send + Sync + 'static> AgentCodec for DenseComposition<C> {
    type Native = SyncComposition<C>;

    fn native(&self) -> SyncComposition<C> {
        self.base.clone()
    }

    fn decode_agent(&self, index: usize) -> SyncedAgent<C::State> {
        self.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<SyncedAgent<C::State>> {
        self.interner.try_get(index)
    }

    fn encode_agent(&self, state: &SyncedAgent<C::State>) -> usize {
        self.encode(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{BatchedSimulator, Simulator};

    /// A toy component: remember the highest phase at which this agent ever
    /// consumed a firstTick (a "phase odometer").
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Odometer;

    impl SyncedComponent for Odometer {
        type State = u32;
        type Output = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn reset(&self, state: &mut u32) {
            *state = 0;
        }
        fn interact(&self, u: &mut u32, _v: &mut u32, ctx: &SyncCtx) {
            if ctx.u_first_tick {
                *u = (*u).max(ctx.u_phase);
            }
        }
        fn output(&self, state: &u32) -> u32 {
            *state
        }
        fn name(&self) -> &'static str {
            "phase-odometer"
        }
    }

    #[test]
    fn sequential_and_dense_compositions_are_the_same_process() {
        // Same seed ⇒ identical trajectories: the sequential engine picks the
        // same agent pairs for both, and the transitions are deterministic.
        let n = 400usize;
        let base = SyncComposition::new(8, Odometer);
        let dense = DenseComposition::new(base, 1 << 16);

        let mut plain = Simulator::new(base, n, 99).unwrap();
        let mut interned = Simulator::new(ppsim::DenseAdapter(dense.clone()), n, 99).unwrap();
        for _ in 0..20 {
            plain.run(5_000);
            interned.run(5_000);
            for (a, &idx) in plain.states().iter().zip(interned.states()) {
                assert_eq!(*a, dense.decode(idx as usize), "trajectories diverged");
            }
        }
        assert!(dense.states_discovered() > 1);
    }

    #[test]
    fn dense_composition_runs_on_the_batched_engine() {
        let base = SyncComposition::new(8, Odometer);
        let dense = DenseComposition::new(base, 1 << 16);
        let mut sim = BatchedSimulator::new(dense.clone(), 5_000, 3).unwrap();
        // The odometer advances once phases start ticking.
        let outcome = sim.run_until(
            |s| s.output_stats().iter().any(|(&o, _)| o >= 2),
            5_000,
            u64::MAX >> 1,
        );
        assert!(outcome.converged(), "phases must keep ticking");
        assert_eq!(sim.counts().iter().sum::<u64>(), 5_000);
        assert!(dense.states_discovered() <= dense.capacity());
    }

    #[test]
    fn preamble_resets_the_component_of_a_superseded_agent() {
        let base = SyncComposition::new(8, Odometer);
        let mut u = SyncedAgent {
            sync: SyncState::new(),
            inner: 7u32,
        };
        let mut v = SyncedAgent {
            sync: SyncState::new(),
            inner: 0u32,
        };
        v.sync.junta.level = 3;
        let ctx = base.preamble(&mut u, &mut v);
        assert!(ctx.u_reset);
        assert_eq!(u.inner, 0, "the superseded initiator's component resets");
        assert_eq!(ctx.u_level, u.sync.junta.level);
    }

    #[test]
    fn codec_round_trips_and_bisimulates_the_interned_delta_path() {
        // Populate the interner with genuinely reachable states.
        let dense = DenseComposition::new(SyncComposition::new(8, Odometer), 1 << 16);
        let mut sim = Simulator::new(ppsim::DenseAdapter(dense.clone()), 300, 5).unwrap();
        sim.run(30_000);
        let discovered = dense.states_discovered();
        assert!(discovered > 10);
        use ppsim::stint::AgentCodec;
        for i in 0..discovered {
            // encode(decode(i)) == i over the whole reachable index range.
            assert_eq!(dense.encode_agent(&dense.decode_agent(i)), i);
            assert_eq!(dense.try_decode_agent(i), Some(dense.decode_agent(i)));
        }
        assert_eq!(dense.try_decode_agent(discovered + 7), None);
        // decode → native interact → encode agrees with the interned δ.
        let native = dense.native();
        let mut rng = ppsim::seeded_rng(9);
        for k in 0..200usize {
            let (i, j) = ((k * 13) % discovered, (k * 29 + 1) % discovered);
            let mut u = dense.decode_agent(i);
            let mut v = dense.decode_agent(j);
            ppsim::Protocol::interact(&native, &mut u, &mut v, &mut rng);
            let via_codec = (dense.encode_agent(&u), dense.encode_agent(&v));
            assert_eq!(
                via_codec,
                dense.transition(i, j),
                "δ diverged at ({i}, {j})"
            );
        }
    }

    #[test]
    fn composed_protocols_hand_the_hybrid_engine_a_decoded_stint() {
        let dense = DenseComposition::new(SyncComposition::new(8, Odometer), 1 << 16);
        let counts_probe = {
            // Reach a non-trivial configuration first.
            let mut sim = BatchedSimulator::new(dense.clone(), 4_000, 3).unwrap();
            sim.run(20_000);
            sim.into_counts()
        };
        let mut stint = dense
            .agent_stint(&counts_probe, 11)
            .expect("composed protocols carry a codec");
        assert_eq!(stint.kind(), "decoded");
        assert_eq!(stint.population(), 4_000);
        let interned_before = dense.states_discovered();
        stint.run(50_000);
        assert_eq!(
            dense.states_discovered(),
            interned_before,
            "a decoded stint must not touch the interner while stepping"
        );
        let tallied = stint.counts(); // the agent → dense boundary interns
        assert_eq!(tallied.iter().sum::<u64>(), 4_000);
        assert!(dense.states_discovered() >= interned_before);
    }

    #[test]
    fn clones_share_one_index_space() {
        let dense = DenseComposition::new(SyncComposition::new(8, Odometer), 64);
        let clone = dense.clone();
        let s = SyncedAgent {
            sync: SyncState::new(),
            inner: 41u32,
        };
        let i = dense.encode(s);
        assert_eq!(clone.encode(s), i);
        assert_eq!(clone.decode(i), s);
    }
}
