//! One-way epidemics (broadcast) and maximum broadcast — Lemma 3 of the paper.
//!
//! The goal of a one-way epidemic is to spread a piece of information to all members
//! of the population.  With states `{0, x}` and transitions
//! `δ(u, v) = (max{u, v}, v)` the value `x` spreads from at least one initial holder
//! to every agent within `O(n log n)` interactions w.h.p. (Lemma 3).  The natural
//! extension, *maximum broadcast*, lets every agent start with its own value and
//! spreads the maximum.
//!
//! Inside the composed counting protocols the epidemic is used as a **component**:
//! two agents simply adopt the maximum (or logical OR) of a field.  The paper's
//! transition is one-way (only the initiator learns); the composed protocols of the
//! paper apply it to both agents (e.g. Algorithm 1 line 16 sets both `k_u` and `k_v`
//! to the maximum), which can only be faster.  Both variants are provided.

use rand::rngs::SmallRng;

use ppsim::Protocol;

/// Two-way maximum broadcast: both agents adopt the maximum of the two values.
///
/// This is the form used inside the counting protocols (e.g. Algorithm 1, Phase 3).
///
/// # Examples
///
/// ```rust
/// let mut a = 3u32;
/// let mut b = 7u32;
/// ppproto::max_broadcast(&mut a, &mut b);
/// assert_eq!((a, b), (7, 7));
/// ```
pub fn max_broadcast<T: Ord + Copy>(u: &mut T, v: &mut T) {
    let m = (*u).max(*v);
    *u = m;
    *v = m;
}

/// Two-way OR broadcast for boolean flags (a special case of maximum broadcast).
///
/// # Examples
///
/// ```rust
/// let mut a = false;
/// let mut b = true;
/// ppproto::or_broadcast(&mut a, &mut b);
/// assert!(a && b);
/// ```
pub fn or_broadcast(u: &mut bool, v: &mut bool) {
    let o = *u || *v;
    *u = o;
    *v = o;
}

/// The standalone one-way epidemic protocol of Lemma 3.
///
/// The state space is `{0, …, x}` for values of type `u64`; the faithful *one-way*
/// transition `δ(u, v) = (max{u, v}, v)` is used: only the **initiator** learns.
/// Experiments plant one (or more) non-zero values via
/// [`Simulator::states_mut`](ppsim::Simulator::states_mut) and measure the number of
/// interactions until every agent holds the maximum.
///
/// Lemma 3: w.h.p. the broadcast completes within `O(n log n)` interactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OneWayEpidemic;

impl OneWayEpidemic {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        OneWayEpidemic
    }
}

impl Protocol for OneWayEpidemic {
    type State = u64;
    type Output = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn interact(&self, initiator: &mut u64, responder: &mut u64, _rng: &mut SmallRng) {
        // One-way: δ(u, v) = (max{u, v}, v).
        if *responder > *initiator {
            *initiator = *responder;
        }
    }

    fn output(&self, state: &u64) -> u64 {
        *state
    }

    fn name(&self) -> &'static str {
        "one-way-epidemic"
    }
}

/// The one-way epidemic over the binary state space `{susceptible, informed}`,
/// enumerated for the batched count-based engine
/// ([`BatchedSimulator`](ppsim::BatchedSimulator)).
///
/// State `0` is susceptible, state `1` informed; the transition is the faithful
/// one-way rule `δ(u, v) = (max{u, v}, v)` of Lemma 3.  This is the protocol
/// the engine benchmarks use at `n = 10⁶` and beyond: `q = 2`, so a whole
/// collision-free batch of `Θ(√n)` interactions costs a handful of
/// hypergeometric draws.
///
/// Plant the rumour with
/// [`BatchedSimulator::transfer`](ppsim::BatchedSimulator::transfer):
///
/// ```rust
/// use ppproto::DenseEpidemic;
/// use ppsim::BatchedSimulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let mut sim = BatchedSimulator::new(DenseEpidemic, 10_000, 1)?;
/// sim.transfer(0, 1, 1)?;
/// let outcome = sim.run_until(|s| s.count_of(1) == s.population(), 10_000, u64::MAX);
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseEpidemic;

impl ppsim::DenseProtocol for DenseEpidemic {
    type Output = bool;

    fn num_states(&self) -> usize {
        2
    }

    fn initial_state(&self) -> usize {
        0
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        // One-way: δ(u, v) = (max{u, v}, v).
        (initiator.max(responder), responder)
    }

    fn output(&self, state: usize) -> bool {
        state == 1
    }

    fn name(&self) -> &'static str {
        "dense-epidemic"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        ppsim::ProtocolInvariants {
            // Information is never forgotten: the susceptible count can
            // only shrink, under every transition pair.
            conserved: vec![ppsim::ConservedQuantity {
                name: "susceptible",
                law: ppsim::ConservationLaw::NonIncreasing,
                value: std::sync::Arc::new(|c: &[u64]| c[0]),
            }],
            // One-way: only the initiator learns, so δ is role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        // The epidemic is silent exactly when nobody is left to inform —
        // either everyone holds the rumour or nobody does.
        Some(counts[0] == 0 || counts[1] == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{seeded_rng, BatchedSimulator, DenseProtocol, Simulator};

    #[test]
    fn max_broadcast_is_symmetric_and_idempotent() {
        let mut a = 5u32;
        let mut b = 9u32;
        max_broadcast(&mut a, &mut b);
        assert_eq!((a, b), (9, 9));
        max_broadcast(&mut a, &mut b);
        assert_eq!((a, b), (9, 9));
    }

    #[test]
    fn or_broadcast_spreads_true() {
        let mut a = true;
        let mut b = false;
        or_broadcast(&mut a, &mut b);
        assert!(a && b);
        let mut c = false;
        let mut d = false;
        or_broadcast(&mut c, &mut d);
        assert!(!c && !d);
    }

    #[test]
    fn one_way_transition_only_updates_initiator() {
        let p = OneWayEpidemic::new();
        let mut rng = seeded_rng(0);
        let mut u = 0u64;
        let mut v = 3u64;
        p.interact(&mut u, &mut v, &mut rng);
        assert_eq!((u, v), (3, 3 /* unchanged */));
        // Responder with the smaller value learns nothing.
        let mut u2 = 4u64;
        let mut v2 = 1u64;
        p.interact(&mut u2, &mut v2, &mut rng);
        assert_eq!((u2, v2), (4, 1));
    }

    #[test]
    fn epidemic_reaches_everyone() {
        let n = 300;
        let mut sim = Simulator::new(OneWayEpidemic::new(), n, 7).unwrap();
        sim.states_mut()[0] = 42;
        let outcome = sim.run_until(
            |s| s.states().iter().all(|&x| x == 42),
            n as u64,
            20_000_000,
        );
        let t = outcome.expect_converged("one-way epidemic");
        // Sanity: completion cannot be faster than n-1 informing interactions and
        // should comfortably finish within ~8 n ln n interactions at this size.
        let n_f = n as f64;
        assert!(t >= (n as u64) - 1);
        assert!(
            (t as f64) < 8.0 * n_f * n_f.ln(),
            "broadcast took {t} interactions"
        );
    }

    #[test]
    fn dense_epidemic_mirrors_the_one_way_rule() {
        let d = DenseEpidemic;
        assert_eq!(d.num_states(), 2);
        assert_eq!(d.initial_state(), 0);
        // Same truth table as OneWayEpidemic restricted to {0, 1}.
        assert_eq!(d.transition(0, 0), (0, 0));
        assert_eq!(d.transition(0, 1), (1, 1), "the initiator learns");
        assert_eq!(d.transition(1, 0), (1, 0), "the responder does not");
        assert_eq!(d.transition(1, 1), (1, 1));
        assert!(!d.output(0));
        assert!(d.output(1));
    }

    #[test]
    fn dense_epidemic_converges_on_the_batched_engine() {
        let n = 50_000u64;
        let mut sim = BatchedSimulator::new(DenseEpidemic, n as usize, 9).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == n, n, u64::MAX >> 1);
        let t = outcome.expect_converged("dense epidemic");
        let nf = n as f64;
        assert!(t >= n - 1);
        assert!(
            (t as f64) < 8.0 * nf * nf.ln(),
            "broadcast took {t} interactions"
        );
    }

    #[test]
    fn maximum_broadcast_spreads_the_maximum_of_many_values() {
        let n = 200;
        let mut sim = Simulator::new(OneWayEpidemic::new(), n, 3).unwrap();
        for (i, s) in sim.states_mut().iter_mut().enumerate() {
            *s = i as u64;
        }
        let max = (n - 1) as u64;
        let outcome = sim.run_until(
            move |s| s.states().iter().all(|&x| x == max),
            n as u64,
            20_000_000,
        );
        assert!(outcome.converged());
    }
}
