//! Herman's self-stabilizing token protocol, adapted to the uniform
//! pairwise scheduler: coin-lazy token **annihilation** with the
//! `Θ(n²)` expected stabilization time as a tolerance-banded assertion.
//!
//! # The source protocol and the adaptation
//!
//! Herman's protocol (1990) runs on an odd-size unidirectional ring: each
//! process either holds a token or not, and on every synchronous step a
//! token-holder flips a fair coin to either keep its token or pass it to its
//! ring neighbour; two tokens meeting on one process annihilate.  From *any*
//! configuration the token count only ever decreases (by two at a time, so
//! its **parity is invariant**), and the protocol stabilizes to the legitimate
//! configurations with at most one token.  Bruna et al. 2015 (*Proving the
//! Herman-Protocol Conjecture*, PAPERS.md) settled the worst-case expected
//! stabilization time at `αN²` with `α = 4/27`, attained by three
//! equidistant tokens.
//!
//! A population protocol has no ring: the scheduler draws ordered pairs
//! uniformly, so "two tokens meet" becomes "two token-holders are scheduled
//! together", and the ring's lazy coin becomes a synthetic-coin bit
//! ([`crate::synthetic_coin`], Appendix D of the source paper) carried by
//! every agent and flipped on every interaction.  The pair rule is:
//!
//! * if both agents hold tokens **and** the responder's pre-flip coin is
//!   heads, both tokens are destroyed;
//! * both agents flip their coin (participation parity keeps the coin
//!   stream mixing, exactly as in [`crate::ranking`]).
//!
//! This preserves the protocol's defining structure — anonymous token
//! holders, pairwise annihilation, coin-lazy progress, parity-invariant
//! token count, legitimacy = "at most one token" — while replacing ring
//! adjacency by uniform pairing.
//!
//! # The quantitative target
//!
//! With `k` tokens among `n` agents, a uniformly scheduled interaction pairs
//! two token-holders with probability `k(k−1)/(n(n−1))` and the responder's
//! coin approves the annihilation with probability `1/2`, so the expected
//! interactions for `k → k−2` are `2n(n−1)/(k(k−1))`.  Starting from an odd
//! token count near `n` (the measured configuration of E22 and the band
//! test below) the expected stabilization time telescopes to
//!
//! ```text
//! E[T] = Σ_{odd j ≥ 3} 2n(n−1)/(j(j−1)) = 2(1 − ln 2)·n(n−1) ≈ 0.6137·n²
//! ```
//!
//! which falls inside the issue's 15% tolerance band around `0.64n²` — the
//! banded assertion checked at `n = 10³` in this module's tests and at
//! `n ∈ {10³, 10⁴}` by experiment E22.  (From the clean all-token
//! configuration at even `n` the parity invariant forces the run down to
//! zero tokens and the even-index telescope gives `2 ln 2·n(n−1) ≈ 1.386n²`
//! instead — the scenario matrix budgets its clean-init cells accordingly.)
//!
//! # Representations
//!
//! The state space is four dense indices (`index = 2·token + coin`), so the
//! protocol is *count-friendly* on every engine at every population size —
//! the matrix's `n = 10⁴` all-engine rows are Herman cells.  The
//! [`AgentCodec`] implementation additionally lets hybrid per-agent stints
//! step native [`HermanAgent`] structs.

use std::sync::Arc;

use ppsim::snapshot::{PersistState, SnapshotReader};
use ppsim::stint::{AgentCodec, BoxedAgentStint, DecodedStint};
use ppsim::{
    ConservationLaw, ConservedQuantity, DenseProtocol, Protocol, ProtocolInvariants, SimError,
};
use rand::rngs::SmallRng;

/// The native per-agent state of the adapted Herman protocol: a token bit
/// plus one synthetic-coin bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HermanAgent {
    /// Whether the agent currently holds a token.
    pub token: bool,
    /// The synthetic-coin bit, flipped on every interaction.
    pub coin: bool,
}

impl PersistState for HermanAgent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.token.persist(out);
        self.coin.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(HermanAgent {
            token: bool::unpersist(r)?,
            coin: bool::unpersist(r)?,
        })
    }
}

/// Apply one adapted-Herman interaction to a decoded pair — the single
/// transition rule both representations share.
#[inline]
fn herman_interact(u: &mut HermanAgent, v: &mut HermanAgent) {
    // The responder's *pre-flip* coin approves the annihilation.
    if u.token && v.token && v.coin {
        u.token = false;
        v.token = false;
    }
    u.coin = !u.coin;
    v.coin = !v.coin;
}

/// The native stepper for per-agent stints: identical `δ` to
/// [`HermanTokens`], monomorphised over [`HermanAgent`] structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HermanNative;

impl Protocol for HermanNative {
    type State = HermanAgent;
    type Output = bool;

    fn initial_state(&self) -> HermanAgent {
        HermanAgent {
            token: true,
            coin: false,
        }
    }

    fn interact(&self, u: &mut HermanAgent, v: &mut HermanAgent, _rng: &mut SmallRng) {
        herman_interact(u, v);
    }

    fn output(&self, s: &HermanAgent) -> bool {
        s.token
    }

    fn name(&self) -> &'static str {
        "herman-tokens"
    }
}

/// Herman's protocol adapted to the uniform scheduler as a statically
/// encoded [`DenseProtocol`] (`q = 4`, index = `2·token + coin`) with a
/// typed [`AgentCodec`] for hybrid per-agent stints.
///
/// # Examples
///
/// Stabilization to at most one token from the all-token configuration
/// (odd `n`, so the parity invariant leaves exactly one):
///
/// ```rust
/// use ppproto::HermanTokens;
/// use ppsim::BatchedSimulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let p = HermanTokens::new();
/// let n = 101;
/// let mut sim = BatchedSimulator::new(p, n, 7)?;
/// let outcome = sim.run_until(|s| p.is_stable(s.counts()), 1024, 100_000_000);
/// assert!(outcome.converged());
/// assert_eq!(p.tokens(sim.counts()), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HermanTokens;

impl HermanTokens {
    /// The adapted Herman protocol (population-size independent: `q = 4`).
    #[must_use]
    pub fn new() -> Self {
        HermanTokens
    }

    /// Decode a dense index into its [`HermanAgent`].
    #[must_use]
    fn decode(&self, index: usize) -> HermanAgent {
        debug_assert!(index < self.num_states());
        HermanAgent {
            token: index / 2 == 1,
            coin: index % 2 == 1,
        }
    }

    /// Encode a [`HermanAgent`] as its dense index.
    #[must_use]
    fn encode(&self, s: HermanAgent) -> usize {
        usize::from(s.token) * 2 + usize::from(s.coin)
    }

    /// The number of tokens held by the configuration `counts` (indexed over
    /// the four dense states; the coin bit is marginalised out).
    #[must_use]
    pub fn tokens(&self, counts: &[u64]) -> u64 {
        counts[2] + counts[3]
    }

    /// Whether `counts` is a legitimate (at most one token) configuration —
    /// the stabilization predicate of every Herman experiment and recovery
    /// probe.  Annihilation destroys tokens in pairs, so legitimacy is
    /// reached from every starting parity.
    #[must_use]
    pub fn is_stable(&self, counts: &[u64]) -> bool {
        self.tokens(counts) <= 1
    }
}

impl DenseProtocol for HermanTokens {
    type Output = bool;

    fn num_states(&self) -> usize {
        4
    }

    fn initial_state(&self) -> usize {
        // token = 1, coin = 0: the clean configuration gives every agent a
        // token, the densest starting point for annihilation.
        2
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        herman_interact(&mut u, &mut v);
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> bool {
        state / 2 == 1
    }

    fn name(&self) -> &'static str {
        "herman-tokens"
    }

    fn invariants(&self) -> ProtocolInvariants {
        let p = *self;
        ProtocolInvariants {
            conserved: vec![
                ConservedQuantity {
                    name: "tokens",
                    law: ConservationLaw::NonIncreasing,
                    value: Arc::new(move |c: &[u64]| p.tokens(c)),
                },
                ConservedQuantity {
                    name: "token-parity",
                    law: ConservationLaw::Exact,
                    value: Arc::new(move |c: &[u64]| p.tokens(c) % 2),
                },
            ],
            // The responder's pre-flip coin approves the annihilation, so δ
            // is deliberately role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        Some(self.is_stable(counts))
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<bool>> {
        Some(DecodedStint::boxed(*self, counts, seed))
    }

    fn restore_agent_stint(&self, bytes: &[u8]) -> Option<Result<BoxedAgentStint<bool>, SimError>> {
        Some(DecodedStint::restore_boxed(*self, bytes))
    }
}

impl AgentCodec for HermanTokens {
    type Native = HermanNative;

    fn native(&self) -> HermanNative {
        HermanNative
    }

    fn decode_agent(&self, index: usize) -> HermanAgent {
        self.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<HermanAgent> {
        (index < self.num_states()).then(|| self.decode(index))
    }

    fn encode_agent(&self, state: &HermanAgent) -> usize {
        self.encode(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{derive_seed, seeded_rng, BatchedSimulator, DenseSimulator, Engine};
    use rand::Rng;

    #[test]
    fn annihilation_needs_two_tokens_and_the_responder_coin() {
        let p = HermanTokens::new();
        let t = |token, coin| HermanAgent { token, coin };
        // Both tokens, responder coin heads: annihilate, coins flip.
        let (a, b) = p.transition(p.encode(t(true, false)), p.encode(t(true, true)));
        assert_eq!(p.decode(a), t(false, true));
        assert_eq!(p.decode(b), t(false, false));
        // Both tokens, responder coin tails: tokens survive.
        let (a, b) = p.transition(p.encode(t(true, true)), p.encode(t(true, false)));
        assert_eq!(p.decode(a), t(true, false));
        assert_eq!(p.decode(b), t(true, true));
        // One token: never destroyed, whatever the coins say.
        for (uc, vc) in [(false, false), (false, true), (true, false), (true, true)] {
            let (a, b) = p.transition(p.encode(t(true, uc)), p.encode(t(false, vc)));
            assert!(p.decode(a).token && !p.decode(b).token);
            let (a, b) = p.transition(p.encode(t(false, uc)), p.encode(t(true, vc)));
            assert!(!p.decode(a).token && p.decode(b).token);
        }
    }

    #[test]
    fn token_parity_is_invariant_under_every_transition() {
        let p = HermanTokens::new();
        for i in 0..4 {
            for j in 0..4 {
                let (a, b) = p.transition(i, j);
                let before = i / 2 + j / 2;
                let after = a / 2 + b / 2;
                assert_eq!(before % 2, after % 2, "parity broke on ({i}, {j})");
                assert!(after <= before, "tokens were created on ({i}, {j})");
            }
        }
    }

    #[test]
    fn dense_delta_and_native_interact_are_the_same_function() {
        let p = HermanTokens::new();
        let native = p.native();
        let mut rng = seeded_rng(5);
        for _ in 0..200 {
            let i = rng.gen_range(0..p.num_states());
            let j = rng.gen_range(0..p.num_states());
            let (a, b) = p.transition(i, j);
            let mut u = p.decode_agent(i);
            let mut v = p.decode_agent(j);
            native.interact(&mut u, &mut v, &mut rng);
            assert_eq!((p.encode_agent(&u), p.encode_agent(&v)), (a, b));
        }
    }

    #[test]
    fn every_engine_stabilizes_from_the_all_token_configuration() {
        let n = 48usize;
        let p = HermanTokens::new();
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 2,
                threads: 1,
            },
            Engine::Hybrid,
        ] {
            let mut sim = DenseSimulator::new(engine, p, n, 23).unwrap();
            let outcome = sim.run_until(
                |s| s.with_counts(|c| p.is_stable(c)),
                (n * n) as u64,
                500_000_000,
            );
            assert!(outcome.converged(), "{} failed to stabilize", engine.name());
            // Even population, even parity: annihilation runs down to zero.
            assert_eq!(sim.with_counts(|c| p.tokens(c)), 0, "{}", engine.name());
        }
    }

    /// The tolerance-banded assertion of ISSUE 8: the measured expected
    /// stabilization time from an odd near-full token load at `n = 10³`
    /// falls within 15% of `0.64n²` (the mean-field telescope predicts
    /// `2(1 − ln 2)·n(n−1) ≈ 0.614n²`, see the module docs).  Seeds are
    /// fixed, so the measurement — and hence the assertion — is
    /// deterministic; E22 repeats it at `n = 10⁴`.
    #[test]
    fn expected_stabilization_time_is_within_the_band_at_n_1000() {
        let n = 1000usize;
        let p = HermanTokens::new();
        let trials = 40u64;
        let mut total = 0u64;
        for t in 0..trials {
            let mut sim = BatchedSimulator::new(p, n, derive_seed(0x4E12_3A77, t)).unwrap();
            // n − 1 tokens: odd count on even n, so the run ends at exactly
            // one token instead of paying the Θ(n²) final even-parity step.
            let mut counts = vec![0u64; 4];
            counts[2] = n as u64 - 1;
            counts[0] = 1;
            sim.set_counts(counts).unwrap();
            let outcome = sim.run_until(|s| p.is_stable(s.counts()), 2048, 10 * (n * n) as u64);
            assert!(outcome.converged(), "trial {t} blew the 10n² budget");
            assert_eq!(p.tokens(sim.counts()), 1);
            total += sim.interactions();
        }
        let mean = total as f64 / trials as f64;
        let target = 0.64 * (n * n) as f64;
        assert!(
            (mean - target).abs() <= 0.15 * target,
            "measured mean {mean:.0} outside the 15% band around {target:.0}"
        );
    }
}
