//! Stochastic coalescence: every agent is a cluster, merges are pairwise
//! and coin-lazy, and the **total mass is conserved** — the scenario
//! matrix's conservation-law workload.
//!
//! # The source process and the adaptation
//!
//! Loh and Lubetzky (*Stochastic coalescence in logarithmic time*,
//! PAPERS.md) study `n` clusters that repeatedly merge in parallel rounds
//! and show that a size-biased merge rule coalesces to a single cluster in
//! `O(log n)` rounds.  Ported to the uniform pairwise scheduler the process
//! loses the parallel rounds and the size bias — every ordered pair is
//! equally likely — which is exactly the Kingman (mean-field) regime: with
//! `a` live clusters an interaction merges two of them with probability
//! `a(a−1)/(n(n−1)) · 1/2` (the responder's synthetic-coin bit approves the
//! merge, as in [`crate::herman`]), so full coalescence from the
//! all-singleton configuration telescopes to
//!
//! ```text
//! E[T] = Σ_{a=2}^{n} 2n(n−1)/(a(a−1)) = 2n(n−1)·(1 − 1/n) ≈ 2n²
//! ```
//!
//! interactions — the protocol-specific bound its matrix cells and E22
//! tables are checked against.  What survives the port is the state shape
//! (every agent carries a cluster **size**, dead clusters carry zero), the
//! merge asymmetry (the responder absorbs the initiator), and the defining
//! invariant: **merges conserve the total mass `Σ size`**.
//!
//! # Saturation
//!
//! The dense encoding bounds sizes by `max_size` (clean runs start from
//! all-singletons, whose total mass `n` no merge can exceed), but the
//! adversarial harness can inject configurations with mass far above `n`.
//! Merges therefore saturate at `max_size`; mass is exactly conserved
//! whenever no merge saturates (in particular from every configuration with
//! mass `≤ max_size`) and never *increases* otherwise.  [`StochasticCoalescence::mass`]
//! exposes the conserved quantity to the conformance checks.
//!
//! # Representations
//!
//! The state space is statically encoded (`q = 2(max_size + 1)`,
//! index = `2·size + coin`).  Occupancy tracks the number of *distinct live
//! sizes*, which stays `O(√n)` along clean runs (sizes sum to `n`), so the
//! count-based engines remain usable far longer than for the
//! full-occupancy ranking workloads; the [`AgentCodec`] implementation
//! covers the hybrid engine's per-agent stints.

use std::sync::Arc;

use ppsim::snapshot::{PersistState, SnapshotReader};
use ppsim::stint::{AgentCodec, BoxedAgentStint, DecodedStint};
use ppsim::{
    ConservationLaw, ConservedQuantity, DenseProtocol, Protocol, ProtocolInvariants, SimError,
};
use rand::rngs::SmallRng;

/// The native per-agent state of the coalescence protocol: a cluster size
/// (zero = dead, absorbed into another cluster) plus one synthetic-coin bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterAgent {
    /// The size of the cluster this agent represents; `0` once absorbed.
    pub size: u32,
    /// The synthetic-coin bit, flipped on every interaction.
    pub coin: bool,
}

impl PersistState for ClusterAgent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.size.persist(out);
        self.coin.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(ClusterAgent {
            size: u32::unpersist(r)?,
            coin: bool::unpersist(r)?,
        })
    }
}

/// Apply one coalescence interaction to a decoded pair — the single
/// transition rule both representations share.
#[inline]
fn coalesce_interact(u: &mut ClusterAgent, v: &mut ClusterAgent, max_size: u32) {
    // The responder's *pre-flip* coin approves the merge; the responder
    // absorbs the initiator (Loh–Lubetzky's asymmetric merge).
    if u.size > 0 && v.size > 0 && v.coin {
        // Sizes are at most `max_size < u32::MAX / 2`, so the sum cannot
        // overflow before the cap is applied.
        v.size = u.size.saturating_add(v.size).min(max_size);
        u.size = 0;
    }
    u.coin = !u.coin;
    v.coin = !v.coin;
}

/// The native stepper for per-agent stints: identical `δ` to
/// [`StochasticCoalescence`], monomorphised over [`ClusterAgent`] structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescenceNative {
    max_size: u32,
}

impl Protocol for CoalescenceNative {
    type State = ClusterAgent;
    type Output = u32;

    fn initial_state(&self) -> ClusterAgent {
        ClusterAgent {
            size: 1,
            coin: false,
        }
    }

    fn interact(&self, u: &mut ClusterAgent, v: &mut ClusterAgent, _rng: &mut SmallRng) {
        coalesce_interact(u, v, self.max_size);
    }

    fn output(&self, s: &ClusterAgent) -> u32 {
        s.size
    }

    fn name(&self) -> &'static str {
        "stochastic-coalescence"
    }
}

/// Uniform-scheduler stochastic coalescence as a statically encoded
/// [`DenseProtocol`] (`q = 2(max_size + 1)`, index = `2·size + coin`) with
/// a typed [`AgentCodec`] for hybrid per-agent stints.
///
/// # Examples
///
/// Full coalescence from the all-singleton configuration conserves the
/// total mass:
///
/// ```rust
/// use ppproto::StochasticCoalescence;
/// use ppsim::BatchedSimulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 64;
/// let p = StochasticCoalescence::new(n);
/// let mut sim = BatchedSimulator::new(p, n, 7)?;
/// let outcome = sim.run_until(|s| p.is_coalesced(s.counts()), 1024, 100_000_000);
/// assert!(outcome.converged());
/// assert_eq!(p.alive_clusters(sim.counts()), 1);
/// assert_eq!(p.mass(sim.counts()), n as u64); // one cluster of size n
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StochasticCoalescence {
    max_size: u32,
}

impl StochasticCoalescence {
    /// A coalescence protocol for a population of `n` agents: sizes live in
    /// `0..=n`, so the clean all-singleton run can never saturate.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the state space `2(n+1)` does not fit the dense
    /// index space.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "coalescence needs at least two agents, got {n}");
        let max_size = u32::try_from(n).expect("cluster-size space must fit u32");
        assert!(max_size < u32::MAX / 2, "state space 2(n+1) must fit u32");
        StochasticCoalescence { max_size }
    }

    /// The size cap (`= n` at construction).
    #[must_use]
    pub fn max_size(&self) -> usize {
        self.max_size as usize
    }

    /// Decode a dense index into its [`ClusterAgent`].
    #[must_use]
    fn decode(&self, index: usize) -> ClusterAgent {
        debug_assert!(index < self.num_states());
        ClusterAgent {
            // Fits by construction: `index < 2(max_size + 1)` and
            // `max_size < u32::MAX / 2`.
            size: (index / 2) as u32, // ppcheck: allow(narrowing-cast)
            coin: index % 2 == 1,
        }
    }

    /// Encode a [`ClusterAgent`] as its dense index.
    #[must_use]
    fn encode(&self, s: ClusterAgent) -> usize {
        s.size as usize * 2 + usize::from(s.coin)
    }

    /// The number of live clusters (`size > 0`) in the configuration
    /// `counts` (the coin bit is marginalised out).
    #[must_use]
    pub fn alive_clusters(&self, counts: &[u64]) -> u64 {
        counts[2..].iter().sum()
    }

    /// The total mass `Σ size · count` of the configuration `counts` — the
    /// conserved quantity of every merge that does not saturate.
    #[must_use]
    pub fn mass(&self, counts: &[u64]) -> u64 {
        counts
            .chunks(2)
            .enumerate()
            .map(|(size, pair)| size as u64 * pair.iter().sum::<u64>())
            .sum()
    }

    /// Whether `counts` has coalesced to at most one live cluster — the
    /// convergence predicate of the coalescence experiments.  (At most,
    /// not exactly: the adversary can inject all-dead configurations,
    /// which are already absorbing.)
    #[must_use]
    pub fn is_coalesced(&self, counts: &[u64]) -> bool {
        self.alive_clusters(counts) <= 1
    }
}

impl DenseProtocol for StochasticCoalescence {
    type Output = u32;

    fn num_states(&self) -> usize {
        (self.max_size as usize + 1) * 2
    }

    fn initial_state(&self) -> usize {
        // size = 1, coin = 0: the clean configuration is all-singletons.
        2
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        coalesce_interact(&mut u, &mut v, self.max_size);
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> u32 {
        (state / 2) as u32
    }

    fn name(&self) -> &'static str {
        "stochastic-coalescence"
    }

    fn invariants(&self) -> ProtocolInvariants {
        let p = *self;
        ProtocolInvariants {
            // Mass is exactly conserved below the saturation cap, but the
            // encoding admits oversized configurations whose merges
            // saturate — so only the non-increasing law holds on *every*
            // pair, which is what ppcheck verifies exhaustively.
            conserved: vec![ConservedQuantity {
                name: "mass",
                law: ConservationLaw::NonIncreasing,
                value: Arc::new(move |c: &[u64]| p.mass(c)),
            }],
            // The responder absorbs the initiator (Loh–Lubetzky's
            // asymmetric merge), so δ is deliberately role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        Some(self.is_coalesced(counts))
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<u32>> {
        Some(DecodedStint::boxed(*self, counts, seed))
    }

    fn restore_agent_stint(&self, bytes: &[u8]) -> Option<Result<BoxedAgentStint<u32>, SimError>> {
        Some(DecodedStint::restore_boxed(*self, bytes))
    }
}

impl AgentCodec for StochasticCoalescence {
    type Native = CoalescenceNative;

    fn native(&self) -> CoalescenceNative {
        CoalescenceNative {
            max_size: self.max_size,
        }
    }

    fn decode_agent(&self, index: usize) -> ClusterAgent {
        self.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<ClusterAgent> {
        (index < self.num_states()).then(|| self.decode(index))
    }

    fn encode_agent(&self, state: &ClusterAgent) -> usize {
        self.encode(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{seeded_rng, DenseSimulator, Engine};
    use rand::Rng;

    #[test]
    fn merges_conserve_mass_and_need_the_responder_coin() {
        let p = StochasticCoalescence::new(16);
        let c = |size, coin| ClusterAgent { size, coin };
        // Responder coin heads: responder absorbs the initiator.
        let (a, b) = p.transition(p.encode(c(3, false)), p.encode(c(5, true)));
        assert_eq!(p.decode(a), c(0, true));
        assert_eq!(p.decode(b), c(8, false));
        // Responder coin tails: no merge, coins still flip.
        let (a, b) = p.transition(p.encode(c(3, true)), p.encode(c(5, false)));
        assert_eq!(p.decode(a), c(3, false));
        assert_eq!(p.decode(b), c(5, true));
        // Dead clusters never merge.
        let (a, b) = p.transition(p.encode(c(0, false)), p.encode(c(5, true)));
        assert_eq!((p.decode(a).size, p.decode(b).size), (0, 5));
        let (a, b) = p.transition(p.encode(c(5, false)), p.encode(c(0, true)));
        assert_eq!((p.decode(a).size, p.decode(b).size), (5, 0));
    }

    #[test]
    fn oversized_merges_saturate_at_the_cap() {
        let p = StochasticCoalescence::new(16);
        let c = |size, coin| ClusterAgent { size, coin };
        let (a, b) = p.transition(p.encode(c(12, false)), p.encode(c(9, true)));
        assert_eq!(p.decode(a).size, 0);
        assert_eq!(p.decode(b).size, 16, "merge must saturate at max_size");
    }

    #[test]
    fn mass_is_never_created_by_any_transition() {
        let p = StochasticCoalescence::new(8);
        for i in 0..p.num_states() {
            for j in 0..p.num_states() {
                let (a, b) = p.transition(i, j);
                let before = i / 2 + j / 2;
                let after = a / 2 + b / 2;
                assert!(after <= before, "mass grew on ({i}, {j})");
                // Below the cap the merge is exactly conservative.
                if before <= p.max_size() {
                    assert_eq!(after, before, "mass leaked on ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn dense_delta_and_native_interact_are_the_same_function() {
        let p = StochasticCoalescence::new(13);
        let native = p.native();
        let mut rng = seeded_rng(5);
        for _ in 0..500 {
            let i = rng.gen_range(0..p.num_states());
            let j = rng.gen_range(0..p.num_states());
            let (a, b) = p.transition(i, j);
            let mut u = p.decode_agent(i);
            let mut v = p.decode_agent(j);
            native.interact(&mut u, &mut v, &mut rng);
            assert_eq!((p.encode_agent(&u), p.encode_agent(&v)), (a, b));
        }
    }

    #[test]
    fn every_engine_coalesces_fully_and_conserves_mass() {
        let n = 48usize;
        let p = StochasticCoalescence::new(n);
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 2,
                threads: 1,
            },
            Engine::Hybrid,
        ] {
            let mut sim = DenseSimulator::new(engine, p, n, 29).unwrap();
            let outcome = sim.run_until(
                |s| s.with_counts(|c| p.is_coalesced(c)),
                (n * n) as u64,
                500_000_000,
            );
            assert!(outcome.converged(), "{} failed to coalesce", engine.name());
            let counts = sim.counts();
            assert_eq!(p.alive_clusters(&counts), 1, "{}", engine.name());
            assert_eq!(p.mass(&counts), n as u64, "{} leaked mass", engine.name());
        }
    }

    #[test]
    fn coalesces_from_an_arbitrary_overweight_configuration() {
        // Mass above n: merges saturate, the run still coalesces, and the
        // mass never increases along the way.
        let n = 32usize;
        let p = StochasticCoalescence::new(n);
        let mut counts = vec![0u64; p.num_states()];
        counts[2 * n] = 20; // twenty clusters already at the cap
        counts[2 * 5 + 1] = 10;
        counts[0] = 2;
        let m0 = p.mass(&counts);
        let mut sim = DenseSimulator::new(Engine::Sequential, p, n, 31).unwrap();
        sim.set_counts(counts).unwrap();
        let outcome = sim.run_until(
            |s| s.with_counts(|c| p.is_coalesced(c)),
            (n * n) as u64,
            100_000_000,
        );
        assert!(outcome.converged());
        let counts = sim.counts();
        assert!(p.mass(&counts) <= m0);
        assert_eq!(p.alive_clusters(&counts), 1);
    }
}
