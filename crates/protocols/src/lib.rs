//! # `ppproto` — auxiliary population protocols
//!
//! The counting protocols of *On Counting the Population Size* (PODC 2019) are
//! compositions of a small set of auxiliary protocols described in Section 2 of the
//! paper.  This crate implements each of them, both as **components** (plain state
//! structs plus interaction functions that a composed protocol can call) and — where
//! it is meaningful on its own — as a **standalone [`ppsim::Protocol`]** used to
//! validate the corresponding lemma in isolation:
//!
//! | module | paper | claim validated |
//! |---|---|---|
//! | [`epidemic`] | Lemma 3 | one-way epidemics complete in `O(n log n)` interactions |
//! | [`junta`] | Lemma 4 | junta levels reach `log log n ± O(1)`, junta is small |
//! | [`phase_clock`] | Lemma 5 | phases of `Θ(n log n)` interactions |
//! | [`synthetic_coin`] | Appendix D / \[11\] | uniform random bits from the schedule |
//! | [`leader_election`] | Lemma 6 / \[18\] | unique leader in `O(n log² n)` interactions |
//! | [`fast_leader_election`] | Lemma 7 / Appendix D / \[8\] | unique leader in `O(n log n)` interactions |
//! | [`load_balancing`] | Lemma 8 / \[10\] | classical and powers-of-two load balancing |
//! | [`composition`] | Algorithms 2/3, lines 1–4 | the shared junta + phase-clock base the composed counting protocols run on, sequential and dense (interned) |
//! | [`ranking`] | self-stabilization (related work, PAPERS.md) | reconvergence to distinct ranks from arbitrary configurations — the standing workload of [`ppsim::adversary`] |
//! | [`herman`] | Herman 1990 / Bruna et al. 2015 (related work, PAPERS.md) | coin-lazy token annihilation stabilizes to ≤ 1 token in `≈ 2(1−ln 2)·n²` interactions (banded assertion) |
//! | [`coalescence`] | Loh–Lubetzky 2011 (related work, PAPERS.md) | mass-conserving cluster merges coalesce in `≈ 2n²` interactions |
//! | [`tradeoff_election`] | Austin–Berenbrink et al. 2025 (related work, PAPERS.md) | silent self-stabilizing leader election; probe alphabet `K` trades space `K·n` against recovery time |
//! | [`scenarios`] | — | the standard protocol × engine × init × fault conformance matrix built from all of the above |
//!
//! All components are uniform: none of their transition rules depends on the
//! population size.  Constants that the paper fixes for asymptotic convenience
//! (clock hours `m`, junta-level offsets, round counts) are exposed as parameters
//! with the paper's value documented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalescence;
pub mod composition;
pub mod epidemic;
pub mod fast_leader_election;
pub mod herman;
pub mod junta;
pub mod leader_election;
pub mod load_balancing;
pub mod phase_clock;
pub mod ranking;
pub mod scenarios;
pub mod synthetic_coin;
pub mod tradeoff_election;

pub use coalescence::{ClusterAgent, CoalescenceNative, StochasticCoalescence};
pub use composition::{DenseComposition, SyncComposition, SyncCtx, SyncedAgent, SyncedComponent};
pub use epidemic::{max_broadcast, or_broadcast, DenseEpidemic, OneWayEpidemic};
pub use fast_leader_election::{
    FastLeaderAgent, FastLeaderElection, FastLeaderElectionConfig, FastLeaderElectionProtocol,
    FastLeaderState,
};
pub use herman::{HermanAgent, HermanNative, HermanTokens};
pub use junta::{
    all_inactive, dense_all_inactive, dense_junta_size, dense_max_level, junta_interact,
    junta_size, max_level, DenseJunta, JuntaProtocol, JuntaState,
};
pub use leader_election::{
    contender_count, LeaderElection, LeaderElectionAgent, LeaderElectionConfig,
    LeaderElectionProtocol, LeaderState,
};
pub use load_balancing::{
    po2_balance, po2_total_tokens, split_evenly, ClassicalLoadBalancing, PowersOfTwoLoadBalancing,
    EMPTY_LOAD,
};
pub use phase_clock::{
    sync_interact, DenseSyncClock, PhaseClock, PhaseClockState, SyncOutcome, SyncState,
    SynchronizedClockProtocol,
};
pub use ranking::{RankAgent, RankingNative, SelfStabRanking};
pub use synthetic_coin::{coin_interact, CoinMode, CoinState};
pub use tradeoff_election::{ElectionAgent, ElectionNative, TradeoffElection};
