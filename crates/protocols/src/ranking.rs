//! Self-stabilizing ranking: `n` agents converge to `n` pairwise-distinct
//! ranks `0..n` from **any** starting configuration.
//!
//! This is the standing workload of the adversarial fault model
//! ([`ppsim::adversary`]): unlike the paper's counting protocols — which are
//! analysed from the all-`q₀` initial configuration — ranking is *defined* by
//! recovery from arbitrary configurations.  Its legitimate configurations are
//! exactly those with all ranks distinct, and from every other configuration
//! the protocol makes progress, so any transient fault (adversarial
//! initialization, in-run corruption of `k` agents) is eventually repaired.
//! That makes "interactions until all ranks are distinct again" a
//! well-defined recovery metric, measured by experiment E21.
//!
//! # The rule
//!
//! Each agent holds a rank `r ∈ {0, …, n−1}` and one synthetic-coin bit
//! (Appendix D of the source paper: transition-level randomness is recovered
//! from the schedule by flipping a bit on every interaction, see
//! [`crate::synthetic_coin`]).  On an interaction between initiator `u` and
//! responder `v`:
//!
//! * if `rank(u) == rank(v)` (a **collision**), the initiator re-ranks to
//!   `rank(u) + 1 + coin(v)·stride (mod n)` — a short probe or a long probe,
//!   selected by the responder's coin;
//! * both agents flip their coin (so the coin stream keeps mixing and the
//!   probe choice is unbiased in the long run).
//!
//! The transition is a pure function `δ(u, v)` of the two states, so the
//! protocol runs unchanged on all four engines.
//!
//! # Why it self-stabilizes
//!
//! While a rank is duplicated, some rank in `0..n` is free (pigeonhole), and
//! a colliding pair has positive probability of meeting; the `+1` probe alone
//! walks the full cycle `Z_n`, so a sequence of collisions reaching a free
//! rank always exists and the all-distinct configurations are the only
//! absorbing ones (ranks never change once all are distinct — coins keep
//! flipping, but the *output* is silent).  The long probe (`stride ≈ n/2`)
//! cuts the expected walk length to a free rank roughly in half on adversarial
//! "one big block" configurations; convergence from the clean all-zero
//! configuration still costs `Θ(n³)` interactions in the worst tail (the last
//! duplicate must meet **and** land), which is why E21 runs ranking at small
//! `n` and why the count-based engines — whose block cost grows with the
//! occupancy `q_occ ≈ n` — are exercised at `n ≤ 256`.
//!
//! # Representations
//!
//! The state space is statically encoded (`q = 2n`, index = `2·rank + coin`),
//! so the protocol is *count-hostile by design*: a converged configuration
//! occupies `n` of the `2n` indices, the exact regime where the hybrid
//! engine's occupancy monitor abandons the dense representation.  The
//! [`AgentCodec`] implementation lets hybrid per-agent stints step native
//! [`RankAgent`] structs instead of interned indices.

use ppsim::snapshot::{PersistState, SnapshotReader};
use ppsim::stint::{AgentCodec, BoxedAgentStint, DecodedStint};
use ppsim::{DenseProtocol, Protocol, SimError};
use rand::rngs::SmallRng;

/// The native per-agent state of the ranking protocol: a rank plus one
/// synthetic-coin bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RankAgent {
    /// The agent's current rank, in `0..n`.
    pub rank: u32,
    /// The synthetic-coin bit, flipped on every interaction.
    pub coin: bool,
}

impl PersistState for RankAgent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.rank.persist(out);
        self.coin.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(RankAgent {
            rank: u32::unpersist(r)?,
            coin: bool::unpersist(r)?,
        })
    }
}

/// Apply one ranking interaction to a decoded pair — the single transition
/// rule both representations share (the dense `δ` decodes, calls this, and
/// re-encodes; the native stint calls it directly).
#[inline]
fn rank_interact(u: &mut RankAgent, v: &mut RankAgent, ranks: u32, stride: u32) {
    if u.rank == v.rank {
        // The responder's *pre-flip* coin picks the probe length.
        let jump = if v.coin { 1 + stride } else { 1 };
        u.rank = (u.rank + jump) % ranks;
    }
    u.coin = !u.coin;
    v.coin = !v.coin;
}

/// The native stepper for per-agent stints: identical `δ` to
/// [`SelfStabRanking`], monomorphised over [`RankAgent`] structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankingNative {
    ranks: u32,
    stride: u32,
}

impl Protocol for RankingNative {
    type State = RankAgent;
    type Output = u32;

    fn initial_state(&self) -> RankAgent {
        RankAgent {
            rank: 0,
            coin: false,
        }
    }

    fn interact(&self, u: &mut RankAgent, v: &mut RankAgent, _rng: &mut SmallRng) {
        rank_interact(u, v, self.ranks, self.stride);
    }

    fn output(&self, s: &RankAgent) -> u32 {
        s.rank
    }

    fn name(&self) -> &'static str {
        "self-stab-ranking"
    }
}

/// Self-stabilizing ranking over `n` ranks as a statically encoded
/// [`DenseProtocol`] (`q = 2n`, index = `2·rank + coin`) with a typed
/// [`AgentCodec`] for hybrid per-agent stints.
///
/// # Examples
///
/// Reconvergence from an adversarial all-same configuration:
///
/// ```rust
/// use ppproto::SelfStabRanking;
/// use ppsim::{DenseProtocol, Simulator, DenseAdapter};
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 32;
/// let proto = SelfStabRanking::new(n);
/// let mut sim = Simulator::new(DenseAdapter(proto.clone()), n, 7)?;
/// // Every agent already starts at rank 0 — the worst legal pile-up.
/// let outcome = sim.run_until(
///     |s| {
///         let mut counts = vec![0u64; proto.num_states()];
///         for &st in s.states() { counts[st as usize] += 1; }
///         proto.is_ranked(&counts)
///     },
///     (n * n) as u64,
///     1_000_000_000,
/// );
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfStabRanking {
    ranks: u32,
    stride: u32,
}

impl SelfStabRanking {
    /// A ranking protocol for a population of `n` agents (`n` ranks).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `2n` does not fit the dense index space.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "ranking needs at least two agents, got {n}");
        let ranks = u32::try_from(n).expect("rank space must fit u32");
        assert!(ranks <= u32::MAX / 2, "state space 2n must fit u32");
        // Long-probe displacement: about half the cycle, made odd so short
        // and long probes never alias on even n.
        let stride = (ranks / 2) | 1;
        SelfStabRanking { ranks, stride }
    }

    /// The number of ranks `n`.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.ranks as usize
    }

    /// Decode a dense index into its [`RankAgent`].
    #[must_use]
    fn decode(&self, index: usize) -> RankAgent {
        debug_assert!(index < self.num_states());
        RankAgent {
            rank: (index / 2) as u32,
            coin: index % 2 == 1,
        }
    }

    /// Encode a [`RankAgent`] as its dense index.
    #[must_use]
    fn encode(&self, s: RankAgent) -> usize {
        s.rank as usize * 2 + usize::from(s.coin)
    }

    /// The number of distinct ranks held by the configuration `counts`
    /// (indexed over the `2n` dense states; the coin bit is marginalised
    /// out).
    #[must_use]
    pub fn distinct_ranks(&self, counts: &[u64]) -> usize {
        counts
            .chunks(2)
            .filter(|pair| pair.iter().sum::<u64>() > 0)
            .count()
    }

    /// Whether `counts` is a legitimate (all-ranks-distinct) configuration —
    /// the convergence predicate of every ranking experiment and recovery
    /// probe.
    #[must_use]
    pub fn is_ranked(&self, counts: &[u64]) -> bool {
        counts.chunks(2).all(|pair| pair.iter().sum::<u64>() <= 1)
    }
}

impl DenseProtocol for SelfStabRanking {
    type Output = u32;

    fn num_states(&self) -> usize {
        self.ranks as usize * 2
    }

    fn initial_state(&self) -> usize {
        0
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        rank_interact(&mut u, &mut v, self.ranks, self.stride);
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> u32 {
        (state / 2) as u32
    }

    fn name(&self) -> &'static str {
        "self-stab-ranking"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        ppsim::ProtocolInvariants {
            // Ranks move on collisions, so no additive quantity survives —
            // the protocol's structure lives in its legitimate set instead.
            conserved: Vec::new(),
            // Only the initiator re-ranks; the responder's coin picks the
            // probe, so δ is deliberately role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        Some(self.is_ranked(counts))
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<u32>> {
        Some(DecodedStint::boxed(*self, counts, seed))
    }

    fn restore_agent_stint(&self, bytes: &[u8]) -> Option<Result<BoxedAgentStint<u32>, SimError>> {
        Some(DecodedStint::restore_boxed(*self, bytes))
    }
}

impl AgentCodec for SelfStabRanking {
    type Native = RankingNative;

    fn native(&self) -> RankingNative {
        RankingNative {
            ranks: self.ranks,
            stride: self.stride,
        }
    }

    fn decode_agent(&self, index: usize) -> RankAgent {
        self.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<RankAgent> {
        (index < self.num_states()).then(|| self.decode(index))
    }

    fn encode_agent(&self, state: &RankAgent) -> usize {
        self.encode(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{seeded_rng, BatchedSimulator, DenseSimulator, Engine};
    use rand::Rng;

    #[test]
    fn transition_bumps_only_collisions_and_always_flips_coins() {
        let p = SelfStabRanking::new(8);
        // Distinct ranks: ranks unchanged, both coins flip.
        let (a, b) = p.transition(
            p.encode(RankAgent {
                rank: 3,
                coin: false,
            }),
            p.encode(RankAgent {
                rank: 5,
                coin: true,
            }),
        );
        assert_eq!(
            p.decode(a),
            RankAgent {
                rank: 3,
                coin: true
            }
        );
        assert_eq!(
            p.decode(b),
            RankAgent {
                rank: 5,
                coin: false
            }
        );
        // Collision, responder coin 0: short probe (+1).
        let (a, _) = p.transition(
            p.encode(RankAgent {
                rank: 7,
                coin: false,
            }),
            p.encode(RankAgent {
                rank: 7,
                coin: false,
            }),
        );
        assert_eq!(p.decode(a).rank, 0, "short probe wraps mod n");
        // Collision, responder coin 1: long probe (+1 + stride).
        let (a, _) = p.transition(
            p.encode(RankAgent {
                rank: 0,
                coin: false,
            }),
            p.encode(RankAgent {
                rank: 0,
                coin: true,
            }),
        );
        // Long probe = (rank + 1 + stride) mod n with stride = (n/2)|1 = 5.
        assert_eq!(p.decode(a).rank, 6);
    }

    #[test]
    fn dense_delta_and_native_interact_are_the_same_function() {
        let p = SelfStabRanking::new(13);
        let native = p.native();
        let mut rng = seeded_rng(5);
        for _ in 0..500 {
            let i = rng.gen_range(0..p.num_states());
            let j = rng.gen_range(0..p.num_states());
            let (a, b) = p.transition(i, j);
            let mut u = p.decode_agent(i);
            let mut v = p.decode_agent(j);
            native.interact(&mut u, &mut v, &mut rng);
            assert_eq!((p.encode_agent(&u), p.encode_agent(&v)), (a, b));
        }
    }

    #[test]
    fn ranked_predicate_marginalises_the_coin() {
        let p = SelfStabRanking::new(3);
        // Ranks {0, 1, 2} once each, arbitrary coins: legitimate.
        assert!(p.is_ranked(&[1, 0, 0, 1, 1, 0]));
        assert_eq!(p.distinct_ranks(&[1, 0, 0, 1, 1, 0]), 3);
        // Rank 1 duplicated across the two coin values: not legitimate.
        assert!(!p.is_ranked(&[1, 0, 1, 1, 0, 0]));
        assert_eq!(p.distinct_ranks(&[1, 0, 1, 1, 0, 0]), 2);
    }

    #[test]
    fn converges_from_the_all_zero_pileup_on_the_batched_engine() {
        let n = 48;
        let p = SelfStabRanking::new(n);
        let mut sim = BatchedSimulator::new(p, n, 11).unwrap();
        let outcome = sim.run_until(|s| p.is_ranked(s.counts()), (n * n) as u64, 1_000_000_000);
        assert!(outcome.converged(), "ranking must self-stabilize");
        assert_eq!(p.distinct_ranks(sim.counts()), n);
    }

    #[test]
    fn every_engine_reconverges_from_an_adversarial_block() {
        // All agents piled on a single rank with mixed coins — the worst
        // "one big block" configuration — on all four engines.
        let n = 48usize;
        let p = SelfStabRanking::new(n);
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 2,
                threads: 1,
            },
            Engine::Hybrid,
        ] {
            let mut counts = vec![0u64; p.num_states()];
            counts[2 * 7] = (n as u64) / 2;
            counts[2 * 7 + 1] = (n as u64) - (n as u64) / 2;
            let mut sim = DenseSimulator::new(engine, p, n, 23).unwrap();
            sim.set_counts(counts).unwrap();
            let outcome = sim.run_until(
                |s| s.with_counts(|c| p.is_ranked(c)),
                (n * n) as u64,
                2_000_000_000,
            );
            assert!(outcome.converged(), "{} failed to recover", engine.name());
        }
    }
}
