//! Self-stabilizing leader election with a **space–time trade-off knob**:
//! a rank-based silent protocol whose probe alphabet of size `K` trades
//! state space (`q = K·n`) against recovery time.
//!
//! # The source result and the adaptation
//!
//! Austin, Berenbrink et al. 2025 (*Self-Stabilizing Leader Election:
//! Time–Space Trade-offs*, PAPERS.md) give silent self-stabilizing leader
//! election protocols whose stabilization time improves as the per-agent
//! state space grows.  This module ports the *shape* of that trade-off onto
//! the ranking machinery this repository already validates
//! ([`crate::ranking`]): each agent holds a rank `r ∈ {0, …, n−1}` plus a
//! probe tag `t ∈ {0, …, K−1}`, and on a rank **collision** the initiator
//! re-ranks by
//!
//! ```text
//! rank(u) ← rank(u) + 1 + tag(v)·stride   (mod n),   stride = (n/K) | 1
//! ```
//!
//! while both tags advance (`t ← t + 1 mod K`) on *every* interaction — the
//! tag is a `K`-valued synthetic coin (Appendix D of the source paper),
//! deriving its randomness from each agent's participation count.  The `K`
//! probe displacements `{1, 1 + s, …, 1 + (K−1)s}` spread a collision's
//! escape targets over `K` interleaved lattices of the cycle `Z_n`, and
//! that is exactly what the space buys: **dispersal from an adversarial
//! pile-up accelerates monotonically with `K`** (measured at `n = 256`,
//! interactions until half the ranks are occupied from a single-rank
//! block: ≈ 442k at `K = 2`, ≈ 135k at `K = 4`, ≈ 69k at `K = 8` — the
//! curve E22 tabulates).  The *total* silent-stabilization time is
//! `K`-independent in this variant: every interaction offers exactly one
//! tag-selected landing target, so the final duplicate's per-collision
//! probability of hitting the free rank is `≈ 1/n` for every `K`, and the
//! end-game rendezvous dominates.  The port therefore reproduces the
//! source result's *shape* — extra per-agent space purchases faster
//! recovery from adversarial configurations — in the transient phase that
//! the fault-model experiments actually measure.  At `K = 2` the protocol
//! *is* [`crate::ranking::SelfStabRanking`] up to the tag/coin renaming.
//!
//! # Why it elects a leader
//!
//! The absorbing configurations are exactly the all-ranks-distinct ones
//! (ranks never change once collisions are gone; tags keep cycling but are
//! not part of the output), and by pigeonhole every such configuration has
//! **exactly one agent at rank 0 — the leader**.  Self-stabilization is the
//! ranking argument verbatim: while a rank is duplicated some rank is free,
//! the `+1` probe (available whenever the responder's tag is 0, which
//! recurs since tags cycle) walks the full cycle, so from every
//! configuration a path to all-distinct exists and is eventually taken.
//! The protocol is *silent*: after stabilization the output
//! ([`DenseProtocol::output`] = "is my rank 0?") never changes again.
//!
//! # Representations
//!
//! The state space is statically encoded (`q = K·n`,
//! index = `rank·K + tag`).  Like ranking, the protocol is count-hostile
//! (converged occupancy is `n` of the `K·n` indices), so the count-based
//! engines are exercised at small `n` and the large-`n` cells of the
//! scenario matrix run on the per-agent representations; the
//! [`AgentCodec`] implementation covers hybrid per-agent stints.

use ppsim::snapshot::{PersistState, SnapshotReader};
use ppsim::stint::{AgentCodec, BoxedAgentStint, DecodedStint};
use ppsim::{DenseProtocol, Protocol, SimError};
use rand::rngs::SmallRng;

/// The native per-agent state of the trade-off election: a rank plus a
/// `K`-valued probe tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElectionAgent {
    /// The agent's current rank, in `0..n`; rank 0 marks the leader once
    /// all ranks are distinct.
    pub rank: u32,
    /// The probe tag, in `0..K`, advanced by one on every interaction.
    pub tag: u32,
}

impl PersistState for ElectionAgent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.rank.persist(out);
        self.tag.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(ElectionAgent {
            rank: u32::unpersist(r)?,
            tag: u32::unpersist(r)?,
        })
    }
}

/// Apply one election interaction to a decoded pair — the single
/// transition rule both representations share.
#[inline]
fn elect_interact(
    u: &mut ElectionAgent,
    v: &mut ElectionAgent,
    ranks: u32,
    tags: u32,
    stride: u32,
) {
    if u.rank == v.rank {
        // The responder's *pre-advance* tag picks the probe lattice.
        u.rank = (u.rank + 1 + v.tag * stride) % ranks;
    }
    u.tag = (u.tag + 1) % tags;
    v.tag = (v.tag + 1) % tags;
}

/// The native stepper for per-agent stints: identical `δ` to
/// [`TradeoffElection`], monomorphised over [`ElectionAgent`] structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionNative {
    ranks: u32,
    tags: u32,
    stride: u32,
}

impl Protocol for ElectionNative {
    type State = ElectionAgent;
    type Output = bool;

    fn initial_state(&self) -> ElectionAgent {
        ElectionAgent { rank: 0, tag: 0 }
    }

    fn interact(&self, u: &mut ElectionAgent, v: &mut ElectionAgent, _rng: &mut SmallRng) {
        elect_interact(u, v, self.ranks, self.tags, self.stride);
    }

    fn output(&self, s: &ElectionAgent) -> bool {
        s.rank == 0
    }

    fn name(&self) -> &'static str {
        "tradeoff-leader-election"
    }
}

/// Space–time trade-off self-stabilizing leader election as a statically
/// encoded [`DenseProtocol`] (`q = K·n`, index = `rank·K + tag`) with a
/// typed [`AgentCodec`] for hybrid per-agent stints.
///
/// # Examples
///
/// Electing a unique leader from the clean all-rank-0 pile-up:
///
/// ```rust
/// use ppproto::TradeoffElection;
/// use ppsim::BatchedSimulator;
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let n = 32;
/// let p = TradeoffElection::new(n, 4);
/// let mut sim = BatchedSimulator::new(p, n, 7)?;
/// let outcome = sim.run_until(|s| p.is_stable(s.counts()), 1024, 1_000_000_000);
/// assert!(outcome.converged());
/// assert_eq!(p.leaders(sim.counts()), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TradeoffElection {
    ranks: u32,
    tags: u32,
    stride: u32,
}

impl TradeoffElection {
    /// An election protocol for a population of `n` agents with a probe
    /// alphabet of size `k` (the space knob: `q = k·n`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `k < 2`, `k > 64`, or `k·n` does not fit the
    /// dense index space.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 2, "election needs at least two agents, got {n}");
        assert!(
            (2..=64).contains(&k),
            "probe alphabet must be 2..=64, got {k}"
        );
        let ranks = u32::try_from(n).expect("rank space must fit u32");
        let tags = k as u32;
        assert!(ranks <= u32::MAX / tags, "state space k·n must fit u32");
        // One probe lattice per tag value, spaced n/k apart and made odd so
        // the lattices never alias on even n.
        let stride = (ranks / tags).max(1) | 1;
        TradeoffElection {
            ranks,
            tags,
            stride,
        }
    }

    /// The number of ranks `n`.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.ranks as usize
    }

    /// The probe-alphabet size `K` (the space knob).
    #[must_use]
    pub fn probe_alphabet(&self) -> usize {
        self.tags as usize
    }

    /// Decode a dense index into its [`ElectionAgent`].
    #[must_use]
    fn decode(&self, index: usize) -> ElectionAgent {
        debug_assert!(index < self.num_states());
        ElectionAgent {
            rank: (index / self.tags as usize) as u32,
            tag: (index % self.tags as usize) as u32,
        }
    }

    /// Encode an [`ElectionAgent`] as its dense index.
    #[must_use]
    fn encode(&self, s: ElectionAgent) -> usize {
        s.rank as usize * self.tags as usize + s.tag as usize
    }

    /// The number of agents currently at rank 0 (the tag is marginalised
    /// out).  Exactly one in every absorbing configuration.
    #[must_use]
    pub fn leaders(&self, counts: &[u64]) -> u64 {
        counts[..self.tags as usize].iter().sum()
    }

    /// The number of distinct ranks held by the configuration `counts`.
    #[must_use]
    pub fn distinct_ranks(&self, counts: &[u64]) -> usize {
        counts
            .chunks(self.tags as usize)
            .filter(|group| group.iter().sum::<u64>() > 0)
            .count()
    }

    /// Whether `counts` is an absorbing (all-ranks-distinct) configuration,
    /// in which exactly one agent — the leader — holds rank 0.
    #[must_use]
    pub fn is_stable(&self, counts: &[u64]) -> bool {
        counts
            .chunks(self.tags as usize)
            .all(|group| group.iter().sum::<u64>() <= 1)
    }
}

impl DenseProtocol for TradeoffElection {
    type Output = bool;

    fn num_states(&self) -> usize {
        self.ranks as usize * self.tags as usize
    }

    fn initial_state(&self) -> usize {
        0
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        elect_interact(&mut u, &mut v, self.ranks, self.tags, self.stride);
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> bool {
        state < self.tags as usize
    }

    fn name(&self) -> &'static str {
        "tradeoff-leader-election"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        ppsim::ProtocolInvariants {
            // Ranks move on collisions and tags cycle, so no additive
            // quantity survives; the structure lives in the absorbing set.
            conserved: Vec::new(),
            // Only the initiator re-ranks, on the responder's probe
            // lattice, so δ is deliberately role-asymmetric.
            role_symmetric: Some(false),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        Some(self.is_stable(counts))
    }

    fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<bool>> {
        Some(DecodedStint::boxed(*self, counts, seed))
    }

    fn restore_agent_stint(&self, bytes: &[u8]) -> Option<Result<BoxedAgentStint<bool>, SimError>> {
        Some(DecodedStint::restore_boxed(*self, bytes))
    }
}

impl AgentCodec for TradeoffElection {
    type Native = ElectionNative;

    fn native(&self) -> ElectionNative {
        ElectionNative {
            ranks: self.ranks,
            tags: self.tags,
            stride: self.stride,
        }
    }

    fn decode_agent(&self, index: usize) -> ElectionAgent {
        self.decode(index)
    }

    fn try_decode_agent(&self, index: usize) -> Option<ElectionAgent> {
        (index < self.num_states()).then(|| self.decode(index))
    }

    fn encode_agent(&self, state: &ElectionAgent) -> usize {
        self.encode(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{seeded_rng, DenseSimulator, Engine};
    use rand::Rng;

    #[test]
    fn collisions_probe_on_the_responder_lattice_and_tags_always_advance() {
        let n = 16;
        let p = TradeoffElection::new(n, 4);
        let stride = p.stride;
        let a = |rank, tag| ElectionAgent { rank, tag };
        // Distinct ranks: ranks unchanged, both tags advance mod K.
        let (x, y) = p.transition(p.encode(a(3, 0)), p.encode(a(5, 3)));
        assert_eq!(p.decode(x), a(3, 1));
        assert_eq!(p.decode(y), a(5, 0));
        // Collision: initiator jumps 1 + tag(v)·stride on the cycle.
        for vtag in 0..4 {
            let (x, _) = p.transition(p.encode(a(7, 2)), p.encode(a(7, vtag)));
            assert_eq!(p.decode(x).rank, (7 + 1 + vtag * stride) % n as u32);
            assert_eq!(p.decode(x).tag, 3);
        }
    }

    #[test]
    fn k_equals_2_matches_self_stab_ranking() {
        // At K = 2 the probe rule degenerates to ranking's short/long coin
        // probe: same stride, same jumps, tag ≡ coin.
        let n = 24usize;
        let p = TradeoffElection::new(n, 2);
        let r = crate::ranking::SelfStabRanking::new(n);
        for i in 0..p.num_states() {
            for j in 0..p.num_states() {
                assert_eq!(p.transition(i, j), r.transition(i, j), "({i}, {j})");
            }
        }
    }

    #[test]
    fn dense_delta_and_native_interact_are_the_same_function() {
        let p = TradeoffElection::new(13, 8);
        let native = p.native();
        let mut rng = seeded_rng(5);
        for _ in 0..500 {
            let i = rng.gen_range(0..p.num_states());
            let j = rng.gen_range(0..p.num_states());
            let (a, b) = p.transition(i, j);
            let mut u = p.decode_agent(i);
            let mut v = p.decode_agent(j);
            native.interact(&mut u, &mut v, &mut rng);
            assert_eq!((p.encode_agent(&u), p.encode_agent(&v)), (a, b));
        }
    }

    #[test]
    fn stable_configurations_have_exactly_one_leader() {
        let p = TradeoffElection::new(3, 2);
        // Ranks {0, 1, 2} once each, arbitrary tags: stable, one leader.
        assert!(p.is_stable(&[1, 0, 0, 1, 1, 0]));
        assert_eq!(p.leaders(&[1, 0, 0, 1, 1, 0]), 1);
        assert_eq!(p.distinct_ranks(&[1, 0, 0, 1, 1, 0]), 3);
        // Rank 0 duplicated across tags: not stable, two "leaders".
        assert!(!p.is_stable(&[1, 1, 0, 1, 0, 0]));
        assert_eq!(p.leaders(&[1, 1, 0, 1, 0, 0]), 2);
    }

    #[test]
    fn every_engine_elects_from_the_clean_pileup() {
        let n = 48usize;
        let p = TradeoffElection::new(n, 4);
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 2,
                threads: 1,
            },
            Engine::Hybrid,
        ] {
            let mut sim = DenseSimulator::new(engine, p, n, 23).unwrap();
            let outcome = sim.run_until(
                |s| s.with_counts(|c| p.is_stable(c)),
                (n * n) as u64,
                2_000_000_000,
            );
            assert!(outcome.converged(), "{} failed to elect", engine.name());
            assert_eq!(sim.with_counts(|c| p.leaders(c)), 1, "{}", engine.name());
        }
    }

    /// The space knob buys dispersal speed: from the adversarial
    /// single-rank block, a larger probe alphabet reaches half-occupancy of
    /// the rank space in far fewer interactions (the module docs' measured
    /// curve; E22 tabulates it across `K ∈ {2, 4, 8}`).  Seeds are fixed,
    /// so the comparison is deterministic.
    #[test]
    fn larger_probe_alphabets_disperse_pileups_faster() {
        let n = 256usize;
        let trials = 6u64;
        let mean_spread_time = |k: usize| -> f64 {
            let p = TradeoffElection::new(n, k);
            let mut total = 0u64;
            for t in 0..trials {
                let mut counts = vec![0u64; p.num_states()];
                // All agents piled on rank 7, tags spread over the alphabet.
                for a in 0..n {
                    counts[7 * k + a % k] += 1;
                }
                let mut sim =
                    DenseSimulator::new(Engine::Sequential, p, n, ppsim::derive_seed(99, t))
                        .unwrap();
                sim.set_counts(counts).unwrap();
                let outcome = sim.run_until(
                    |s| s.with_counts(|c| p.distinct_ranks(c) >= n / 2),
                    64,
                    2_000_000_000,
                );
                assert!(outcome.converged());
                total += sim.interactions();
            }
            total as f64 / trials as f64
        };
        let slow = mean_spread_time(2);
        let fast = mean_spread_time(8);
        assert!(
            2.0 * fast < slow,
            "K = 8 dispersal ({fast:.0}) should clearly beat K = 2 ({slow:.0})"
        );
    }
}
