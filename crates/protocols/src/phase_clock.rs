//! Junta-driven phase clocks — Lemma 5 of the paper, following [6, 18].
//!
//! A phase clock lets all agents divide time into *phases* of `Θ(n log n)`
//! interactions without knowing `n`.  Every agent keeps a clock value
//! (`hour ∈ {0, …, m−1}` for a constant `m`).  In every interaction both agents
//! adopt the *later* of their two hours with respect to the circular order modulo
//! `m`; to keep the clock running, **junta members** (agents whose junta belief bit
//! is still set, see [`crate::junta`]) additionally advance by one step when they
//! meet an agent showing the same hour.  An agent *ticks* — enters a new phase —
//! whenever its hour wraps around from `m − 1` to `0`.
//!
//! Lemma 5 (\[18\]): for any constant `c ≥ 0` there is a constant `m = m(c)` such that
//! w.h.p. every phase overlap `[D_start, D_end]` (from the moment the last agent
//! enters the phase until the first agent leaves it) lasts between `c·n·log n` and
//! `c·n·log n + Θ(n log n)` interactions.  Larger `m` buys longer phases; the
//! experiments calibrate `m` so that a phase is long enough for one-way epidemics
//! (Lemma 3) and for powers-of-two load balancing (Lemma 8) to complete.
//!
//! The `first_tick` flag mirrors the paper's `firstTick_v`: it is raised when the
//! agent's phase counter is incremented and is consumed by the composed protocol the
//! next time the agent *initiates* an interaction (the paper's special per-phase
//! actions are guarded by `firstTick_u` of the initiator).

use rand::rngs::SmallRng;

use ppsim::{PersistState, Protocol, SimError, SnapshotReader};

use crate::junta::{junta_interact, JuntaState};

/// Per-agent phase-clock state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PhaseClockState {
    /// Position on the clock face, `0 ≤ hour < m`.
    pub hour: u8,
    /// Number of completed revolutions (phases) since the last (re-)initialisation.
    ///
    /// The paper keeps only a constant-size phase counter (`phase mod 5` for the
    /// Search Protocol, a stopped counter for error detection); composed protocols
    /// reduce this absolute counter modulo whatever they need.  The state-space
    /// accounting experiment (E15) performs the same reduction before counting
    /// distinct states.
    pub phase: u32,
    /// Raised when `phase` was incremented; consumed (cleared) by the composed
    /// protocol when this agent next initiates an interaction.
    pub first_tick: bool,
}

impl PhaseClockState {
    /// A freshly initialised clock (hour 0, phase 0).
    #[must_use]
    pub fn new() -> Self {
        PhaseClockState {
            hour: 0,
            phase: 0,
            first_tick: false,
        }
    }

    /// Re-initialise the clock (used when an agent meets a higher junta level,
    /// Algorithm 2/3 line 1–2).
    pub fn reset(&mut self) {
        *self = PhaseClockState::new();
    }
}

/// The phase-clock transition rule, parameterised by the number of hours `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseClock {
    hours: u8,
}

impl PhaseClock {
    /// Default number of hours for a standalone clock.
    pub const DEFAULT_HOURS: u8 = 16;

    /// Create a clock with `hours = m` positions.
    ///
    /// # Panics
    ///
    /// Panics if `hours < 4`; the circular-order comparison needs at least four
    /// positions to be meaningful.
    #[must_use]
    pub fn new(hours: u8) -> Self {
        assert!(
            hours >= 4,
            "a phase clock needs at least 4 hours, got {hours}"
        );
        PhaseClock { hours }
    }

    /// The number of hours `m` on the clock face.
    #[must_use]
    pub fn hours(&self) -> u8 {
        self.hours
    }

    /// Apply one interaction of the phase clock to both agents.
    ///
    /// `u_junta` / `v_junta` indicate whether the respective agent currently
    /// believes it is a junta member and therefore drives the clock.  Returns
    /// `(u_ticked, v_ticked)` — whether each agent entered a new phase.
    ///
    /// In addition to the hour, the *phase counter* is synchronised: an agent that
    /// adopts the partner's (later) hour also adopts the partner's phase number if
    /// that is larger.  This is how an agent whose clock was re-initialised (because
    /// it met a higher junta level) re-joins the common phase count instead of
    /// keeping a permanent offset; the paper keeps only a small modular counter, and
    /// the adoption rule induces exactly the modular behaviour its algorithms rely
    /// on.
    pub fn interact(
        &self,
        u: &mut PhaseClockState,
        u_junta: bool,
        v: &mut PhaseClockState,
        v_junta: bool,
    ) -> (bool, bool) {
        let m = i32::from(self.hours);
        let hu = i32::from(u.hour);
        let hv = i32::from(v.hour);
        let d = (hv - hu).rem_euclid(m);
        let mut u_ticked = false;
        let mut v_ticked = false;
        if d == 0 {
            // Same hour: first reconcile possibly diverged phase counters (this can
            // only happen right after a re-initialisation), then junta members take
            // one extra step to keep the clock running.
            u_ticked |= Self::adopt_phase(u, v.phase);
            v_ticked |= Self::adopt_phase(v, u.phase);
            if u_junta {
                u_ticked |= self.advance(u);
            }
            if v_junta {
                v_ticked |= self.advance(v);
            }
        } else if d <= m / 2 {
            // v is ahead of u in circular order: u catches up.
            u_ticked = Self::adopt(u, v);
        } else {
            // u is ahead of v: v catches up.
            v_ticked = Self::adopt(v, u);
        }
        (u_ticked, v_ticked)
    }

    /// Advance a clock by one hour; returns `true` if it wrapped (ticked).
    fn advance(&self, s: &mut PhaseClockState) -> bool {
        let wrapped = s.hour + 1 == self.hours;
        s.hour = (s.hour + 1) % self.hours;
        if wrapped {
            Self::enter_phase(s, s.phase.saturating_add(1));
        }
        wrapped
    }

    /// Adopt the hour and phase of a partner that is ahead in circular order;
    /// returns `true` if this agent entered a new phase.
    fn adopt(behind: &mut PhaseClockState, ahead: &PhaseClockState) -> bool {
        let wrapped = ahead.hour < behind.hour;
        behind.hour = ahead.hour;
        let target_phase = if wrapped {
            // Crossing the m−1 → 0 boundary is a tick even if the partner's absolute
            // counter lags (which it cannot after synchronisation, but a freshly
            // reset partner could carry 0).
            ahead.phase.max(behind.phase.saturating_add(1))
        } else {
            ahead.phase
        };
        Self::adopt_phase(behind, target_phase)
    }

    /// Raise this agent's phase counter to `phase` if larger; returns `true` if it
    /// increased (the agent entered a new phase).
    fn adopt_phase(s: &mut PhaseClockState, phase: u32) -> bool {
        if phase > s.phase {
            Self::enter_phase(s, phase);
            true
        } else {
            false
        }
    }

    fn enter_phase(s: &mut PhaseClockState, phase: u32) {
        s.phase = phase;
        s.first_tick = true;
    }
}

impl Default for PhaseClock {
    fn default() -> Self {
        PhaseClock::new(Self::DEFAULT_HOURS)
    }
}

/// Combined per-agent state of the junta process plus a phase clock.
///
/// This is the synchronisation base shared by both counting protocols
/// (Algorithms 2 and 3, lines 1–4): junta election, re-initialisation on meeting a
/// higher level, and the junta-driven clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SyncState {
    /// Junta (level) process state.
    pub junta: JuntaState,
    /// Phase-clock state.
    pub clock: PhaseClockState,
}

impl SyncState {
    /// The common initial state.
    #[must_use]
    pub fn new() -> Self {
        SyncState {
            junta: JuntaState::new(),
            clock: PhaseClockState::new(),
        }
    }
}

/// Outcome of one synchronisation step for the two participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct SyncOutcome {
    /// The initiator's clock was re-initialised because it met a higher junta level.
    pub u_reset: bool,
    /// The responder's clock was re-initialised because it met a higher junta level.
    pub v_reset: bool,
    /// The initiator's clock ticked into a new phase during this interaction.
    pub u_ticked: bool,
    /// The responder's clock ticked into a new phase during this interaction.
    pub v_ticked: bool,
}

/// Perform the shared synchronisation preamble of the counting protocols on the two
/// agents: re-initialise the clock of an agent whose junta level is superseded, run
/// the junta process, then run the phase clock.
///
/// An agent's clock (and, in the composed protocols, all downstream protocol state)
/// is re-initialised when
///
/// 1. it meets an agent on a strictly **higher** junta level (Algorithm 2/3,
///    line 1 of the paper — applied here to whichever agent sees the higher level,
///    which is the same rule under exchange of initiator/responder roles), or
/// 2. its **own** level increases in this interaction (it is still winning the
///    level race).
///
/// Rule 2 is not spelled out in the paper's pseudo-code but is required for the
/// clean-state property its analysis relies on ("all agents start the protocols at
/// the maximal junta level from a clean state"): without it, the `O(√n log n)`
/// agents that *create* the maximal level would carry clock state accumulated while
/// the level race was still in progress.  Resetting on every own-level increase only
/// strengthens the property and does not change any asymptotic bound.
pub fn sync_interact(clock: &PhaseClock, u: &mut SyncState, v: &mut SyncState) -> SyncOutcome {
    let u_level_before = u.junta.level;
    let v_level_before = v.junta.level;
    junta_interact(&mut u.junta, &mut v.junta);
    let u_reset = v_level_before > u_level_before || u.junta.level > u_level_before;
    let v_reset = u_level_before > v_level_before || v.junta.level > v_level_before;
    if u_reset {
        u.clock.reset();
    }
    if v_reset {
        v.clock.reset();
    }
    let (u_ticked, v_ticked) =
        clock.interact(&mut u.clock, u.junta.junta, &mut v.clock, v.junta.junta);
    SyncOutcome {
        u_reset,
        v_reset,
        u_ticked,
        v_ticked,
    }
}

/// Standalone protocol running the junta process plus a phase clock — used to
/// validate Lemma 5 (experiment E03) and as a reference for the composed protocols.
///
/// The output of an agent is its current phase number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynchronizedClockProtocol {
    clock: PhaseClock,
}

impl SynchronizedClockProtocol {
    /// Create the protocol with a clock of `hours` positions.
    ///
    /// # Panics
    ///
    /// Panics if `hours < 4` (see [`PhaseClock::new`]).
    #[must_use]
    pub fn new(hours: u8) -> Self {
        SynchronizedClockProtocol {
            clock: PhaseClock::new(hours),
        }
    }

    /// The underlying clock rule.
    #[must_use]
    pub fn clock(&self) -> &PhaseClock {
        &self.clock
    }
}

impl Default for SynchronizedClockProtocol {
    fn default() -> Self {
        Self::new(PhaseClock::DEFAULT_HOURS)
    }
}

impl Protocol for SynchronizedClockProtocol {
    type State = SyncState;
    type Output = u32;

    fn initial_state(&self) -> SyncState {
        SyncState::new()
    }

    fn interact(&self, initiator: &mut SyncState, responder: &mut SyncState, _rng: &mut SmallRng) {
        // The wrapping protocol exposes no per-interaction outcome; the
        // mutated agent states carry everything downstream.
        let _ = sync_interact(&self.clock, initiator, responder);
        // The standalone protocol has no per-phase actions, so the firstTick flags
        // are consumed immediately by the initiator.
        initiator.clock.first_tick = false;
    }

    fn output(&self, state: &SyncState) -> u32 {
        state.clock.phase
    }

    fn name(&self) -> &'static str {
        "junta-phase-clock"
    }
}

/// The junta-driven phase clock ([`SynchronizedClockProtocol`]) over an
/// enumerated state space, for the batched count-based engine
/// ([`BatchedSimulator`](ppsim::BatchedSimulator)).
///
/// A [`SyncState`] is encoded as the mixed-radix index
///
/// ```text
/// ((((level·2 + active)·2 + junta)·hours + hour)·(max_phase+1) + phase)·2 + first_tick
/// ```
///
/// with the junta level capped at `max_level` and the *absolute* phase counter
/// **saturating** at `max_phase`, so
/// `q = 4·(max_level+1)·hours·(max_phase+1)·2`.  Saturation (rather than
/// modular wrap-around) keeps the phase-adoption rule's `max` comparisons
/// meaningful, at the price of a finite observation horizon: the dense process
/// is *exactly* the sequential one until some agent reaches `max_phase`, which
/// is the regime every phase-length experiment measures (the paper itself only
/// ever keeps small modular counters).  Choose `max_phase` one larger than the
/// last phase you need to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseSyncClock {
    clock: PhaseClock,
    max_level: u8,
    max_phase: u32,
}

impl DenseSyncClock {
    /// Create a dense junta-driven clock.
    ///
    /// `hours` is the clock-face size `m` (at least 4, see [`PhaseClock::new`]);
    /// `max_level` caps the junta level (see
    /// [`DenseJunta`](crate::junta::DenseJunta) for how to size it); the phase
    /// counter saturates at `max_phase`.
    ///
    /// # Panics
    ///
    /// Panics if `hours < 4`.
    #[must_use]
    pub fn new(hours: u8, max_level: u8, max_phase: u32) -> Self {
        DenseSyncClock {
            clock: PhaseClock::new(hours),
            max_level,
            max_phase,
        }
    }

    /// The underlying clock rule.
    #[must_use]
    pub fn clock(&self) -> &PhaseClock {
        &self.clock
    }

    /// The phase ceiling after which the dense counter saturates.
    #[must_use]
    pub fn max_phase(&self) -> u32 {
        self.max_phase
    }

    /// Decode a dense index into a [`SyncState`].
    #[must_use]
    pub fn decode(&self, index: usize) -> SyncState {
        let first_tick = index & 1 != 0;
        let mut rest = index >> 1;
        let phases = self.max_phase as usize + 1;
        let phase = (rest % phases) as u32;
        rest /= phases;
        let hours = usize::from(self.clock.hours());
        let hour = (rest % hours) as u8;
        rest /= hours;
        let junta = rest & 1 != 0;
        let active = rest & 2 != 0;
        let level = (rest >> 2) as u8;
        SyncState {
            junta: JuntaState {
                level,
                active,
                junta,
            },
            clock: PhaseClockState {
                hour,
                phase,
                first_tick,
            },
        }
    }

    /// Encode a [`SyncState`] as a dense index, saturating the junta level and
    /// the phase counter at their caps.
    #[must_use]
    pub fn encode(&self, state: SyncState) -> usize {
        let level = usize::from(state.junta.level.min(self.max_level));
        let junta_bits =
            (level << 2) | (usize::from(state.junta.active) << 1) | usize::from(state.junta.junta);
        let phases = self.max_phase as usize + 1;
        let phase = state.clock.phase.min(self.max_phase) as usize;
        ((junta_bits * usize::from(self.clock.hours()) + usize::from(state.clock.hour)) * phases
            + phase)
            * 2
            + usize::from(state.clock.first_tick)
    }
}

impl Default for DenseSyncClock {
    /// Defaults sized for phase-length experiments: 16 hours, junta levels up
    /// to 15, phases observable up to 7.
    fn default() -> Self {
        Self::new(PhaseClock::DEFAULT_HOURS, 15, 7)
    }
}

impl ppsim::DenseProtocol for DenseSyncClock {
    type Output = u32;

    fn num_states(&self) -> usize {
        4 * (usize::from(self.max_level) + 1)
            * usize::from(self.clock.hours())
            * (self.max_phase as usize + 1)
            * 2
    }

    fn initial_state(&self) -> usize {
        self.encode(SyncState::new())
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        // Only the post-interaction states matter for the dense image.
        let _ = sync_interact(&self.clock, &mut u, &mut v);
        // As in SynchronizedClockProtocol: no per-phase actions, so the
        // initiator consumes its firstTick flag immediately.
        u.clock.first_tick = false;
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> u32 {
        self.decode(state).clock.phase
    }

    fn name(&self) -> &'static str {
        "dense-junta-phase-clock"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        let p = *self;
        ppsim::ProtocolInvariants {
            // The embedded junta race only ever deactivates agents, so the
            // active census never grows; the clock itself is cyclic and
            // conserves nothing (and has no legitimate set to declare).
            conserved: vec![ppsim::ConservedQuantity {
                name: "active-agents",
                law: ppsim::ConservationLaw::NonIncreasing,
                value: std::sync::Arc::new(move |c: &[u64]| {
                    c.iter()
                        .enumerate()
                        .filter(|(s, _)| p.decode(*s).junta.active)
                        .map(|(_, &n)| n)
                        .sum()
                }),
            }],
            // The initiator consumes its firstTick flag, so δ is
            // role-asymmetric.
            role_symmetric: Some(false),
        }
    }
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for PhaseClockState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.hour.persist(out);
        self.phase.persist(out);
        self.first_tick.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(PhaseClockState {
            hour: u8::unpersist(r)?,
            phase: u32::unpersist(r)?,
            first_tick: bool::unpersist(r)?,
        })
    }
}

/// Snapshot codec: junta state, then clock state (see [`ppsim::snapshot`]).
impl PersistState for SyncState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.junta.persist(out);
        self.clock.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(SyncState {
            junta: JuntaState::unpersist(r)?,
            clock: PhaseClockState::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{BatchedSimulator, DenseProtocol, Simulator};

    fn clock() -> PhaseClock {
        PhaseClock::new(8)
    }

    #[test]
    #[should_panic(expected = "at least 4 hours")]
    fn too_few_hours_is_rejected() {
        let _ = PhaseClock::new(3);
    }

    #[test]
    fn equal_hours_only_junta_advances() {
        let c = clock();
        let mut u = PhaseClockState::new();
        let mut v = PhaseClockState::new();
        let (tu, tv) = c.interact(&mut u, true, &mut v, false);
        assert_eq!((u.hour, v.hour), (1, 0));
        assert!(!tu && !tv);
    }

    #[test]
    fn behind_agent_adopts_the_later_hour() {
        let c = clock();
        let mut u = PhaseClockState {
            hour: 2,
            ..PhaseClockState::new()
        };
        let mut v = PhaseClockState {
            hour: 4,
            ..PhaseClockState::new()
        };
        c.interact(&mut u, false, &mut v, false);
        assert_eq!((u.hour, v.hour), (4, 4));

        // Symmetric case: the responder is behind.
        let mut u = PhaseClockState {
            hour: 5,
            ..PhaseClockState::new()
        };
        let mut v = PhaseClockState {
            hour: 4,
            ..PhaseClockState::new()
        };
        c.interact(&mut u, false, &mut v, false);
        assert_eq!((u.hour, v.hour), (5, 5));
    }

    #[test]
    fn circular_comparison_handles_wraparound() {
        let c = clock(); // m = 8
                         // u at 7, v at 1: v is *ahead* by 2 in circular order, so u adopts 1 and ticks.
        let mut u = PhaseClockState {
            hour: 7,
            ..PhaseClockState::new()
        };
        let mut v = PhaseClockState {
            hour: 1,
            ..PhaseClockState::new()
        };
        let (tu, tv) = c.interact(&mut u, false, &mut v, false);
        assert_eq!((u.hour, v.hour), (1, 1));
        assert!(tu, "wrapping from hour 7 to hour 1 is a tick");
        assert!(!tv);
        assert_eq!(u.phase, 1);
        assert!(u.first_tick);
    }

    #[test]
    fn junta_member_ticks_when_advancing_over_the_boundary() {
        let c = clock();
        let mut u = PhaseClockState {
            hour: 7,
            ..PhaseClockState::new()
        };
        let mut v = PhaseClockState {
            hour: 7,
            ..PhaseClockState::new()
        };
        let (tu, tv) = c.interact(&mut u, true, &mut v, false);
        assert!(tu);
        assert!(!tv);
        assert_eq!(u.hour, 0);
        assert_eq!(u.phase, 1);
        assert_eq!(v.hour, 7);
    }

    #[test]
    fn reset_clears_clock() {
        let mut s = PhaseClockState {
            hour: 5,
            phase: 3,
            first_tick: true,
        };
        s.reset();
        assert_eq!(s, PhaseClockState::new());
    }

    #[test]
    fn sync_interact_resets_the_lower_level_agent() {
        let c = clock();
        let mut u = SyncState::new();
        let mut v = SyncState::new();
        v.junta.level = 3;
        u.clock.hour = 6;
        u.clock.phase = 2;
        let out = sync_interact(&c, &mut u, &mut v);
        assert!(out.u_reset);
        assert!(!out.v_reset);
        assert_eq!(u.clock.phase, 0, "reset clears the phase counter");
    }

    #[test]
    fn phases_advance_and_stay_synchronised() {
        // After the junta process settles, phases must advance and the spread between
        // the slowest and fastest agent should stay within one phase almost always.
        let n = 500usize;
        let proto = SynchronizedClockProtocol::new(16);
        let mut sim = Simulator::new(proto, n, 13).unwrap();

        // Let the junta settle and the clock start running.
        sim.run(200_000);
        let start: Vec<u32> = sim.states().iter().map(|s| s.clock.phase).collect();
        let start_max = *start.iter().max().unwrap();

        sim.run(2_000_000);
        let phases: Vec<u32> = sim.states().iter().map(|s| s.clock.phase).collect();
        let max = *phases.iter().max().unwrap();
        let min = *phases.iter().min().unwrap();
        assert!(max > start_max, "the clock must keep ticking");
        assert!(max - min <= 1, "phase spread too large: {min}..{max}");
    }

    #[test]
    fn dense_clock_encoding_roundtrips() {
        let d = DenseSyncClock::new(8, 6, 4);
        for index in 0..d.num_states() {
            assert_eq!(d.encode(d.decode(index)), index, "roundtrip at {index}");
        }
        assert_eq!(d.num_states(), 4 * 7 * 8 * 5 * 2);
        // The initial state is all-zeros except the junta's (active, junta) bits.
        let init = d.decode(d.initial_state());
        assert_eq!(init, SyncState::new());
    }

    #[test]
    fn dense_transition_matches_sync_interact_below_the_caps() {
        let d = DenseSyncClock::new(8, 6, 4);
        // Sample a grid of state pairs rather than all (q², too slow in debug).
        let q = d.num_states();
        for i in (0..q).step_by(7) {
            for j in (0..q).step_by(11) {
                let (a, b) = d.transition(i, j);
                let mut u = d.decode(i);
                let mut v = d.decode(j);
                let _ = sync_interact(&PhaseClock::new(8), &mut u, &mut v);
                u.clock.first_tick = false;
                // Saturate exactly as the dense protocol documents.
                u.junta.level = u.junta.level.min(6);
                v.junta.level = v.junta.level.min(6);
                u.clock.phase = u.clock.phase.min(4);
                v.clock.phase = v.clock.phase.min(4);
                assert_eq!(d.decode(a), u, "initiator mismatch at ({i}, {j})");
                assert_eq!(d.decode(b), v, "responder mismatch at ({i}, {j})");
            }
        }
    }

    #[test]
    fn dense_clock_phases_advance_and_stay_synchronised() {
        // The batched analogue of phases_advance_and_stay_synchronised: after
        // the junta settles, phases advance together with spread ≤ 1.
        let n = 20_000u64;
        let d = DenseSyncClock::default();
        let mut sim = BatchedSimulator::new(d, n as usize, 13).unwrap();

        let phase_bounds = |s: &BatchedSimulator<DenseSyncClock>| {
            let mut min = u32::MAX;
            let mut max = 0u32;
            for (idx, &c) in s.counts().iter().enumerate() {
                if c > 0 {
                    let p = s.protocol().decode(idx).clock.phase;
                    min = min.min(p);
                    max = max.max(p);
                }
            }
            (min, max)
        };

        // Drive until every agent has completed at least 3 phases (well below
        // the saturation ceiling of 7).
        let outcome = sim.run_until(|s| phase_bounds(s).0 >= 3, n, u64::MAX >> 1);
        assert!(outcome.converged(), "the dense clock must keep ticking");
        let (min, max) = phase_bounds(&sim);
        assert!(max <= d.max_phase(), "saturation ceiling respected");
        assert!(max - min <= 1, "phase spread too large: {min}..{max}");
    }

    #[test]
    fn phase_lengths_scale_like_n_log_n() {
        // Rough Lemma 5 check at one size: measure the number of interactions per
        // phase once the clock is running and compare against n log2 n.
        let n = 400usize;
        let proto = SynchronizedClockProtocol::new(16);
        let mut sim = Simulator::new(proto, n, 4).unwrap();
        sim.run(200_000); // settle
        let phase0 = sim.states().iter().map(|s| s.clock.phase).min().unwrap();
        let start = sim.interactions();
        // Wait for every agent to advance by 3 phases.
        let target = phase0 + 3;
        let outcome = sim.run_until(
            move |s| s.states().iter().all(|st| st.clock.phase >= target),
            (n / 2) as u64,
            200_000_000,
        );
        let t = outcome.expect_converged("phase clock progress") - start;
        let per_phase = t as f64 / 3.0;
        let nlogn = n as f64 * (n as f64).log2();
        assert!(
            per_phase > 0.2 * nlogn && per_phase < 30.0 * nlogn,
            "per-phase interaction count {per_phase:.0} is far from Θ(n log n) = {nlogn:.0}"
        );
    }
}
