//! Load balancing — the classical process of \[10\] and the powers-of-two variant of
//! Lemma 8.
//!
//! * **Classical load balancing** (\[10\], used by the `CountExact` stages): when two
//!   agents with loads `ℓ_u`, `ℓ_v` interact, the loads become
//!   `(⌊(ℓ_u+ℓ_v)/2⌋, ⌈(ℓ_u+ℓ_v)/2⌉)`.  After `O(n log n)` interactions the
//!   discrepancy is constant w.h.p.
//! * **Powers-of-two load balancing** (Section 3.1, Lemma 8): agents store only the
//!   *logarithm* `k` of their load (`k = −1` denotes an empty agent).  A balancing
//!   step is permitted only when exactly one of the two agents is empty and the
//!   other holds more than one token; then a load of `2^k` splits into two loads of
//!   `2^{k−1}`.  Lemma 8: if a single agent starts with `2^κ ≤ 3n/4` tokens and all
//!   others are empty, then after `16 n log n` interactions the maximum logarithmic
//!   load is `0` w.h.p. (every non-empty agent holds exactly one token).

use rand::rngs::SmallRng;

use ppsim::Protocol;

/// The logarithmic-load value that denotes an empty agent in the powers-of-two
/// process (`k = −1`).
pub const EMPTY_LOAD: i32 = -1;

/// Classical load-balancing step of \[10\]: split the combined load as evenly as
/// possible, the initiator receiving the smaller half.
///
/// # Examples
///
/// ```rust
/// let mut u = 7u64;
/// let mut v = 2u64;
/// ppproto::split_evenly(&mut u, &mut v);
/// assert_eq!((u, v), (4, 5));
/// assert_eq!(u + v, 9, "the total load is conserved");
/// ```
pub fn split_evenly(u: &mut u64, v: &mut u64) {
    let total = *u + *v;
    *u = total / 2;
    *v = total - total / 2;
}

/// Powers-of-two load-balancing step (Equation (1) of the paper).
///
/// `k` values are logarithmic loads: an agent with `k ≥ 0` holds `2^k` tokens, an
/// agent with `k = −1` ([`EMPTY_LOAD`]) holds none.  A split happens only when one
/// agent is empty and the other holds more than one token (`k > 0`); both end up
/// with `k − 1`.
///
/// # Examples
///
/// ```rust
/// use ppproto::{po2_balance, EMPTY_LOAD};
/// let mut u = 5i32;          // 32 tokens
/// let mut v = EMPTY_LOAD;    // empty
/// po2_balance(&mut u, &mut v);
/// assert_eq!((u, v), (4, 4)); // 16 + 16 tokens
///
/// let mut a = 0i32;          // one token: may not split further
/// let mut b = EMPTY_LOAD;
/// po2_balance(&mut a, &mut b);
/// assert_eq!((a, b), (0, EMPTY_LOAD));
/// ```
pub fn po2_balance(ku: &mut i32, kv: &mut i32) {
    let min = (*ku).min(*kv);
    let max = (*ku).max(*kv);
    if min == EMPTY_LOAD && max > 0 {
        *ku = max - 1;
        *kv = max - 1;
    }
}

/// Total number of tokens represented by a slice of logarithmic loads.
#[must_use]
pub fn po2_total_tokens(ks: &[i32]) -> u128 {
    ks.iter()
        .filter(|&&k| k >= 0)
        .map(|&k| 1u128 << u32::try_from(k).expect("logarithmic loads are small"))
        .sum()
}

/// The standalone classical load-balancing protocol of \[10\].
///
/// States are plain token counts; experiments seed an arbitrary initial load vector
/// and measure the number of interactions until the discrepancy (max − min) drops to
/// a constant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassicalLoadBalancing;

impl ClassicalLoadBalancing {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        ClassicalLoadBalancing
    }
}

impl Protocol for ClassicalLoadBalancing {
    type State = u64;
    type Output = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn interact(&self, initiator: &mut u64, responder: &mut u64, _rng: &mut SmallRng) {
        split_evenly(initiator, responder);
    }

    fn output(&self, state: &u64) -> u64 {
        *state
    }

    fn name(&self) -> &'static str {
        "classical-load-balancing"
    }
}

/// The standalone powers-of-two load-balancing protocol of Lemma 8.
///
/// States are logarithmic loads `k ∈ {−1, 0, 1, …}`; the output is the actual number
/// of tokens held (`2^k`, or `0` for an empty agent).  Experiments seed one agent
/// with `k = κ` and measure the number of interactions until `max_v k_v ≤ 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowersOfTwoLoadBalancing;

impl PowersOfTwoLoadBalancing {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        PowersOfTwoLoadBalancing
    }
}

impl Protocol for PowersOfTwoLoadBalancing {
    type State = i32;
    type Output = u64;

    fn initial_state(&self) -> i32 {
        EMPTY_LOAD
    }

    fn interact(&self, initiator: &mut i32, responder: &mut i32, _rng: &mut SmallRng) {
        po2_balance(initiator, responder);
    }

    fn output(&self, state: &i32) -> u64 {
        if *state >= 0 {
            1u64 << u32::try_from(*state).expect("logarithmic loads are small")
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "powers-of-two-load-balancing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn split_evenly_conserves_and_orders() {
        let mut u = 10u64;
        let mut v = 3u64;
        split_evenly(&mut u, &mut v);
        assert_eq!(u + v, 13);
        assert_eq!(u, 6);
        assert_eq!(v, 7);
        assert!(v >= u, "the responder receives the rounding surplus");
    }

    #[test]
    fn split_evenly_is_idempotent_on_balanced_loads() {
        let mut u = 4u64;
        let mut v = 4u64;
        split_evenly(&mut u, &mut v);
        assert_eq!((u, v), (4, 4));
    }

    #[test]
    fn po2_balance_only_splits_into_an_empty_agent() {
        // Non-empty pair: nothing happens.
        let mut u = 2i32;
        let mut v = 3i32;
        po2_balance(&mut u, &mut v);
        assert_eq!((u, v), (2, 3));

        // Empty + single token: nothing happens (k = 0 may not split).
        let mut u = EMPTY_LOAD;
        let mut v = 0i32;
        po2_balance(&mut u, &mut v);
        assert_eq!((u, v), (EMPTY_LOAD, 0));

        // Empty + 2^3 tokens: both get 2^2.
        let mut u = EMPTY_LOAD;
        let mut v = 3i32;
        po2_balance(&mut u, &mut v);
        assert_eq!((u, v), (2, 2));

        // Two empty agents: nothing happens.
        let mut u = EMPTY_LOAD;
        let mut v = EMPTY_LOAD;
        po2_balance(&mut u, &mut v);
        assert_eq!((u, v), (EMPTY_LOAD, EMPTY_LOAD));
    }

    #[test]
    fn po2_balance_conserves_tokens() {
        let mut u = 6i32;
        let mut v = EMPTY_LOAD;
        let before = po2_total_tokens(&[u, v]);
        po2_balance(&mut u, &mut v);
        assert_eq!(po2_total_tokens(&[u, v]), before);
    }

    #[test]
    fn po2_total_tokens_sums_powers() {
        assert_eq!(po2_total_tokens(&[EMPTY_LOAD, 0, 1, 3]), 1 + 2 + 8);
        assert_eq!(po2_total_tokens(&[]), 0);
    }

    #[test]
    fn classical_balancing_flattens_a_point_load() {
        let n = 256usize;
        let mut sim = Simulator::new(ClassicalLoadBalancing::new(), n, 21).unwrap();
        sim.states_mut()[0] = 4 * n as u64; // average load 4
        let outcome = sim.run_until(
            |s| {
                let max = s.states().iter().max().unwrap();
                let min = s.states().iter().min().unwrap();
                max - min <= 1
            },
            n as u64,
            50_000_000,
        );
        let t = outcome.expect_converged("classical load balancing");
        let total: u64 = sim.states().iter().sum();
        assert_eq!(total, 4 * n as u64, "tokens are conserved");
        let n_f = n as f64;
        assert!(
            (t as f64) < 60.0 * n_f * n_f.log2(),
            "discrepancy reduction took {t} interactions"
        );
    }

    #[test]
    fn po2_balancing_from_single_source_reaches_unit_loads_within_lemma8_budget() {
        // Lemma 8: 2^κ ≤ 3n/4 tokens on one agent spread to unit loads within
        // 16 n log n interactions w.h.p.
        let n = 1024usize;
        let kappa = 9; // 512 = n/2 ≤ 3n/4 tokens
        let mut sim = Simulator::new(PowersOfTwoLoadBalancing::new(), n, 77).unwrap();
        sim.states_mut()[0] = kappa;
        let budget = (16.0 * n as f64 * (n as f64).log2()) as u64;
        let outcome = sim.run_until(|s| s.states().iter().all(|&k| k <= 0), n as u64, budget);
        assert!(
            outcome.converged(),
            "powers-of-two balancing did not finish within the Lemma 8 budget of {budget}"
        );
        assert_eq!(
            po2_total_tokens(sim.states()),
            1u128 << kappa,
            "tokens conserved"
        );
    }

    #[test]
    fn po2_output_is_the_actual_load() {
        let p = PowersOfTwoLoadBalancing::new();
        assert_eq!(p.output(&EMPTY_LOAD), 0);
        assert_eq!(p.output(&0), 1);
        assert_eq!(p.output(&5), 32);
    }
}
