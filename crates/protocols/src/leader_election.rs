//! Stable uniform leader election — Lemma 6 of the paper, following \[18\].
//!
//! The protocol of Gąsieniec & Stachowiak elects a unique leader in `O(n log² n)`
//! interactions with `O(log log n)` states, w.h.p.  Its structure, as summarised in
//! Section 2 of the reproduced paper:
//!
//! * all agents run the junta process and an (inner) phase clock;
//! * every agent starts as a **contender**; in every inner phase each contender
//!   draws one random bit (a synthetic coin); contenders that drew `0` while some
//!   contender drew `1` become followers at the end of the phase — so the set of
//!   contenders roughly halves per phase while never becoming empty;
//! * agents additionally run an **outer phase clock** which advances only once per
//!   inner phase (at the agent's `firstTick`); when the outer clock completes a
//!   revolution — after `Θ(log n)` inner phases, i.e. `Θ(n log² n)` interactions —
//!   the agent sets `leaderDone`, at which time exactly one contender remains
//!   w.h.p.
//!
//! This module implements the election as a **component** ([`LeaderElection`] +
//! [`LeaderState`]) that a composed protocol drives with its own junta/phase-clock
//! information (this is how `popcount::Approximate` uses it), plus a standalone
//! [`LeaderElectionProtocol`] that bundles the synchronisation base for validating
//! Lemma 6 in isolation (experiment E04).

use rand::rngs::SmallRng;

use ppsim::{PersistState, Protocol, SimError, SnapshotReader};

use crate::phase_clock::{sync_interact, PhaseClock, PhaseClockState, SyncState};
use crate::synthetic_coin::{coin_interact, CoinState};

/// Tunable constants of the leader-election component.
///
/// The paper treats both as unspecified constants; they trade reliability against
/// running time.  The defaults are calibrated for populations up to ~10⁶ agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderElectionConfig {
    /// Number of hours `m` of the *outer* phase clock.  One revolution of the outer
    /// clock takes `Θ(m · log n)` inner phases; it must be long enough for the
    /// contender set to shrink to a single agent (≈ `3 log₂ n` phases).
    pub outer_hours: u8,
}

impl Default for LeaderElectionConfig {
    fn default() -> Self {
        LeaderElectionConfig { outer_hours: 48 }
    }
}

/// Per-agent state of the leader-election component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaderState {
    /// Whether this agent is still a leader contender (`leader_v` in the paper).
    pub contender: bool,
    /// Whether this agent has concluded the election (`leaderDone_v`).
    pub done: bool,
    /// Synthetic-coin parity bit.
    pub coin: CoinState,
    /// The outer phase clock (advanced once per inner phase).
    pub outer: PhaseClockState,
    /// The random bit this contender drew for the current inner phase.
    pub bit: bool,
    /// Epidemic flag: some contender drew `1` in the inner phase with parity
    /// [`heads_parity`](Self::heads_parity).
    pub heads_seen: bool,
    /// Parity (inner phase number modulo 2) that [`heads_seen`](Self::heads_seen)
    /// refers to, so that flags from the previous phase are not confused with the
    /// current one.
    pub heads_parity: bool,
}

impl LeaderState {
    /// The common initial state: everyone is a contender.
    #[must_use]
    pub fn new() -> Self {
        LeaderState {
            contender: true,
            done: false,
            coin: CoinState::new(),
            outer: PhaseClockState::new(),
            bit: false,
            heads_seen: false,
            heads_parity: false,
        }
    }

    /// Re-initialise the election state (used when an agent meets a higher junta
    /// level, Algorithm 2 line 1–2).
    pub fn reset(&mut self) {
        *self = LeaderState::new();
    }
}

impl Default for LeaderState {
    fn default() -> Self {
        Self::new()
    }
}

/// The leader-election transition rule (component form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderElection {
    outer_clock: PhaseClock,
}

impl LeaderElection {
    /// Create the component from its configuration.
    #[must_use]
    pub fn new(config: LeaderElectionConfig) -> Self {
        LeaderElection {
            outer_clock: PhaseClock::new(config.outer_hours),
        }
    }

    /// Apply one interaction of the leader-election component.
    ///
    /// * `u` is the initiator, `v` the responder.
    /// * `u_first_tick` — whether this is the initiator's first initiated
    ///   interaction of a new inner phase (the consumed `firstTick_u` flag).
    /// * `u_phase` / `v_phase` — the agents' current inner-phase numbers.
    /// * `u_level` / `v_level` — the agents' junta levels; all cross-agent exchanges
    ///   are restricted to agents on the same level so that stale information from
    ///   superseded levels cannot influence the election on the maximal level.
    /// * `u_junta` / `v_junta` — junta belief bits, used to drive the outer clock.
    #[allow(clippy::too_many_arguments)]
    pub fn interact(
        &self,
        u: &mut LeaderState,
        v: &mut LeaderState,
        u_first_tick: bool,
        u_phase: u32,
        v_phase: u32,
        u_level: u8,
        v_level: u8,
        u_junta: bool,
        v_junta: bool,
    ) {
        // Synthetic coin: both agents flip; the initiator's random bit is the
        // responder's previous parity.
        let (u_bit, _v_bit) = coin_interact(&mut u.coin, &mut v.coin);
        let same_level = u_level == v_level;

        if u_first_tick {
            // End of the previous inner phase for u: contenders that drew 0 while
            // some contender drew 1 become followers.  A contender that drew 1 never
            // becomes a follower, so at least one contender always survives.
            if u.contender && !u.bit && u.heads_seen {
                u.contender = false;
            }
            // Start of the new phase: draw a fresh bit and reset the heads flag.
            u.bit = u.contender && u_bit;
            u.heads_seen = u.bit;
            u.heads_parity = u_phase % 2 == 1;

            // One step of the outer phase clock per inner phase.
            if same_level {
                self.outer_clock
                    .interact(&mut u.outer, u_junta, &mut v.outer, v_junta);
            }
            if u.outer.phase >= 1 {
                u.done = true;
            }
        }

        // Within the phase: spread the "some contender drew 1" flag by one-way
        // epidemics, guarded by the phase parity so that flags do not leak into the
        // next phase.
        if same_level {
            let u_parity = u_phase % 2 == 1;
            let v_parity = v_phase % 2 == 1;
            let u_heads = u.heads_seen && u.heads_parity == u_parity;
            let v_heads = v.heads_seen && v.heads_parity == v_parity;
            if v_heads && v_parity == u_parity && !u_heads {
                u.heads_seen = true;
                u.heads_parity = u_parity;
            }
            if u_heads && u_parity == v_parity && !v_heads {
                v.heads_seen = true;
                v.heads_parity = v_parity;
            }

            // `leaderDone` spreads by one-way epidemics so that all agents learn the
            // election has concluded within O(n log n) further interactions.
            if u.done || v.done {
                u.done = true;
                v.done = true;
            }
        }
    }
}

impl Default for LeaderElection {
    fn default() -> Self {
        Self::new(LeaderElectionConfig::default())
    }
}

/// Number of remaining contenders in a slice of leader states.
#[must_use]
pub fn contender_count(states: &[LeaderState]) -> usize {
    states.iter().filter(|s| s.contender).count()
}

/// Per-agent state of the standalone [`LeaderElectionProtocol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LeaderElectionAgent {
    /// Junta + inner phase clock.
    pub sync: SyncState,
    /// The election component state.
    pub election: LeaderState,
}

/// Standalone leader-election protocol (junta + inner clock + election component),
/// used to validate Lemma 6 in isolation (experiment E04).
///
/// The output of an agent is `true` iff it currently considers itself a leader
/// contender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderElectionProtocol {
    inner_clock: PhaseClock,
    election: LeaderElection,
}

impl LeaderElectionProtocol {
    /// Create the protocol.
    ///
    /// `inner_hours` is the number of hours of the inner phase clock (the paper's
    /// `m`); the election configuration provides the outer clock length.
    #[must_use]
    pub fn new(inner_hours: u8, config: LeaderElectionConfig) -> Self {
        LeaderElectionProtocol {
            inner_clock: PhaseClock::new(inner_hours),
            election: LeaderElection::new(config),
        }
    }
}

impl Default for LeaderElectionProtocol {
    fn default() -> Self {
        Self::new(24, LeaderElectionConfig::default())
    }
}

impl Protocol for LeaderElectionProtocol {
    type State = LeaderElectionAgent;
    type Output = bool;

    fn initial_state(&self) -> LeaderElectionAgent {
        LeaderElectionAgent::default()
    }

    fn interact(
        &self,
        initiator: &mut LeaderElectionAgent,
        responder: &mut LeaderElectionAgent,
        _rng: &mut SmallRng,
    ) {
        let outcome = sync_interact(&self.inner_clock, &mut initiator.sync, &mut responder.sync);
        if outcome.u_reset {
            initiator.election.reset();
        }
        if outcome.v_reset {
            responder.election.reset();
        }
        if !initiator.election.done {
            let u_first_tick = initiator.sync.clock.first_tick;
            self.election.interact(
                &mut initiator.election,
                &mut responder.election,
                u_first_tick,
                initiator.sync.clock.phase,
                responder.sync.clock.phase,
                initiator.sync.junta.level,
                responder.sync.junta.level,
                initiator.sync.junta.junta,
                responder.sync.junta.junta,
            );
        }
        // The initiator consumes its firstTick flag when it initiates.
        initiator.sync.clock.first_tick = false;
    }

    fn output(&self, state: &LeaderElectionAgent) -> bool {
        state.election.contender
    }

    fn name(&self) -> &'static str {
        "leader-election"
    }
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for LeaderState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.contender.persist(out);
        self.done.persist(out);
        self.coin.persist(out);
        self.outer.persist(out);
        self.bit.persist(out);
        self.heads_seen.persist(out);
        self.heads_parity.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(LeaderState {
            contender: bool::unpersist(r)?,
            done: bool::unpersist(r)?,
            coin: CoinState::unpersist(r)?,
            outer: PhaseClockState::unpersist(r)?,
            bit: bool::unpersist(r)?,
            heads_seen: bool::unpersist(r)?,
            heads_parity: bool::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::Simulator;

    #[test]
    fn initial_state_is_contender_and_not_done() {
        let s = LeaderState::new();
        assert!(s.contender);
        assert!(!s.done);
        assert!(!s.heads_seen);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut s = LeaderState::new();
        s.contender = false;
        s.done = true;
        s.heads_seen = true;
        s.reset();
        assert_eq!(s, LeaderState::new());
    }

    #[test]
    fn tails_contender_dies_only_when_heads_was_seen() {
        let le = LeaderElection::default();
        // Contender that drew 0 and saw heads: becomes a follower at its next tick.
        let mut u = LeaderState {
            bit: false,
            heads_seen: true,
            heads_parity: false,
            ..LeaderState::new()
        };
        let mut v = LeaderState::new();
        le.interact(&mut u, &mut v, true, 1, 1, 0, 0, false, false);
        assert!(!u.contender);

        // Contender that drew 1: survives even if heads was seen.
        let mut u = LeaderState {
            bit: true,
            heads_seen: true,
            heads_parity: false,
            ..LeaderState::new()
        };
        let mut v = LeaderState::new();
        le.interact(&mut u, &mut v, true, 1, 1, 0, 0, false, false);
        assert!(u.contender);

        // Contender that drew 0 but heads was never seen: survives.
        let mut u = LeaderState {
            bit: false,
            heads_seen: false,
            ..LeaderState::new()
        };
        let mut v = LeaderState::new();
        le.interact(&mut u, &mut v, true, 1, 1, 0, 0, false, false);
        assert!(u.contender);
    }

    #[test]
    fn heads_flag_spreads_only_within_matching_phase_parity() {
        let le = LeaderElection::default();
        // Partner carries a heads flag for parity 1 while we are in a parity-0 phase:
        // the flag must not be adopted.
        let mut u = LeaderState::new();
        let mut v = LeaderState {
            heads_seen: true,
            heads_parity: true,
            ..LeaderState::new()
        };
        le.interact(&mut u, &mut v, false, 2, 2, 0, 0, false, false);
        assert!(!u.heads_seen);

        // Matching parity: the flag is adopted.
        let mut u = LeaderState::new();
        let mut v = LeaderState {
            heads_seen: true,
            heads_parity: true,
            ..LeaderState::new()
        };
        le.interact(&mut u, &mut v, false, 3, 3, 0, 0, false, false);
        assert!(u.heads_seen);
        assert!(u.heads_parity);
    }

    #[test]
    fn done_flag_spreads_by_epidemic() {
        let le = LeaderElection::default();
        let mut u = LeaderState::new();
        let mut v = LeaderState {
            done: true,
            ..LeaderState::new()
        };
        le.interact(&mut u, &mut v, false, 0, 0, 0, 0, false, false);
        assert!(u.done);
    }

    #[test]
    fn election_produces_a_unique_leader_and_all_agents_finish() {
        let n = 600usize;
        let proto = LeaderElectionProtocol::new(16, LeaderElectionConfig { outer_hours: 32 });
        let mut sim = Simulator::new(proto, n, 4242).unwrap();
        let budget = 80_000_000u64;
        let outcome = sim.run_until(
            |s| s.states().iter().all(|a| a.election.done),
            (n * 10) as u64,
            budget,
        );
        assert!(outcome.converged(), "leader election did not finish");
        let leaders = sim.states().iter().filter(|a| a.election.contender).count();
        assert_eq!(leaders, 1, "expected a unique leader, found {leaders}");
    }

    #[test]
    fn there_is_always_at_least_one_contender() {
        let n = 200usize;
        let proto = LeaderElectionProtocol::new(16, LeaderElectionConfig::default());
        let mut sim = Simulator::new(proto, n, 9).unwrap();
        for _ in 0..100 {
            sim.run(20_000);
            let contenders = sim.states().iter().filter(|a| a.election.contender).count();
            assert!(contenders >= 1, "the contender set must never become empty");
        }
    }
}
