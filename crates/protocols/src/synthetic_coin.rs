//! Synthetic coins — uniform random bits extracted from the random schedule.
//!
//! Population protocols are deterministic at the transition level; all randomness
//! comes from the scheduler.  Alistarh et al. \[1\] introduced *synthetic coins*
//! (analysed simply in \[11\]): every agent keeps one parity bit which it flips in
//! every interaction it takes part in.  Because the partner of an interaction is
//! chosen uniformly at random, the partner's *current* parity bit is a nearly
//! uniform random bit after a short burn-in, and — crucially — it is obtained
//! without any dependence on the population size, keeping the protocol uniform.
//!
//! The `FastLeaderElection` protocol of Appendix D uses synthetic coins to generate
//! `Θ(log n)` random bits per round.

use rand::rngs::SmallRng;
use rand::RngCore;

use ppsim::{PersistState, SimError, SnapshotReader};

/// The per-agent state of the synthetic coin: a single parity bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CoinState {
    /// Parity of the number of interactions this agent has participated in.
    pub parity: bool,
}

impl CoinState {
    /// The initial coin state (parity 0).
    #[must_use]
    pub fn new() -> Self {
        CoinState { parity: false }
    }
}

/// Perform the synthetic-coin part of an interaction.
///
/// Returns the pair `(bit for the initiator, bit for the responder)`: each agent's
/// random bit is its **partner's parity before the flip**, and afterwards both
/// agents flip their own parity.
///
/// # Examples
///
/// ```rust
/// use ppproto::{coin_interact, CoinState};
/// let mut u = CoinState { parity: true };
/// let mut v = CoinState { parity: false };
/// let (bu, bv) = coin_interact(&mut u, &mut v);
/// assert_eq!((bu, bv), (false, true));
/// assert_eq!((u.parity, v.parity), (false, true)); // both flipped
/// ```
pub fn coin_interact(u: &mut CoinState, v: &mut CoinState) -> (bool, bool) {
    let bit_for_u = v.parity;
    let bit_for_v = u.parity;
    u.parity = !u.parity;
    v.parity = !v.parity;
    (bit_for_u, bit_for_v)
}

/// How a composed protocol obtains its random bits.
///
/// The faithful, uniform mechanism is [`CoinMode::Synthetic`].  [`CoinMode::Rng`]
/// draws from the simulator RNG instead; it is useful in unit tests and when
/// isolating a stage that would otherwise need a long burn-in for the parity bits to
/// mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoinMode {
    /// Use the partner's parity bit (uniform protocol, the paper's mechanism).
    #[default]
    Synthetic,
    /// Draw bits from the simulation RNG (not a population-protocol mechanism;
    /// provided for tests and diagnostics only).
    Rng,
}

impl CoinMode {
    /// Resolve a random bit for the initiator given the synthetic bit and an RNG.
    #[must_use]
    pub fn bit(self, synthetic: bool, rng: &mut SmallRng) -> bool {
        match self {
            CoinMode::Synthetic => synthetic,
            CoinMode::Rng => rng.next_u32() & 1 == 1,
        }
    }
}

/// Snapshot codec: the single parity bit (see [`ppsim::snapshot`]).
impl PersistState for CoinState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.parity.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(CoinState {
            parity: bool::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::seeded_rng;
    use rand::Rng;

    #[test]
    fn coin_interact_flips_both_parities() {
        let mut u = CoinState::new();
        let mut v = CoinState::new();
        let (bu, bv) = coin_interact(&mut u, &mut v);
        assert_eq!((bu, bv), (false, false));
        assert!(u.parity && v.parity);
        let (bu, bv) = coin_interact(&mut u, &mut v);
        assert_eq!((bu, bv), (true, true));
        assert!(!u.parity && !v.parity);
    }

    #[test]
    fn synthetic_bits_are_roughly_unbiased_under_random_scheduling() {
        // Simulate the coin mechanism directly under a uniform scheduler and check
        // that the bits handed out are roughly balanced after a burn-in.
        let n = 101;
        let mut coins = vec![CoinState::new(); n];
        let mut rng = seeded_rng(12);
        let mut ones = 0u64;
        let mut total = 0u64;
        for step in 0..200_000u64 {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let (a, b) = if i < j {
                let (lo, hi) = coins.split_at_mut(j);
                (&mut lo[i], &mut hi[0])
            } else {
                let (lo, hi) = coins.split_at_mut(i);
                (&mut hi[0], &mut lo[j])
            };
            let (bit, _) = coin_interact(a, b);
            if step > 10_000 {
                total += 1;
                if bit {
                    ones += 1;
                }
            }
        }
        let ratio = ones as f64 / total as f64;
        assert!(
            (ratio - 0.5).abs() < 0.02,
            "synthetic coin bias too large: {ratio}"
        );
    }

    #[test]
    fn coin_mode_rng_draws_from_rng_and_synthetic_passes_through() {
        let mut rng = seeded_rng(5);
        assert!(CoinMode::Synthetic.bit(true, &mut rng));
        assert!(!CoinMode::Synthetic.bit(false, &mut rng));
        // The RNG mode must not depend on the synthetic argument; just exercise it.
        let mut heads = 0;
        for _ in 0..1000 {
            if CoinMode::Rng.bit(false, &mut rng) {
                heads += 1;
            }
        }
        assert!(heads > 400 && heads < 600, "rng coin badly biased: {heads}");
    }
}
