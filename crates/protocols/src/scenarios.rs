//! The standard conformance scenario matrix: every ported protocol ×
//! engine × init strategy × fault plan, as [`BoundCell`]s for
//! `ppsim::conformance::run_matrix`.
//!
//! The matrix has two population tiers, because the batched/sharded count
//! engines pay `O(q_occ²)` per `Θ(√n)`-interaction block:
//!
//! * **count-friendly rows** (`n_big`) run protocols whose occupancy stays
//!   `O(√n)`-ish (Herman's four states, clean coalescence) on **all four
//!   engines**, and occupancy-hostile adversarial variants on the
//!   per-agent engines (sequential, hybrid — the hybrid's migration logic
//!   is exactly what those cells exercise);
//! * **count-hostile rows** (`n_small`) run the `q = Θ(n)` ranking and
//!   election workloads on all four engines at a population where dense
//!   blocks stay affordable.
//!
//! Two presets: [`MatrixConfig::quick`] is the CI release tier
//! (`n_big = 10⁴`), [`MatrixConfig::test_tier`] the debug `cargo test`
//! tier (`n_big = 10³`).  Both enumerate the same 38 cells; every cell is
//! a pure function of `(seed, plan, engine)`.
//!
//! ```
//! use ppproto::scenarios::{standard_matrix, MatrixConfig};
//!
//! let cells = standard_matrix(&MatrixConfig::test_tier());
//! assert!(cells.len() >= 36);
//! // Each cell knows its row and engine; running one returns the full
//! // invariant battery's verdict.
//! let cell = &cells[0];
//! assert_eq!(cell.engine(), "sequential");
//! assert!(cell.run().passed());
//! ```

use std::sync::Arc;

use ppsim::conformance::{BoundCell, ConservationLaw, ConservedQuantity, Scenario};
use ppsim::{
    derive_seed, CorruptionTarget, DenseProtocol, Engine, FaultEvent, FaultKind, FaultPlan,
    InitStrategy,
};

use crate::coalescence::StochasticCoalescence;
use crate::herman::HermanTokens;
use crate::ranking::SelfStabRanking;
use crate::tradeoff_election::TradeoffElection;

/// The four engines every count-friendly row runs on.
pub const ALL_ENGINES: [Engine; 4] = [
    Engine::Sequential,
    Engine::Batched,
    Engine::Sharded {
        shards: 4,
        threads: 1,
    },
    Engine::Hybrid,
];

/// The engines that keep occupancy-hostile rows affordable (the hybrid
/// flees its dense substrate on the adversarial replacement, which is part
/// of what these cells test).
pub const PER_AGENT_ENGINES: [Engine; 2] = [Engine::Sequential, Engine::Hybrid];

/// Population tiers and the master seed of the standard matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixConfig {
    /// Count-friendly population (Herman, coalescence, dispersal rows).
    pub n_big: usize,
    /// Count-hostile population (full ranking/election stabilization on
    /// all four engines).
    pub n_small: usize,
    /// Master seed; each row derives its own seed stream from it.
    pub seed: u64,
}

impl MatrixConfig {
    /// The CI release tier: `n_big = 10⁴` (ISSUE 8's quick tier).
    #[must_use]
    pub fn quick() -> Self {
        MatrixConfig {
            n_big: 10_000,
            n_small: 64,
            seed: 0xC0FF,
        }
    }

    /// The debug `cargo test` tier: same cells, populations scaled so the
    /// whole matrix stays in tens of seconds unoptimized.
    #[must_use]
    pub fn test_tier() -> Self {
        MatrixConfig {
            n_big: 1_000,
            n_small: 48,
            seed: 0xC0FF,
        }
    }
}

fn bind<P: DenseProtocol + Clone + Send + Sync + 'static>(
    engines: &[Engine],
    scenario: &Scenario<P>,
    out: &mut Vec<BoundCell>,
) {
    for &engine in engines {
        out.push(BoundCell::new(engine, scenario));
    }
}

/// Herman rows: clean all-token start and an adversarial variant with
/// token re-injection plus a silence window.  Token parity is exactly
/// conserved by the pairwise rule; the token count never grows.
fn herman_rows(cfg: &MatrixConfig, out: &mut Vec<BoundCell>) {
    let n = cfg.n_big;
    let nn = (n as u64) * (n as u64);
    let p = HermanTokens::new();
    let conserved = vec![
        ConservedQuantity {
            name: "tokens",
            law: ConservationLaw::NonIncreasing,
            value: Arc::new(move |c: &[u64]| p.tokens(c)),
        },
        ConservedQuantity {
            name: "token-parity",
            law: ConservationLaw::Exact,
            value: Arc::new(move |c: &[u64]| p.tokens(c) % 2),
        },
    ];
    let clean = Scenario {
        name: "herman/clean".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x484501),
        init: InitStrategy::Clean,
        plan: FaultPlan::empty(),
        predicate: Arc::new(move |c: &[u64]| p.is_stable(c)),
        bound: 10 * nn,
        check_every: (nn / 8).max(256),
        conserved: conserved.clone(),
    };
    bind(&ALL_ENGINES, &clean, out);

    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: nn / 4,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 4).max(1),
                target: CorruptionTarget::State(2), // re-inject (token, tails)
            },
        },
        FaultEvent {
            at: nn / 2,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 8).max(1),
                target: CorruptionTarget::Uniform { states: 4 },
            },
        },
        FaultEvent {
            at: nn,
            kind: FaultKind::Silence {
                agents: (n as u64 / 8).max(1),
                window: nn / 8,
            },
        },
    ])
    .expect("static herman plan");
    let adversarial = Scenario {
        name: "herman/adversarial".into(),
        init: InitStrategy::SeededArbitrary {
            states: 4,
            seed: derive_seed(cfg.seed, 0x484502),
        },
        plan,
        ..clean
    };
    bind(&ALL_ENGINES, &adversarial, out);
}

/// Coalescence rows: clean singleton start on all engines (occupancy stays
/// `O(√n)`), a high-occupancy adversarial start on the per-agent engines
/// at `n_big`, and a full adversarial recovery at `n_small` on all four.
fn coalescence_rows(cfg: &MatrixConfig, out: &mut Vec<BoundCell>) {
    let n = cfg.n_big;
    let nn = (n as u64) * (n as u64);
    let p = StochasticCoalescence::new(n);
    let threshold = 64u64.min(n as u64 / 4);
    let clean = Scenario {
        name: "coalescence/clean".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x434C01),
        init: InitStrategy::Clean,
        plan: FaultPlan::empty(),
        predicate: Arc::new(move |c: &[u64]| p.alive_clusters(c) <= threshold),
        bound: nn / 2,
        check_every: (nn / 64).max(256),
        conserved: vec![ConservedQuantity {
            name: "mass",
            law: ConservationLaw::Exact, // total mass n never reaches the cap
            value: Arc::new(move |c: &[u64]| p.mass(c)),
        }],
    };
    bind(&ALL_ENGINES, &clean, out);

    // Arbitrary starts scatter Θ(n) distinct sizes, so dense blocks are
    // infeasible at n_big: per-agent engines only (the hybrid must flee
    // its dense substrate on the init itself).  Saturation at the cap
    // makes mass merely non-increasing here.
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 4 * n as u64,
        kind: FaultKind::Corrupt {
            agents: (n as u64 / 8).max(1),
            target: CorruptionTarget::Uniform { states: 128 },
        },
    }])
    .expect("static coalescence plan");
    let adversarial = Scenario {
        name: "coalescence/adversarial".into(),
        seed: derive_seed(cfg.seed, 0x434C02),
        init: InitStrategy::SeededArbitrary {
            states: p.num_states(),
            seed: derive_seed(cfg.seed, 0x434C03),
        },
        plan,
        conserved: vec![ConservedQuantity {
            name: "mass",
            law: ConservationLaw::NonIncreasing,
            value: Arc::new(move |c: &[u64]| p.mass(c)),
        }],
        ..clean
    };
    bind(&PER_AGENT_ENGINES, &adversarial, out);

    // Full coalescence (alive ≤ 1) with a resurrection fault and a silence
    // window, small enough for every engine.
    let n = cfg.n_small;
    let nn = (n as u64) * (n as u64);
    let p = StochasticCoalescence::new(n);
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 4 * nn,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 4).max(1),
                target: CorruptionTarget::State(2), // resurrect singletons
            },
        },
        FaultEvent {
            at: 8 * nn,
            kind: FaultKind::Silence {
                agents: (n as u64 / 8).max(1),
                window: nn,
            },
        },
    ])
    .expect("static coalescence plan");
    let small = Scenario {
        name: "coalescence/adversarial-small".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x434C04),
        init: InitStrategy::SeededArbitrary {
            states: p.num_states(),
            seed: derive_seed(cfg.seed, 0x434C05),
        },
        plan,
        predicate: Arc::new(move |c: &[u64]| p.is_coalesced(c)),
        bound: 64 * nn,
        check_every: nn.max(64),
        conserved: vec![ConservedQuantity {
            name: "mass",
            law: ConservationLaw::NonIncreasing,
            value: Arc::new(move |c: &[u64]| p.mass(c)),
        }],
    };
    bind(&ALL_ENGINES, &small, out);
}

/// Election rows: full stabilization (clean pile and adversarial start) at
/// `n_small` on all engines, plus a dispersal-milestone row at `n_big` on
/// the per-agent engines (full stabilization is `ω(n²)` and infeasible
/// there; the distinct-rank count is non-decreasing, so the milestone is a
/// sound monotone predicate).
fn election_rows(cfg: &MatrixConfig, out: &mut Vec<BoundCell>) {
    let k = 4usize;
    let n = cfg.n_small;
    let nn = (n as u64) * (n as u64);
    let p = TradeoffElection::new(n, k);
    let clean = Scenario {
        name: "election/clean".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x454C01),
        init: InitStrategy::Clean,
        plan: FaultPlan::empty(),
        predicate: Arc::new(move |c: &[u64]| p.is_stable(c)),
        bound: 512 * nn,
        check_every: 2 * nn,
        conserved: Vec::new(),
    };
    bind(&ALL_ENGINES, &clean, out);

    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 16 * nn,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 4).max(1),
                target: CorruptionTarget::State(7 * k), // pile onto rank 7
            },
        },
        FaultEvent {
            at: 32 * nn,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 8).max(1),
                target: CorruptionTarget::Uniform {
                    states: p.num_states(),
                },
            },
        },
    ])
    .expect("static election plan");
    let adversarial = Scenario {
        name: "election/adversarial".into(),
        seed: derive_seed(cfg.seed, 0x454C02),
        init: InitStrategy::SeededArbitrary {
            states: p.num_states(),
            seed: derive_seed(cfg.seed, 0x454C03),
        },
        plan,
        ..clean
    };
    bind(&ALL_ENGINES, &adversarial, out);

    let n = cfg.n_big;
    let nn = (n as u64) * (n as u64);
    let p = TradeoffElection::new(n, k);
    let mut pile = vec![0u64; 8 * k];
    for i in 0..n {
        pile[7 * k + (i % k)] += 1; // everyone on rank 7, probe tags spread
    }
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 16 * n as u64,
        kind: FaultKind::Corrupt {
            agents: (n as u64 / 8).max(1),
            target: CorruptionTarget::State(7 * k), // re-pile mid-dispersal
        },
    }])
    .expect("static election plan");
    // Measured at n = 10⁴ (sequential): the n/64 milestone costs ≈ 5.4·10⁶
    // interactions; the cascade out of the pile is Θ(n·K^g) per generation,
    // so deeper milestones blow up fast (n/16 ≈ 10⁸, n/2 > 3·10⁹).
    let milestone = (n as u64 / 64).max(2);
    let dispersal = Scenario {
        name: "election/dispersal".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x454C04),
        init: InitStrategy::Fixed(pile),
        plan,
        predicate: Arc::new(move |c: &[u64]| p.distinct_ranks(c) as u64 >= milestone),
        bound: nn / 2,
        check_every: (4 * n as u64).max(256),
        conserved: Vec::new(),
    };
    bind(&PER_AGENT_ENGINES, &dispersal, out);
}

/// Ranking rows: the standing `SelfStabRanking` workload under the same
/// grid — full stabilization at `n_small` on all engines (clean and the
/// fault plan from the adversarial harness), plus a dispersal milestone at
/// `n_big` on the per-agent engines.
fn ranking_rows(cfg: &MatrixConfig, out: &mut Vec<BoundCell>) {
    let n = cfg.n_small;
    let nn = (n as u64) * (n as u64);
    let p = SelfStabRanking::new(n);
    let clean = Scenario {
        name: "ranking/clean".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x524B01),
        init: InitStrategy::Clean,
        plan: FaultPlan::empty(),
        predicate: Arc::new(move |c: &[u64]| p.is_ranked(c)),
        bound: 512 * nn,
        check_every: 2 * nn,
        conserved: Vec::new(),
    };
    bind(&ALL_ENGINES, &clean, out);

    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 8 * nn,
            kind: FaultKind::Corrupt {
                agents: (n as u64 / 4).max(1),
                target: CorruptionTarget::State(2), // pile onto (rank 1, heads)
            },
        },
        FaultEvent {
            at: 16 * nn,
            kind: FaultKind::Silence {
                agents: (n as u64 / 8).max(1),
                window: 4 * nn,
            },
        },
    ])
    .expect("static ranking plan");
    let adversarial = Scenario {
        name: "ranking/adversarial".into(),
        seed: derive_seed(cfg.seed, 0x524B02),
        init: InitStrategy::SeededArbitrary {
            states: 2 * n,
            seed: derive_seed(cfg.seed, 0x524B03),
        },
        plan,
        bound: 2000 * nn,
        ..clean
    };
    bind(&ALL_ENGINES, &adversarial, out);

    let n = cfg.n_big;
    let nn = (n as u64) * (n as u64);
    let p = SelfStabRanking::new(n);
    let mut pile = vec![0u64; 4];
    pile[2] = n as u64; // everyone on (rank 1, heads)
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 16 * n as u64,
        kind: FaultKind::Corrupt {
            agents: (n as u64 / 8).max(1),
            target: CorruptionTarget::State(2),
        },
    }])
    .expect("static ranking plan");
    // Measured at n = 10⁴ (sequential): the n/64 milestone costs ≈ 2.1·10⁷
    // interactions, and the stride cascade makes deeper ones explode
    // (n/16 ≈ 3.4·10⁸, n/4 ≈ 5.6·10⁹) — far past a CI budget.
    let milestone = (n as u64 / 64).max(2);
    let dispersal = Scenario {
        name: "ranking/dispersal".into(),
        protocol: p,
        n,
        seed: derive_seed(cfg.seed, 0x524B04),
        init: InitStrategy::Fixed(pile),
        plan,
        predicate: Arc::new(move |c: &[u64]| p.distinct_ranks(c) as u64 >= milestone),
        bound: nn,
        check_every: (4 * n as u64).max(256),
        conserved: Vec::new(),
    };
    bind(&PER_AGENT_ENGINES, &dispersal, out);
}

/// The standard 38-cell matrix (see the module docs for the tier layout).
#[must_use]
pub fn standard_matrix(cfg: &MatrixConfig) -> Vec<BoundCell> {
    let mut out = Vec::new();
    herman_rows(cfg, &mut out);
    coalescence_rows(cfg, &mut out);
    election_rows(cfg, &mut out);
    ranking_rows(cfg, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_matrix_enumerates_at_least_36_cells() {
        let cells = standard_matrix(&MatrixConfig::test_tier());
        assert!(cells.len() >= 36, "only {} cells", cells.len());
        assert_eq!(
            cells.len(),
            standard_matrix(&MatrixConfig::quick()).len(),
            "both tiers enumerate the same cells"
        );
        // Every protocol family appears, and every named engine is used.
        for family in ["herman/", "coalescence/", "election/", "ranking/"] {
            assert!(cells.iter().any(|c| c.scenario().starts_with(family)));
        }
        for engine in ["sequential", "batched", "sharded", "hybrid"] {
            assert!(cells.iter().any(|c| c.engine() == engine));
        }
    }
}
