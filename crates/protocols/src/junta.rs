//! The junta (level) process — Lemma 4 of the paper, originally from [8, 18].
//!
//! The junta process marks a small group of `Θ(nᵉ)` agents — the *junta* — which is
//! subsequently used to drive the phase clocks.  Each agent keeps a triplet
//! `(level, active, junta)`, initially `(0, 1, 1)`:
//!
//! * an **active** agent that interacts with an active agent *on the same level*
//!   increases its level; interacting with anyone else makes it inactive;
//! * whenever an agent meets a partner on a **higher** level it clears its `junta`
//!   bit (it learns that it did not win the level race);
//! * **inactive** agents adopt the partner's level if that is higher (so that the
//!   maximum level spreads by epidemic and lagging agents learn about it).
//!
//! Lemma 4 (adapted from \[8\]): all agents become inactive within `O(n log n)`
//! interactions, the maximum level `level*` satisfies
//! `log log n − 4 ≤ level* ≤ log log n + 8`, and the number of agents on the maximal
//! level is `O(√n · log n)`, w.h.p.
//!
//! An agent locally *believes* it is a junta member while its `junta` bit is set;
//! composed protocols use that belief to drive phase clocks and re-initialise
//! themselves whenever they meet an agent on a higher level (Algorithm 2/3, line 1).

use rand::rngs::SmallRng;

use ppsim::{PersistState, Protocol, SimError, SnapshotReader};

/// Per-agent state of the junta process: `(level, active, junta)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JuntaState {
    /// The level reached in the level race; bounded by `log log n + 8` w.h.p.
    pub level: u8,
    /// Whether the agent is still actively racing.
    pub active: bool,
    /// Whether the agent still believes it belongs to the junta
    /// (it has never met an agent on a strictly higher level).
    pub junta: bool,
}

impl JuntaState {
    /// The common initial state `(0, 1, 1)`.
    #[must_use]
    pub fn new() -> Self {
        JuntaState {
            level: 0,
            active: true,
            junta: true,
        }
    }
}

impl Default for JuntaState {
    fn default() -> Self {
        Self::new()
    }
}

/// One interaction of the junta process, applied symmetrically to both agents.
///
/// The update uses the pre-interaction states of both agents, exactly as the
/// transition function `δ` of the model prescribes.
///
/// # Examples
///
/// ```rust
/// use ppproto::{junta_interact, JuntaState};
/// let mut u = JuntaState::new();
/// let mut v = JuntaState::new();
/// junta_interact(&mut u, &mut v);
/// // Two active level-0 agents both advance to level 1.
/// assert_eq!((u.level, v.level), (1, 1));
/// assert!(u.active && v.active);
/// ```
pub fn junta_interact(u: &mut JuntaState, v: &mut JuntaState) {
    let before_u = *u;
    let before_v = *v;
    junta_update_one(u, &before_u, &before_v);
    junta_update_one(v, &before_v, &before_u);
}

/// Update a single agent given its own pre-state and the partner's pre-state.
fn junta_update_one(state: &mut JuntaState, me: &JuntaState, other: &JuntaState) {
    if me.active {
        if other.active && other.level == me.level {
            // Win this round of the level race.
            state.level = me.level.saturating_add(1);
        } else {
            state.active = false;
        }
    } else if other.level > me.level {
        // Inactive agents adopt higher levels so the maximum spreads by epidemic.
        state.level = other.level;
    }
    if other.level > me.level {
        // Having seen a higher level, this agent cannot be in the junta.
        state.junta = false;
    }
}

/// The maximum level present in a configuration.
#[must_use]
pub fn max_level(states: &[JuntaState]) -> u8 {
    states.iter().map(|s| s.level).max().unwrap_or(0)
}

/// The number of agents that currently believe they are junta members *and* sit on
/// the maximal level — the junta in the sense of Lemma 4.
#[must_use]
pub fn junta_size(states: &[JuntaState]) -> usize {
    let top = max_level(states);
    states.iter().filter(|s| s.junta && s.level == top).count()
}

/// Whether every agent has become inactive (the junta process has stabilised).
#[must_use]
pub fn all_inactive(states: &[JuntaState]) -> bool {
    states.iter().all(|s| !s.active)
}

/// The standalone junta protocol used to validate Lemma 4 (experiment E02).
///
/// Output of an agent is its current level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JuntaProtocol;

impl JuntaProtocol {
    /// Create the protocol.
    #[must_use]
    pub fn new() -> Self {
        JuntaProtocol
    }
}

impl Protocol for JuntaProtocol {
    type State = JuntaState;
    type Output = u8;

    fn initial_state(&self) -> JuntaState {
        JuntaState::new()
    }

    fn interact(
        &self,
        initiator: &mut JuntaState,
        responder: &mut JuntaState,
        _rng: &mut SmallRng,
    ) {
        junta_interact(initiator, responder);
    }

    fn output(&self, state: &JuntaState) -> u8 {
        state.level
    }

    fn name(&self) -> &'static str {
        "junta-process"
    }
}

/// The junta process over an enumerated state space, for the batched
/// count-based engine ([`BatchedSimulator`](ppsim::BatchedSimulator)).
///
/// A [`JuntaState`] `(level, active, junta)` is encoded as the dense index
/// `(level · 2 + active) · 2 + junta`, with levels capped at `max_level`, so
/// `q = 4 · (max_level + 1)`.  The transition is exactly [`junta_interact`]
/// as long as no agent would exceed `max_level`; at the cap the level
/// saturates.  Lemma 4 bounds the maximal level by `log₂ log₂ n + 8` w.h.p.,
/// so the default cap of [`DenseJunta::DEFAULT_MAX_LEVEL`] is unreachable for
/// any physically simulable population and the dense process is
/// indistinguishable from the sequential one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseJunta {
    max_level: u8,
}

impl DenseJunta {
    /// Default level cap: `log₂ log₂ n + 8 < 14` for every `n ≤ 2^(2^6)`.
    pub const DEFAULT_MAX_LEVEL: u8 = 15;

    /// Create the dense junta process with the default level cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_level(Self::DEFAULT_MAX_LEVEL)
    }

    /// Create the dense junta process with an explicit level cap.
    #[must_use]
    pub fn with_max_level(max_level: u8) -> Self {
        DenseJunta { max_level }
    }

    /// The level cap.
    #[must_use]
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Decode a dense index into a [`JuntaState`].
    #[must_use]
    pub fn decode(&self, index: usize) -> JuntaState {
        JuntaState {
            level: (index >> 2) as u8,
            active: index & 0b10 != 0,
            junta: index & 0b01 != 0,
        }
    }

    /// Encode a [`JuntaState`] as a dense index, saturating the level at the
    /// cap.
    #[must_use]
    pub fn encode(&self, state: JuntaState) -> usize {
        let level = state.level.min(self.max_level) as usize;
        (level << 2) | (usize::from(state.active) << 1) | usize::from(state.junta)
    }
}

impl Default for DenseJunta {
    fn default() -> Self {
        Self::new()
    }
}

impl ppsim::DenseProtocol for DenseJunta {
    type Output = u8;

    fn num_states(&self) -> usize {
        4 * (usize::from(self.max_level) + 1)
    }

    fn initial_state(&self) -> usize {
        self.encode(JuntaState::new())
    }

    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        let mut u = self.decode(initiator);
        let mut v = self.decode(responder);
        junta_interact(&mut u, &mut v);
        (self.encode(u), self.encode(v))
    }

    fn output(&self, state: usize) -> u8 {
        self.decode(state).level
    }

    fn name(&self) -> &'static str {
        "dense-junta-process"
    }

    fn invariants(&self) -> ppsim::ProtocolInvariants {
        let p = *self;
        ppsim::ProtocolInvariants {
            // Agents only ever *leave* the race: nothing re-activates an
            // inactive agent, so the active census never grows.
            conserved: vec![ppsim::ConservedQuantity {
                name: "active-agents",
                law: ppsim::ConservationLaw::NonIncreasing,
                value: std::sync::Arc::new(move |c: &[u64]| {
                    c.iter()
                        .enumerate()
                        .filter(|(s, _)| p.decode(*s).active)
                        .map(|(_, &n)| n)
                        .sum()
                }),
            }],
            // Both agents update from the same pre-interaction pair.
            role_symmetric: Some(true),
        }
    }

    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        Some(dense_all_inactive(self, counts))
    }
}

/// The maximum level present in a counts configuration of [`DenseJunta`].
#[must_use]
pub fn dense_max_level(protocol: &DenseJunta, counts: &[u64]) -> u8 {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(s, _)| protocol.decode(s).level)
        .max()
        .unwrap_or(0)
}

/// The junta size (agents on the maximal level still believing they belong to
/// the junta) in a counts configuration of [`DenseJunta`].
#[must_use]
pub fn dense_junta_size(protocol: &DenseJunta, counts: &[u64]) -> u64 {
    let top = dense_max_level(protocol, counts);
    counts
        .iter()
        .enumerate()
        .filter(|(s, _)| {
            let st = protocol.decode(*s);
            st.junta && st.level == top
        })
        .map(|(_, &c)| c)
        .sum()
}

/// Whether every agent is inactive in a counts configuration of [`DenseJunta`].
#[must_use]
pub fn dense_all_inactive(protocol: &DenseJunta, counts: &[u64]) -> bool {
    counts
        .iter()
        .enumerate()
        .all(|(s, &c)| c == 0 || !protocol.decode(s).active)
}

/// Snapshot codec: fields in declaration order (see [`ppsim::snapshot`]).
impl PersistState for JuntaState {
    fn persist(&self, out: &mut Vec<u8>) {
        self.level.persist(out);
        self.active.persist(out);
        self.junta.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(JuntaState {
            level: u8::unpersist(r)?,
            active: bool::unpersist(r)?,
            junta: bool::unpersist(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{BatchedSimulator, DenseProtocol, Simulator};

    #[test]
    fn two_active_same_level_agents_advance() {
        let mut u = JuntaState::new();
        let mut v = JuntaState::new();
        junta_interact(&mut u, &mut v);
        assert_eq!(u.level, 1);
        assert_eq!(v.level, 1);
        assert!(u.active && v.active);
        assert!(u.junta && v.junta);
    }

    #[test]
    fn active_agent_meeting_different_level_becomes_inactive() {
        let mut u = JuntaState {
            level: 2,
            active: true,
            junta: true,
        };
        let mut v = JuntaState {
            level: 5,
            active: true,
            junta: true,
        };
        junta_interact(&mut u, &mut v);
        assert!(!u.active, "lower-level active agent must become inactive");
        assert!(
            !v.active,
            "the higher-level agent saw a non-matching partner and also stops"
        );
        assert!(
            !u.junta,
            "the lower agent saw a higher level and leaves the junta"
        );
        assert!(v.junta, "the higher agent keeps its junta bit");
        assert_eq!(u.level, 2, "an active agent does not adopt levels");
        assert_eq!(v.level, 5);
    }

    #[test]
    fn active_agent_meeting_inactive_same_level_becomes_inactive() {
        let mut u = JuntaState {
            level: 3,
            active: true,
            junta: true,
        };
        let mut v = JuntaState {
            level: 3,
            active: false,
            junta: false,
        };
        junta_interact(&mut u, &mut v);
        assert!(!u.active);
        assert_eq!(u.level, 3);
        assert!(u.junta, "equal level does not clear the junta bit");
    }

    #[test]
    fn inactive_agent_adopts_higher_level_and_leaves_junta() {
        let mut u = JuntaState {
            level: 1,
            active: false,
            junta: true,
        };
        let mut v = JuntaState {
            level: 4,
            active: false,
            junta: true,
        };
        junta_interact(&mut u, &mut v);
        assert_eq!(u.level, 4);
        assert!(!u.junta);
        assert_eq!(v.level, 4);
        assert!(v.junta);
    }

    #[test]
    fn levels_never_decrease() {
        let mut u = JuntaState {
            level: 6,
            active: false,
            junta: false,
        };
        let mut v = JuntaState {
            level: 2,
            active: false,
            junta: false,
        };
        junta_interact(&mut u, &mut v);
        assert_eq!(u.level, 6);
        assert!(v.level >= 2);
    }

    #[test]
    fn junta_process_stabilises_with_small_junta_and_plausible_level() {
        // Lemma 4 at a concrete size: n = 2000, log2 log2 n ≈ 3.46.
        let n = 2000usize;
        let mut sim = Simulator::new(JuntaProtocol::new(), n, 99).unwrap();
        let outcome = sim.run_until(|s| all_inactive(s.states()), n as u64, 200_000_000);
        let t = outcome.expect_converged("junta process");
        let n_f = n as f64;
        assert!(
            (t as f64) < 40.0 * n_f * n_f.ln(),
            "junta took suspiciously long to stabilise: {t} interactions"
        );

        let top = max_level(sim.states());
        let loglog = n_f.log2().log2();
        assert!(
            f64::from(top) >= loglog - 4.0 && f64::from(top) <= loglog + 8.0,
            "maximal level {top} outside Lemma 4 band around log log n = {loglog:.2}"
        );

        let junta = junta_size(sim.states());
        assert!(junta >= 1, "the junta must never be empty");
        assert!(
            (junta as f64) <= 4.0 * n_f.sqrt() * n_f.log2(),
            "junta of size {junta} is larger than O(sqrt(n) log n) suggests"
        );
    }

    #[test]
    fn dense_encoding_roundtrips_and_matches_the_component() {
        let d = DenseJunta::new();
        for index in 0..d.num_states() {
            assert_eq!(d.encode(d.decode(index)), index, "roundtrip at {index}");
        }
        // The dense transition is junta_interact under the encoding for every
        // state pair below the cap.
        for i in 0..d.num_states() {
            for j in 0..d.num_states() {
                let (a, b) = d.transition(i, j);
                let mut u = d.decode(i);
                let mut v = d.decode(j);
                junta_interact(&mut u, &mut v);
                assert_eq!(d.decode(a).level, u.level.min(d.max_level()));
                assert_eq!(d.decode(a).active, u.active);
                assert_eq!(d.decode(a).junta, u.junta);
                assert_eq!(d.decode(b).level, v.level.min(d.max_level()));
            }
        }
    }

    #[test]
    fn dense_junta_satisfies_lemma_4_on_the_batched_engine() {
        // The batched analogue of junta_process_stabilises_with_small_junta.
        let n = 20_000u64;
        let d = DenseJunta::new();
        let mut sim = BatchedSimulator::new(d, n as usize, 99).unwrap();
        let outcome = sim.run_until(
            |s| dense_all_inactive(s.protocol(), s.counts()),
            n,
            u64::MAX >> 1,
        );
        let t = outcome.expect_converged("dense junta process");
        let n_f = n as f64;
        assert!(
            (t as f64) < 40.0 * n_f * n_f.ln(),
            "junta took suspiciously long to stabilise: {t} interactions"
        );

        let top = dense_max_level(sim.protocol(), sim.counts());
        let loglog = n_f.log2().log2();
        assert!(
            f64::from(top) >= loglog - 4.0 && f64::from(top) <= loglog + 8.0,
            "maximal level {top} outside Lemma 4 band around log log n = {loglog:.2}"
        );

        let junta = dense_junta_size(sim.protocol(), sim.counts());
        assert!(junta >= 1, "the junta must never be empty");
        assert!(
            (junta as f64) <= 4.0 * n_f.sqrt() * n_f.log2(),
            "junta of size {junta} is larger than O(sqrt(n) log n) suggests"
        );
    }

    #[test]
    fn there_is_always_at_least_one_junta_believer() {
        // Invariant: an agent on the maximal level never clears its junta bit, so the
        // junta (in the believe-sense) can never become empty.  Check along a run.
        let n = 300usize;
        let mut sim = Simulator::new(JuntaProtocol::new(), n, 5).unwrap();
        for _ in 0..200 {
            sim.run(100);
            assert!(junta_size(sim.states()) >= 1);
        }
    }
}
