//! Acceptance test for the adversarial fault model (ISSUE 7): the
//! self-stabilizing ranking workload, started from a **seeded-arbitrary**
//! configuration and corrupted **mid-run**, reconverges to a legal ranking
//! on all four engines — and every engine's trajectory is a deterministic
//! function of `(seed, plan)`.
//!
//! This is the end-to-end composition of the tentpole's three pillars:
//! [`InitStrategy::SeededArbitrary`] (adversarial initialization),
//! [`FaultPlan`] (in-run state corruption, injected exactly per
//! representation), and recovery probing through
//! [`AdversarialRun::run_until`] / [`RecoveryRecord`] on the ported
//! self-stabilizing protocol [`SelfStabRanking`].

use ppproto::SelfStabRanking;
use ppsim::{
    AdversarialRun, CorruptionTarget, Engine, FaultEvent, FaultKind, FaultPlan, InitStrategy,
    RecoveryRecord,
};

const ALL_ENGINES: [Engine; 4] = [
    Engine::Sequential,
    Engine::Batched,
    Engine::Sharded {
        shards: 4,
        threads: 1,
    },
    Engine::Hybrid,
];

#[test]
fn ranking_recovers_from_arbitrary_init_and_mid_run_corruption_on_every_engine() {
    let n = 48usize;
    let protocol = SelfStabRanking::new(n);
    // Two transient faults: a pile-up (12 agents forced onto one rank, the
    // worst shape for the collision rule) and a uniform scribble across the
    // whole state space.
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 20_000,
            kind: FaultKind::Corrupt {
                agents: 12,
                target: CorruptionTarget::State(14),
            },
        },
        FaultEvent {
            at: 40_000,
            kind: FaultKind::Corrupt {
                agents: 8,
                target: CorruptionTarget::Uniform { states: 2 * n },
            },
        },
    ])
    .unwrap();

    for engine in ALL_ENGINES {
        let run_once = || -> (Vec<u64>, u64, Vec<RecoveryRecord>) {
            let mut run = AdversarialRun::new(
                engine,
                protocol,
                n,
                1234,
                InitStrategy::SeededArbitrary {
                    states: 2 * n,
                    seed: 77,
                },
                plan.clone(),
            )
            .unwrap();
            let outcome = run
                .run_until(
                    |s| s.with_counts(|c| protocol.is_ranked(c)),
                    512,
                    400_000_000,
                )
                .unwrap();
            assert!(
                outcome.converged(),
                "{engine:?} failed to reconverge: {outcome:?}"
            );
            assert_eq!(run.events_fired(), 2, "{engine:?} did not fire the plan");
            assert!(
                run.records().iter().all(|r| r.recovery_time().is_some()),
                "{engine:?} left an open recovery record: {:?}",
                run.records()
            );
            (
                run.inner().counts(),
                run.interactions(),
                run.records().to_vec(),
            )
        };

        let first = run_once();
        let second = run_once();
        assert_eq!(
            first, second,
            "{engine:?} trajectory is not a deterministic function of (seed, plan)"
        );

        // The final configuration is a legal ranking: every rank held by at
        // most one agent, hence (pigeonhole, n ranks) exactly one.
        assert!(protocol.is_ranked(&first.0));
        assert_eq!(first.0.iter().sum::<u64>(), n as u64);
    }
}
