//! Acceptance test for the adversarial fault model (ISSUE 7): the
//! self-stabilizing ranking workload, started from a **seeded-arbitrary**
//! configuration and corrupted **mid-run**, reconverges to a legal ranking
//! on all four engines — and every engine's trajectory is a deterministic
//! function of `(seed, plan)`.
//!
//! This is the end-to-end composition of the fault model's three pillars:
//! [`InitStrategy::SeededArbitrary`] (adversarial initialization),
//! [`FaultPlan`] (in-run state corruption, injected exactly per
//! representation), and recovery probing through `AdversarialRun::run_until`
//! on the ported self-stabilizing protocol [`SelfStabRanking`].  The
//! engine/determinism battery itself lives in the shared template
//! ([`common::assert_recovers_deterministically`]), which the other three
//! self-stabilizing workloads (`recovery_suite.rs`) reuse.

mod common;

use common::RecoveryCase;
use ppproto::SelfStabRanking;
use ppsim::{CorruptionTarget, FaultEvent, FaultKind, FaultPlan, InitStrategy};

#[test]
fn ranking_recovers_from_arbitrary_init_and_mid_run_corruption_on_every_engine() {
    let n = 48usize;
    // Two transient faults: a pile-up (12 agents forced onto one rank, the
    // worst shape for the collision rule) and a uniform scribble across the
    // whole state space.
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 20_000,
            kind: FaultKind::Corrupt {
                agents: 12,
                target: CorruptionTarget::State(14),
            },
        },
        FaultEvent {
            at: 40_000,
            kind: FaultKind::Corrupt {
                agents: 8,
                target: CorruptionTarget::Uniform { states: 2 * n },
            },
        },
    ])
    .unwrap();
    common::assert_recovers_deterministically(&RecoveryCase {
        label: "ranking",
        protocol: SelfStabRanking::new(n),
        n,
        seed: 1234,
        init: InitStrategy::SeededArbitrary {
            states: 2 * n,
            seed: 77,
        },
        plan,
        // A legal ranking: every rank held by at most one agent, hence
        // (pigeonhole, n ranks) exactly one.
        predicate: |p, c| p.is_ranked(c),
        check_every: 512,
        budget: 400_000_000,
    });
}
