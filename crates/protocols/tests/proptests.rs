//! Property-based tests for the auxiliary protocols.

use proptest::prelude::*;

use ppproto::junta::{junta_interact, JuntaState};
use ppproto::load_balancing::{po2_balance, po2_total_tokens, split_evenly, EMPTY_LOAD};
use ppproto::phase_clock::{PhaseClock, PhaseClockState};
use ppproto::synthetic_coin::{coin_interact, CoinState};
use ppproto::{max_broadcast, or_broadcast};

fn junta_state_strategy() -> impl Strategy<Value = JuntaState> {
    (0u8..12, any::<bool>(), any::<bool>()).prop_map(|(level, active, junta)| JuntaState {
        level,
        active,
        junta,
    })
}

fn clock_state_strategy(hours: u8) -> impl Strategy<Value = PhaseClockState> {
    (0..hours, 0u32..100, any::<bool>()).prop_map(|(hour, phase, first_tick)| PhaseClockState {
        hour,
        phase,
        first_tick,
    })
}

proptest! {
    /// Maximum broadcast always results in both agents holding the maximum of the inputs.
    #[test]
    fn max_broadcast_holds_maximum(a in any::<u64>(), b in any::<u64>()) {
        let (mut x, mut y) = (a, b);
        max_broadcast(&mut x, &mut y);
        prop_assert_eq!(x, a.max(b));
        prop_assert_eq!(y, a.max(b));
    }

    /// OR broadcast is the boolean special case of maximum broadcast.
    #[test]
    fn or_broadcast_is_max(a in any::<bool>(), b in any::<bool>()) {
        let (mut x, mut y) = (a, b);
        or_broadcast(&mut x, &mut y);
        prop_assert_eq!(x, a || b);
        prop_assert_eq!(y, a || b);
    }

    /// Classical load balancing conserves the total load and leaves a discrepancy of at
    /// most one between the two participants.
    #[test]
    fn split_evenly_conserves_load(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (mut x, mut y) = (a, b);
        split_evenly(&mut x, &mut y);
        prop_assert_eq!(x + y, a + b);
        prop_assert!(y >= x);
        prop_assert!(y - x <= 1);
    }

    /// Powers-of-two balancing conserves tokens and never creates a load above the
    /// pre-interaction maximum.
    #[test]
    fn po2_balance_conserves_tokens(a in -1i32..40, b in -1i32..40) {
        let before = po2_total_tokens(&[a, b]);
        let max_before = a.max(b);
        let (mut x, mut y) = (a, b);
        po2_balance(&mut x, &mut y);
        prop_assert_eq!(po2_total_tokens(&[x, y]), before);
        prop_assert!(x.max(y) <= max_before.max(0));
        prop_assert!(x >= EMPTY_LOAD && y >= EMPTY_LOAD);
    }

    /// The junta process never decreases levels, never resurrects the junta bit and
    /// never reactivates an inactive agent.
    #[test]
    fn junta_update_is_monotone(u in junta_state_strategy(), v in junta_state_strategy()) {
        let (mut a, mut b) = (u, v);
        junta_interact(&mut a, &mut b);
        prop_assert!(a.level >= u.level);
        prop_assert!(b.level >= v.level);
        prop_assert!(u.junta || !a.junta, "the junta bit can never be re-gained");
        prop_assert!(v.junta || !b.junta);
        prop_assert!(u.active || !a.active, "an inactive agent never becomes active");
        prop_assert!(v.active || !b.active);
        // Levels advance by at most one per interaction.
        prop_assert!(a.level <= u.level.max(v.level) + 1);
        prop_assert!(b.level <= u.level.max(v.level) + 1);
    }

    /// Phase-clock interactions never decrease a phase counter, never move an hour
    /// outside the clock face, and advance the phase by at most the partner's phase + 1.
    #[test]
    fn phase_clock_is_monotone(
        hours in 4u8..32,
        u in clock_state_strategy(31),
        v in clock_state_strategy(31),
        u_junta in any::<bool>(),
        v_junta in any::<bool>(),
    ) {
        let clock = PhaseClock::new(hours);
        let u0 = PhaseClockState { hour: u.hour % hours, ..u };
        let v0 = PhaseClockState { hour: v.hour % hours, ..v };
        let (mut a, mut b) = (u0, v0);
        clock.interact(&mut a, u_junta, &mut b, v_junta);
        prop_assert!(a.hour < hours);
        prop_assert!(b.hour < hours);
        prop_assert!(a.phase >= u0.phase);
        prop_assert!(b.phase >= v0.phase);
        let max_phase = u0.phase.max(v0.phase) + 1;
        prop_assert!(a.phase <= max_phase);
        prop_assert!(b.phase <= max_phase);
    }

    /// The synthetic coin hands each agent exactly the partner's previous parity and
    /// always flips both parities.
    #[test]
    fn synthetic_coin_reports_partner_parity(pu in any::<bool>(), pv in any::<bool>()) {
        let mut u = CoinState { parity: pu };
        let mut v = CoinState { parity: pv };
        let (bu, bv) = coin_interact(&mut u, &mut v);
        prop_assert_eq!(bu, pv);
        prop_assert_eq!(bv, pu);
        prop_assert_eq!(u.parity, !pu);
        prop_assert_eq!(v.parity, !pv);
    }
}
