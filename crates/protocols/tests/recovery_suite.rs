//! ISSUE 8 satellite: adversarial-recovery acceptance for the three ported
//! conformance protocols, through the same shared template as the ranking
//! workload (`ranking_recovery.rs`) — seeded-arbitrary init plus mid-run
//! corruption must reconverge deterministically on all four engines.

mod common;

use common::RecoveryCase;
use ppproto::{HermanTokens, StochasticCoalescence, TradeoffElection};
use ppsim::{CorruptionTarget, DenseProtocol, FaultEvent, FaultKind, FaultPlan, InitStrategy};

/// Herman's token ring: an arbitrary four-state soup plus a token
/// re-injection and a coin scribble still annihilates down to ≤ 1 token.
#[test]
fn herman_recovers_from_arbitrary_init_and_mid_run_corruption_on_every_engine() {
    let n = 96usize;
    let nn = (n as u64) * (n as u64);
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: nn / 2,
            kind: FaultKind::Corrupt {
                agents: 24,
                target: CorruptionTarget::State(2), // fresh (token, tails) agents
            },
        },
        FaultEvent {
            at: nn,
            kind: FaultKind::Corrupt {
                agents: 12,
                target: CorruptionTarget::Uniform { states: 4 },
            },
        },
    ])
    .unwrap();
    common::assert_recovers_deterministically(&RecoveryCase {
        label: "herman",
        protocol: HermanTokens::new(),
        n,
        seed: 4321,
        init: InitStrategy::SeededArbitrary {
            states: 4,
            seed: 11,
        },
        plan,
        predicate: |p, c| p.is_stable(c),
        check_every: 512,
        budget: 40 * nn,
    });
}

/// Stochastic coalescence: an arbitrary cluster soup plus a singleton
/// resurrection wave still coalesces to at most one cluster.
#[test]
fn coalescence_recovers_from_arbitrary_init_and_mid_run_corruption_on_every_engine() {
    let n = 48usize;
    let nn = (n as u64) * (n as u64);
    let protocol = StochasticCoalescence::new(n);
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 4 * nn,
            kind: FaultKind::Corrupt {
                agents: 12,
                target: CorruptionTarget::State(2), // resurrect singletons
            },
        },
        FaultEvent {
            at: 8 * nn,
            kind: FaultKind::Corrupt {
                agents: 6,
                target: CorruptionTarget::Uniform { states: 64 },
            },
        },
    ])
    .unwrap();
    common::assert_recovers_deterministically(&RecoveryCase {
        label: "coalescence",
        n,
        seed: 5678,
        init: InitStrategy::SeededArbitrary {
            states: protocol.num_states(),
            seed: 23,
        },
        protocol,
        plan,
        predicate: |p, c| p.is_coalesced(c),
        check_every: 512,
        budget: 200 * nn,
    });
}

/// Trade-off leader election: an arbitrary `(rank, tag)` soup plus a
/// mid-run pile-up still disperses to one agent per occupied rank with a
/// unique leader.
#[test]
fn election_recovers_from_arbitrary_init_and_mid_run_corruption_on_every_engine() {
    let n = 48usize;
    let k = 4usize;
    let nn = (n as u64) * (n as u64);
    let protocol = TradeoffElection::new(n, k);
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: 8 * nn,
            kind: FaultKind::Corrupt {
                agents: 12,
                target: CorruptionTarget::State(7 * k), // pile onto rank 7
            },
        },
        FaultEvent {
            at: 16 * nn,
            kind: FaultKind::Corrupt {
                agents: 6,
                target: CorruptionTarget::Uniform {
                    states: protocol.num_states(),
                },
            },
        },
    ])
    .unwrap();
    common::assert_recovers_deterministically(&RecoveryCase {
        label: "election",
        n,
        seed: 8765,
        init: InitStrategy::SeededArbitrary {
            states: protocol.num_states(),
            seed: 31,
        },
        protocol,
        plan,
        predicate: |p, c| p.is_stable(c),
        check_every: 512,
        budget: 2000 * nn,
    });
}
