//! ISSUE 8 tentpole gate: the standard conformance matrix — every ported
//! protocol × engine × init × fault plan — must pass its full per-cell
//! invariant battery (convergence within the bound, population and
//! conserved-quantity laws, closed recovery records, determinism, and a
//! mid-cell checkpoint round-trip).
//!
//! This is the debug-tier run ([`MatrixConfig::test_tier`], `n_big = 10³`);
//! CI's `scenario-matrix` job runs the same 38 cells at the release quick
//! tier (`n_big = 10⁴`) through `experiments --scenario-matrix`.

use ppproto::scenarios::{standard_matrix, MatrixConfig};
use ppsim::conformance::run_matrix;

#[test]
fn the_standard_matrix_passes_on_every_engine() {
    let cells = standard_matrix(&MatrixConfig::test_tier());
    assert!(cells.len() >= 36, "matrix shrank to {} cells", cells.len());
    let summary = run_matrix(&cells, |cell| {
        println!(
            "{:<32} {:<10} {}",
            cell.scenario,
            cell.engine,
            if cell.passed() { "pass" } else { "FAIL" }
        );
    });
    assert!(
        summary.passed(),
        "conformance matrix failures:\n{}",
        summary.markdown()
    );
}
