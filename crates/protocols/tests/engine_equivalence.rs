//! Distributional equivalence of the two simulation engines.
//!
//! The batched count-based engine ([`BatchedSimulator`]) claims to simulate
//! *exactly* the same stochastic process as the sequential per-agent engine
//! ([`Simulator`]) — batching is a sampling technique, not an approximation.
//! These tests pin that claim for the protocols the paper's experiments rely
//! on:
//!
//! * **epidemic** — convergence-time (all agents informed) distributions must
//!   agree: mean comparison across random `(n, seed)` pairs (properties) and a
//!   two-sample Kolmogorov–Smirnov bound on the full distribution (fixed test);
//! * **junta** — stabilisation time and the Lemma 4 observables (maximal
//!   level, junta size) must agree in distribution.
//!
//! Both engines run the *identical* transition system: the dense protocols
//! drive the sequential engine through [`DenseAdapter`], so any discrepancy is
//! attributable to the schedule sampling, which is exactly what is under test.
//!
//! The sharded engine ([`ShardedBatchedSimulator`]) is additionally held to
//! the batched engine's distribution at 2, 4 and 8 shards — this is the
//! empirical validation the `ppsim::sharded` module docs lean on for the
//! epoch approximation — plus a determinism check (same seed and shard count
//! ⇒ identical trajectory, independent of the worker-thread count).

use proptest::prelude::*;

use ppproto::{dense_all_inactive, dense_junta_size, dense_max_level, DenseEpidemic, DenseJunta};
use ppsim::{
    derive_seed, BatchedSimulator, DenseAdapter, ShardedBatchedSimulator, ShardedConfig, Simulator,
};

/// A sharded run configuration with `shards` shards on one worker thread
/// (thread count never affects trajectories; the determinism test pins that).
fn sharded_config(shards: usize) -> ShardedConfig {
    ShardedConfig {
        shards,
        threads: 1,
        epoch_interactions: None,
    }
}

/// Convergence time of a batched epidemic run: interactions until all `n`
/// agents are informed (checked every `n/8` interactions for resolution).
fn epidemic_time_batched(n: usize, seed: u64) -> u64 {
    let mut sim = BatchedSimulator::new(DenseEpidemic, n, seed).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.run_until(
        |s| s.count_of(1) == s.population(),
        (n as u64 / 8).max(1),
        u64::MAX >> 1,
    )
    .expect_converged("batched epidemic")
}

/// The same run on the sequential engine via the adapter.
fn epidemic_time_sequential(n: usize, seed: u64) -> u64 {
    let mut sim = Simulator::new(DenseAdapter(DenseEpidemic), n, seed).unwrap();
    sim.states_mut()[0] = 1;
    sim.run_until(
        |s| s.states().iter().all(|&x| x == 1),
        (n as u64 / 8).max(1),
        u64::MAX >> 1,
    )
    .expect_converged("sequential epidemic")
}

/// Junta stabilisation on the batched engine:
/// `(all-inactive time, max level, junta size)`.
fn junta_run_batched(n: usize, seed: u64) -> (u64, u8, u64) {
    let d = DenseJunta::new();
    let mut sim = BatchedSimulator::new(d, n, seed).unwrap();
    let t = sim
        .run_until(
            |s| dense_all_inactive(s.protocol(), s.counts()),
            (n as u64 / 4).max(1),
            u64::MAX >> 1,
        )
        .expect_converged("batched junta");
    let level = dense_max_level(sim.protocol(), sim.counts());
    let junta = dense_junta_size(sim.protocol(), sim.counts());
    (t, level, junta)
}

/// The same junta run on the sequential engine via the adapter.
fn junta_run_sequential(n: usize, seed: u64) -> (u64, u8, u64) {
    let d = DenseJunta::new();
    let mut sim = Simulator::new(DenseAdapter(d), n, seed).unwrap();
    let t = sim
        .run_until(
            |s| s.states().iter().all(|&idx| !d.decode(idx as usize).active),
            (n as u64 / 4).max(1),
            u64::MAX >> 1,
        )
        .expect_converged("sequential junta");
    let decoded: Vec<_> = sim.states().iter().map(|&i| d.decode(i as usize)).collect();
    let top = decoded.iter().map(|s| s.level).max().unwrap();
    let junta = decoded.iter().filter(|s| s.junta && s.level == top).count() as u64;
    (t, top, junta)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Two-sample Kolmogorov–Smirnov statistic.
fn ks_statistic(a: &mut [u64], b: &mut [u64]) -> f64 {
    a.sort_unstable();
    b.sort_unstable();
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mean epidemic convergence times agree across engines for random
    /// populations and seed streams (15 trials per engine per case; the
    /// tolerance is ~5 standard errors of the mean).
    #[test]
    fn epidemic_convergence_distributions_agree(n in 150usize..500, master in any::<u64>()) {
        let trials = 15u64;
        let batched: Vec<f64> =
            (0..trials).map(|t| epidemic_time_batched(n, derive_seed(master, t)) as f64).collect();
        let sequential: Vec<f64> = (0..trials)
            .map(|t| epidemic_time_sequential(n, derive_seed(master, 1000 + t)) as f64)
            .collect();
        let (mb, ms) = (mean(&batched), mean(&sequential));
        let ratio = mb / ms;
        prop_assert!(
            (0.7..1.43).contains(&ratio),
            "epidemic mean convergence diverges at n = {}: batched {:.0} vs sequential {:.0}",
            n, mb, ms
        );
    }

    /// Junta stabilisation statistics agree across engines: mean all-inactive
    /// time within tolerance, and the Lemma 4 observables overlap.
    #[test]
    fn junta_stabilisation_distributions_agree(n in 150usize..500, master in any::<u64>()) {
        let trials = 12u64;
        let b: Vec<(u64, u8, u64)> =
            (0..trials).map(|t| junta_run_batched(n, derive_seed(master, t))).collect();
        let s: Vec<(u64, u8, u64)> =
            (0..trials).map(|t| junta_run_sequential(n, derive_seed(master, 1000 + t))).collect();

        let mb = mean(&b.iter().map(|r| r.0 as f64).collect::<Vec<_>>());
        let ms = mean(&s.iter().map(|r| r.0 as f64).collect::<Vec<_>>());
        let ratio = mb / ms;
        prop_assert!(
            (0.6..1.67).contains(&ratio),
            "junta mean stabilisation diverges at n = {}: batched {:.0} vs sequential {:.0}",
            n, mb, ms
        );

        // Maximal levels live in the same narrow Lemma 4 band for both engines.
        let lvl_b = mean(&b.iter().map(|r| f64::from(r.1)).collect::<Vec<_>>());
        let lvl_s = mean(&s.iter().map(|r| f64::from(r.1)).collect::<Vec<_>>());
        prop_assert!(
            (lvl_b - lvl_s).abs() <= 1.5,
            "mean maximal junta levels diverge at n = {}: batched {:.2} vs sequential {:.2}",
            n, lvl_b, lvl_s
        );
    }
}

/// Full-distribution check: the empirical convergence-time distributions of
/// the two engines pass a two-sample KS test at a conservative threshold.
#[test]
fn epidemic_convergence_passes_kolmogorov_smirnov() {
    let n = 400usize;
    let samples = 120usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| epidemic_time_batched(n, derive_seed(0x4B53, t as u64)))
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| epidemic_time_sequential(n, derive_seed(0xFACE, t as u64)))
        .collect();
    let d = ks_statistic(&mut batched, &mut sequential);
    // Critical value at α ≈ 0.001 for two samples of 120: 1.95·sqrt(2/120) ≈ 0.252.
    assert!(
        d < 0.252,
        "KS statistic {d:.3} exceeds the α=0.001 critical value — the engines \
         sample different convergence-time distributions"
    );
}

/// Convergence time of a sharded epidemic run (same observable as the
/// batched/sequential helpers above).
fn epidemic_time_sharded(n: usize, seed: u64, shards: usize) -> u64 {
    let mut sim =
        ShardedBatchedSimulator::new(DenseEpidemic, n, seed, sharded_config(shards)).unwrap();
    sim.transfer(0, 1, 1).unwrap();
    sim.run_until(
        |s| s.count_of(1) == s.population(),
        (n as u64 / 8).max(1),
        u64::MAX >> 1,
    )
    .expect_converged("sharded epidemic")
}

/// Junta stabilisation on the sharded engine:
/// `(all-inactive time, max level, junta size)`.
fn junta_run_sharded(n: usize, seed: u64, shards: usize) -> (u64, u8, u64) {
    let d = DenseJunta::new();
    let mut sim = ShardedBatchedSimulator::new(d, n, seed, sharded_config(shards)).unwrap();
    let t = sim
        .run_until(
            |s| dense_all_inactive(s.protocol(), s.counts()),
            (n as u64 / 4).max(1),
            u64::MAX >> 1,
        )
        .expect_converged("sharded junta");
    let level = dense_max_level(sim.protocol(), sim.counts());
    let junta = dense_junta_size(sim.protocol(), sim.counts());
    (t, level, junta)
}

/// Sharded vs batched, epidemic at n = 10⁵: the convergence-time
/// distributions pass a two-sample KS test at 2, 4 and 8 shards.
///
/// This is the headline fidelity check for the sharded engine's epoch
/// approximation (see `ppsim::sharded`): the n is large enough for the
/// default epoch window (`n/4`) and per-shard sub-populations down to
/// `n/8 ≈ 10⁴` to be in their production regime.
#[test]
fn sharded_epidemic_passes_kolmogorov_smirnov() {
    let n = 100_000usize;
    let samples = 80usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| epidemic_time_batched(n, derive_seed(0x5EED, t as u64)))
        .collect();
    for shards in [2usize, 4, 8] {
        let mut sharded: Vec<u64> = (0..samples)
            .map(|t| {
                epidemic_time_sharded(n, derive_seed(0x5AAD + shards as u64, t as u64), shards)
            })
            .collect();
        let d = ks_statistic(&mut sharded, &mut batched);
        // Critical value at α ≈ 0.001 for two samples of 80: 1.95·sqrt(2/80) ≈ 0.308.
        assert!(
            d < 0.308,
            "KS statistic {d:.3} at {shards} shards exceeds the α=0.001 critical value — \
             the sharded engine distorts the epidemic convergence-time distribution"
        );
    }
}

/// Sharded vs batched, junta at n = 10⁵: stabilisation-time KS plus the
/// Lemma 4 observables (maximal level within one unit on average).
#[test]
fn sharded_junta_passes_kolmogorov_smirnov() {
    let n = 100_000usize;
    let samples = 60usize;
    let batched_runs: Vec<(u64, u8, u64)> = (0..samples)
        .map(|t| junta_run_batched(n, derive_seed(0x71A5, t as u64)))
        .collect();
    let mut batched: Vec<u64> = batched_runs.iter().map(|r| r.0).collect();
    let lvl_batched = batched_runs.iter().map(|r| f64::from(r.1)).sum::<f64>() / samples as f64;
    for shards in [2usize, 4, 8] {
        let sharded_runs: Vec<(u64, u8, u64)> = (0..samples)
            .map(|t| junta_run_sharded(n, derive_seed(0x71A6 + shards as u64, t as u64), shards))
            .collect();
        let mut sharded: Vec<u64> = sharded_runs.iter().map(|r| r.0).collect();
        let d = ks_statistic(&mut sharded, &mut batched);
        // Critical value at α ≈ 0.001 for two samples of 60: 1.95·sqrt(2/60) ≈ 0.356.
        assert!(
            d < 0.356,
            "KS statistic {d:.3} at {shards} shards exceeds the α=0.001 critical value — \
             the sharded engine distorts the junta stabilisation-time distribution"
        );
        let lvl_sharded = sharded_runs.iter().map(|r| f64::from(r.1)).sum::<f64>() / samples as f64;
        assert!(
            (lvl_sharded - lvl_batched).abs() <= 1.0,
            "mean maximal junta levels diverge at {shards} shards: \
             sharded {lvl_sharded:.2} vs batched {lvl_batched:.2}"
        );
    }
}

/// Same seed and shard count ⇒ identical trajectory, whatever the thread
/// count: worker threads advance disjoint shards under shard-private RNGs,
/// so scheduling cannot leak into results.
#[test]
fn sharded_runs_are_deterministic_across_thread_counts() {
    let n = 50_000usize;
    let d = DenseJunta::new();
    let mut reference: Option<(Vec<u64>, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ShardedConfig {
            shards: 4,
            threads,
            epoch_interactions: None,
        };
        let mut sim = ShardedBatchedSimulator::new(d, n, 0xD37, cfg).unwrap();
        let outcome = sim.run_until(
            |s| dense_all_inactive(s.protocol(), s.counts()),
            (n as u64 / 4).max(1),
            u64::MAX >> 1,
        );
        let t = outcome.expect_converged("deterministic junta");
        let counts = sim.into_counts();
        match &reference {
            None => reference = Some((counts, t)),
            Some((ref_counts, ref_t)) => {
                assert_eq!(&counts, ref_counts, "threads = {threads} diverged");
                assert_eq!(
                    t, *ref_t,
                    "threads = {threads} converged at a different time"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Mean epidemic convergence times also agree between the sharded and
    /// batched engines for random populations, seeds and shard counts.
    #[test]
    fn sharded_epidemic_means_agree(n in 2_000usize..8_000, shards in 2usize..9, master in any::<u64>()) {
        let trials = 12u64;
        let sharded: Vec<f64> = (0..trials)
            .map(|t| epidemic_time_sharded(n, derive_seed(master, t), shards) as f64)
            .collect();
        let batched: Vec<f64> = (0..trials)
            .map(|t| epidemic_time_batched(n, derive_seed(master, 1000 + t)) as f64)
            .collect();
        let (ms, mb) = (mean(&sharded), mean(&batched));
        let ratio = ms / mb;
        prop_assert!(
            (0.7..1.43).contains(&ratio),
            "epidemic mean convergence diverges at n = {} / {} shards: sharded {:.0} vs batched {:.0}",
            n, shards, ms, mb
        );
    }
}

/// The junta observables also pass a KS check on the stabilisation time.
#[test]
fn junta_stabilisation_passes_kolmogorov_smirnov() {
    let n = 300usize;
    let samples = 80usize;
    let mut batched: Vec<u64> = (0..samples)
        .map(|t| junta_run_batched(n, derive_seed(0xBEEF, t as u64)).0)
        .collect();
    let mut sequential: Vec<u64> = (0..samples)
        .map(|t| junta_run_sequential(n, derive_seed(0xCAFE, t as u64)).0)
        .collect();
    let d = ks_statistic(&mut batched, &mut sequential);
    // Critical value at α ≈ 0.001 for two samples of 80: 1.95·sqrt(2/80) ≈ 0.308.
    assert!(
        d < 0.308,
        "KS statistic {d:.3} exceeds the α=0.001 critical value — the engines \
         sample different stabilisation-time distributions"
    );
}
