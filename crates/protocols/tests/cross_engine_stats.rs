//! Cross-engine distributional equivalence for the ported conformance
//! protocols (ISSUE 8 satellite), mirroring `engine_equivalence.rs`:
//! two-sample Kolmogorov–Smirnov checks on fixed seed grids plus
//! mean-ratio properties over random `(n, master)` pairs.
//!
//! Observables are chosen so every engine stays in its affordable regime:
//!
//! * **Herman** (`q = 4`, count-friendly): time until ≤ `n/64` tokens
//!   remain from the all-token start, at `n = 10⁴` on all four engines.
//! * **Coalescence** (occupancy `O(√n)` early on): surviving clusters
//!   after exactly `2n` interactions from singletons, at `n = 10⁴` on all
//!   four engines.
//! * **Election** (`q = K·n`, count-hostile): time until half the ranks
//!   are occupied from the clean pile — in full on all four engines at
//!   `n = 64`, and sequential ↔ hybrid at `n = 10⁴` (the count engines'
//!   `O(q_occ²)` blocks are infeasible there; the per-agent pair is the
//!   claim that matters at that scale).

use proptest::prelude::*;

use ppproto::{HermanTokens, StochasticCoalescence, TradeoffElection};
use ppsim::{derive_seed, DenseSimulator, Engine};

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Two-sample Kolmogorov–Smirnov statistic (same as `engine_equivalence`).
fn ks_statistic(a: &mut [u64], b: &mut [u64]) -> f64 {
    a.sort_unstable();
    b.sort_unstable();
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Herman: interactions until at most `n/64` tokens survive the all-token
/// start (the `1/(k(k−1))` telescope keeps this `Θ(n²/m)`, cheap for
/// `m = n/64`).
fn herman_thinning_time(engine: Engine, n: usize, seed: u64) -> u64 {
    let p = HermanTokens::new();
    let target = (n as u64 / 64).max(1);
    let mut sim = DenseSimulator::new(engine, p, n, seed).unwrap();
    sim.run_until(
        |s| s.with_counts(|c| p.tokens(c) <= target),
        (n as u64 / 2).max(1),
        u64::MAX >> 1,
    )
    .expect_converged("herman thinning")
}

/// Coalescence: surviving clusters after exactly `2n` interactions from
/// the all-singleton start (Kingman's regime predicts `≈ n/2`).
fn coalescence_alive_after_2n(engine: Engine, n: usize, seed: u64) -> u64 {
    let p = StochasticCoalescence::new(n);
    let mut sim = DenseSimulator::new(engine, p, n, seed).unwrap();
    sim.run(2 * n as u64);
    sim.with_counts(|c| p.alive_clusters(c))
}

/// Election: interactions until half the ranks are occupied, from the
/// clean single-pile start (the distinct-rank count is non-decreasing).
fn election_dispersal_time(
    engine: Engine,
    n: usize,
    k: usize,
    threshold: usize,
    check_every: u64,
    seed: u64,
) -> u64 {
    let p = TradeoffElection::new(n, k);
    let mut sim = DenseSimulator::new(engine, p, n, seed).unwrap();
    sim.run_until(
        |s| s.with_counts(|c| p.distinct_ranks(c) >= threshold),
        check_every,
        u64::MAX >> 1,
    )
    .expect_converged("election dispersal")
}

/// Herman at n = 10⁴: the thinning-time distribution passes a two-sample
/// KS test between the sequential engine and each other engine.
#[test]
fn herman_thinning_passes_kolmogorov_smirnov_on_every_engine() {
    let n = 10_000usize;
    let samples = 60usize;
    let mut reference: Vec<u64> = (0..samples)
        .map(|t| herman_thinning_time(Engine::Sequential, n, derive_seed(0x4845, t as u64)))
        .collect();
    for (e, engine) in [
        Engine::Batched,
        Engine::Sharded {
            shards: 4,
            threads: 1,
        },
        Engine::Hybrid,
    ]
    .into_iter()
    .enumerate()
    {
        let mut other: Vec<u64> = (0..samples)
            .map(|t| herman_thinning_time(engine, n, derive_seed(0x5AAD + e as u64, t as u64)))
            .collect();
        let d = ks_statistic(&mut other, &mut reference);
        // Critical value at α ≈ 0.001 for two samples of 60: 1.95·sqrt(2/60) ≈ 0.356.
        assert!(
            d < 0.356,
            "KS statistic {d:.3} on {} — the engines sample different Herman \
             thinning-time distributions",
            engine.name()
        );
    }
}

/// Coalescence at n = 10⁴: the alive-after-2n distribution passes KS on
/// every engine and the means agree within 2%.
#[test]
fn coalescence_survivors_agree_on_every_engine() {
    let n = 10_000usize;
    let samples = 60usize;
    let mut reference: Vec<u64> = (0..samples)
        .map(|t| coalescence_alive_after_2n(Engine::Sequential, n, derive_seed(0x434C, t as u64)))
        .collect();
    let reference_mean = mean(&reference.iter().map(|&x| x as f64).collect::<Vec<_>>());
    for (e, engine) in [
        Engine::Batched,
        Engine::Sharded {
            shards: 4,
            threads: 1,
        },
        Engine::Hybrid,
    ]
    .into_iter()
    .enumerate()
    {
        let mut other: Vec<u64> = (0..samples)
            .map(|t| {
                coalescence_alive_after_2n(engine, n, derive_seed(0x1000 + e as u64, t as u64))
            })
            .collect();
        let other_mean = mean(&other.iter().map(|&x| x as f64).collect::<Vec<_>>());
        let ratio = other_mean / reference_mean;
        assert!(
            (0.98..1.02).contains(&ratio),
            "mean survivors diverge on {}: {other_mean:.1} vs sequential {reference_mean:.1}",
            engine.name()
        );
        let d = ks_statistic(&mut other, &mut reference);
        assert!(
            d < 0.356,
            "KS statistic {d:.3} on {} — the engines sample different coalescence \
             survivor distributions",
            engine.name()
        );
    }
}

/// Election at n = 64: the dispersal-time distribution passes KS on every
/// engine (full grid; the count engines are affordable at this n).
#[test]
fn election_dispersal_passes_kolmogorov_smirnov_on_every_engine() {
    let n = 64usize;
    let k = 4usize;
    let samples = 40usize;
    let mut reference: Vec<u64> = (0..samples)
        .map(|t| {
            election_dispersal_time(
                Engine::Sequential,
                n,
                k,
                n / 2,
                32,
                derive_seed(0x454C, t as u64),
            )
        })
        .collect();
    for (e, engine) in [
        Engine::Batched,
        Engine::Sharded {
            shards: 4,
            threads: 1,
        },
        Engine::Hybrid,
    ]
    .into_iter()
    .enumerate()
    {
        let mut other: Vec<u64> = (0..samples)
            .map(|t| {
                election_dispersal_time(
                    engine,
                    n,
                    k,
                    n / 2,
                    32,
                    derive_seed(0x2000 + e as u64, t as u64),
                )
            })
            .collect();
        let d = ks_statistic(&mut other, &mut reference);
        // Critical value at α ≈ 0.001 for two samples of 40: 1.95·sqrt(2/40) ≈ 0.436.
        assert!(
            d < 0.436,
            "KS statistic {d:.3} on {} — the engines sample different election \
             dispersal-time distributions",
            engine.name()
        );
    }
}

/// Election at n = 10⁴, sequential ↔ hybrid: the per-agent engines agree
/// on the early-dispersal milestone at the count-hostile scale.  The
/// milestone is `n/64` occupied ranks (≈ 5.5·10⁶ interactions; the pile
/// cascade makes deeper milestones `Θ(n·4^g)`-expensive, e.g. ≈ 4·10⁸ for
/// `n/8` — measured, and far past a unit-test budget).
#[test]
fn election_dispersal_agrees_sequential_vs_hybrid_at_n_10_000() {
    let n = 10_000usize;
    let k = 4usize;
    let samples = 8usize;
    let check = 4 * n as u64;
    let sequential: Vec<f64> = (0..samples)
        .map(|t| {
            election_dispersal_time(
                Engine::Sequential,
                n,
                k,
                n / 64,
                check,
                derive_seed(0xA11, t as u64),
            ) as f64
        })
        .collect();
    let hybrid: Vec<f64> = (0..samples)
        .map(|t| {
            election_dispersal_time(
                Engine::Hybrid,
                n,
                k,
                n / 64,
                check,
                derive_seed(0xB22, t as u64),
            ) as f64
        })
        .collect();
    let ratio = mean(&hybrid) / mean(&sequential);
    assert!(
        (0.8..1.25).contains(&ratio),
        "mean dispersal diverges at n = 10⁴: hybrid {:.0} vs sequential {:.0}",
        mean(&hybrid),
        mean(&sequential)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Herman mean thinning times agree between the batched and sequential
    /// engines for random populations and seed streams.
    #[test]
    fn herman_thinning_means_agree(n in 500usize..1500, master in any::<u64>()) {
        let trials = 10u64;
        let batched: Vec<f64> = (0..trials)
            .map(|t| herman_thinning_time(Engine::Batched, n, derive_seed(master, t)) as f64)
            .collect();
        let sequential: Vec<f64> = (0..trials)
            .map(|t| herman_thinning_time(Engine::Sequential, n, derive_seed(master, 1000 + t)) as f64)
            .collect();
        let ratio = mean(&batched) / mean(&sequential);
        prop_assert!(
            (0.7..1.43).contains(&ratio),
            "herman mean thinning diverges at n = {}: batched {:.0} vs sequential {:.0}",
            n, mean(&batched), mean(&sequential)
        );
    }

    /// Coalescence mean survivors after 2n interactions agree between the
    /// batched and sequential engines.
    #[test]
    fn coalescence_survivor_means_agree(n in 500usize..1500, master in any::<u64>()) {
        let trials = 10u64;
        let batched: Vec<f64> = (0..trials)
            .map(|t| coalescence_alive_after_2n(Engine::Batched, n, derive_seed(master, t)) as f64)
            .collect();
        let sequential: Vec<f64> = (0..trials)
            .map(|t| coalescence_alive_after_2n(Engine::Sequential, n, derive_seed(master, 1000 + t)) as f64)
            .collect();
        let ratio = mean(&batched) / mean(&sequential);
        prop_assert!(
            (0.9..1.12).contains(&ratio),
            "coalescence mean survivors diverge at n = {}: batched {:.1} vs sequential {:.1}",
            n, mean(&batched), mean(&sequential)
        );
    }
}
