//! ISSUE 8 satellite: `SelfStabRanking` at `n ≥ 10⁵` — the `q = 2n` state
//! space against the engines' dense-index ceiling, and the hybrid sizing
//! regression that scaling it surfaced.
//!
//! The sizing issue: a configuration replacement (`set_counts`, fault
//! injection) used to leave the hybrid engine on its dense substrate until
//! the occupancy monitor's *sampled* window confirmed the degeneracy —
//! `max(n/4, 256)` interactions away.  With an adversarial `Θ(n)`-occupancy
//! configuration at `n = 10⁵` each `Θ(√n)`-interaction block costs
//! `O(q_occ²) ≈ 10¹⁰` class evaluations, so the run effectively hung long
//! before the first observation.  The fix treats a replacement as exact
//! evidence and migrates to the per-agent representation immediately;
//! these tests pin that behaviour (and would time out without it).

use ppproto::SelfStabRanking;
use ppsim::{DenseProtocol, DenseSimulator, Engine, HybridSimulator, SwitchDirection};

#[test]
fn q_2n_fits_the_dense_index_space_at_n_100k() {
    let n = 100_000usize;
    let p = SelfStabRanking::new(n);
    assert_eq!(p.num_states(), 2 * n);
    // Count-engine construction is O(q) vectors, not O(q²) tables: building
    // the batched engine at q = 2·10⁵ and running a short clean-init leg
    // (occupancy grows from 1, so blocks stay cheap) must just work.
    let mut sim = DenseSimulator::new(Engine::Batched, p, n, 7).unwrap();
    sim.run(5_000);
    assert_eq!(sim.interactions(), 5_000);
    assert_eq!(sim.population(), n as u64);
}

#[test]
#[should_panic(expected = "state space 2n")]
fn rank_spaces_past_the_u32_index_ceiling_are_rejected() {
    // The engines' dense tables index states with u32s; a q = 2n that
    // cannot fit must be rejected at construction, not corrupt a run.
    let _ = SelfStabRanking::new(u32::MAX as usize / 2 + 1);
}

#[test]
fn hybrid_flees_a_degenerate_replacement_immediately_at_n_100k() {
    let n = 100_000usize;
    let p = SelfStabRanking::new(n);
    let mut sim = HybridSimulator::new(p, n, 7).unwrap();
    assert!(sim.is_dense());

    // Adversarial scatter: every rank below n/2 holds two agents (one per
    // coin value) — Θ(n) occupied states, the exact shape that used to
    // hang the dense substrate.
    let mut counts = vec![0u64; p.num_states()];
    for i in 0..n {
        counts[i % (2 * n)] += 1;
    }
    sim.set_counts(counts).unwrap();

    // The replacement itself must have migrated the run — no interactions
    // executed, no monitor window waited for.
    assert!(
        !sim.is_dense(),
        "a Θ(n)-occupancy replacement must leave dense mode at once"
    );
    assert_eq!(sim.switches().len(), 1);
    assert_eq!(sim.switches()[0].direction, SwitchDirection::ToAgent);
    assert_eq!(sim.switches()[0].interactions, 0);
    assert_eq!(sim.switches()[0].occupied, n);
    assert_eq!(
        sim.stint_kind(),
        Some("decoded"),
        "the codec stint steps native structs"
    );

    // And the per-agent leg actually makes progress at n = 10⁵: a million
    // interactions complete (they would not, dense) with the population and
    // state space intact and collisions being repaired.
    let before = sim.as_dense_counts().is_none();
    assert!(before);
    let distinct_before = p.distinct_ranks(&sim.counts());
    sim.run(1_000_000);
    assert_eq!(sim.interactions(), 1_000_000);
    assert!(
        sim.fault().is_none(),
        "no parked migration fault: {:?}",
        sim.fault()
    );
    let counts = sim.counts();
    assert_eq!(counts.iter().sum::<u64>(), n as u64);
    let distinct_after = p.distinct_ranks(&counts);
    assert!(
        distinct_after > distinct_before,
        "collision repair must make progress ({distinct_before} → {distinct_after})"
    );
}
