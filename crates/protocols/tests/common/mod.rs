//! Shared template for the self-stabilization recovery acceptance tests:
//! start a workload from an adversarial configuration, corrupt it mid-run
//! on a deterministic [`FaultPlan`], and require reconvergence — twice,
//! bit-identically — on all four engines.

use ppsim::{
    AdversarialRun, DenseProtocol, Engine, FaultPlan, InitStrategy, RecoveryRecord, SimError,
};

pub const ALL_ENGINES: [Engine; 4] = [
    Engine::Sequential,
    Engine::Batched,
    Engine::Sharded {
        shards: 4,
        threads: 1,
    },
    Engine::Hybrid,
];

/// One recovery workload: everything the template needs to drive a
/// protocol through the adversarial harness.
pub struct RecoveryCase<'a, P> {
    /// Workload label for assertion messages.
    pub label: &'a str,
    /// The self-stabilizing protocol under test.
    pub protocol: P,
    /// Population size.
    pub n: usize,
    /// Master seed of every run (the trajectory must be a pure function of
    /// `(seed, plan, engine)`).
    pub seed: u64,
    /// Adversarial starting configuration.
    pub init: InitStrategy,
    /// Mid-run fault schedule.
    pub plan: FaultPlan,
    /// The legitimacy predicate the workload must reconverge to.
    pub predicate: fn(&P, &[u64]) -> bool,
    /// Predicate probe spacing.
    pub check_every: u64,
    /// Interaction budget per run.
    pub budget: u64,
}

/// Drive `case` on every engine: the run must reconverge within budget
/// with every fault fired and every recovery record closed, the final
/// configuration must satisfy the predicate and conserve the population,
/// and a second identically-seeded run must retrace the first exactly
/// (final counts, logical clock, and recovery records).
pub fn assert_recovers_deterministically<P>(case: &RecoveryCase<'_, P>)
where
    P: DenseProtocol + Clone + Send + Sync + 'static,
{
    for engine in ALL_ENGINES {
        let run_once = || -> Result<(Vec<u64>, u64, Vec<RecoveryRecord>), SimError> {
            let mut run = AdversarialRun::new(
                engine,
                case.protocol.clone(),
                case.n,
                case.seed,
                case.init.clone(),
                case.plan.clone(),
            )?;
            let outcome = run.run_until(
                |s| s.with_counts(|c| (case.predicate)(&case.protocol, c)),
                case.check_every,
                case.budget,
            )?;
            assert!(
                outcome.converged(),
                "{} on {engine:?} failed to reconverge: {outcome:?}",
                case.label
            );
            assert_eq!(
                run.events_fired(),
                case.plan.events().len(),
                "{} on {engine:?} did not fire the whole plan",
                case.label
            );
            assert!(
                run.records().iter().all(|r| r.recovery_time().is_some()),
                "{} on {engine:?} left an open recovery record: {:?}",
                case.label,
                run.records()
            );
            Ok((
                run.inner().counts(),
                run.interactions(),
                run.records().to_vec(),
            ))
        };

        let first = run_once().unwrap();
        let second = run_once().unwrap();
        assert_eq!(
            first, second,
            "{} on {engine:?}: trajectory is not a deterministic function of (seed, plan)",
            case.label
        );
        assert!(
            (case.predicate)(&case.protocol, &first.0),
            "{} on {engine:?}: final configuration is not legitimate",
            case.label
        );
        assert_eq!(
            first.0.iter().sum::<u64>(),
            case.n as u64,
            "{} on {engine:?}: population not conserved",
            case.label
        );
    }
}
