//! Codec laws for the three ported conformance protocols (ISSUE 8
//! satellite): every [`AgentCodec`] must round-trip its total encoding,
//! refuse out-of-range indices, bisimulate the dense transition through
//! `decode → native interact → encode`, agree on outputs — and the hybrid
//! engine's decoded stint must retrace the interned `u32` stint exactly.

use proptest::prelude::*;

use ppproto::{HermanTokens, StochasticCoalescence, TradeoffElection};
use ppsim::stint::AgentCodec;
use ppsim::{seeded_rng, DenseProtocol, HybridConfig, HybridSimulator, Protocol};

/// The three codec laws every total (arithmetic) encoding must satisfy,
/// checked for one index: round-trip, `try_decode` totality in range, and
/// the output law.
fn check_index_laws<C: AgentCodec>(codec: &C, i: usize)
where
    <C::Native as Protocol>::State: PartialEq + std::fmt::Debug,
{
    assert_eq!(codec.encode_agent(&codec.decode_agent(i)), i);
    assert_eq!(codec.try_decode_agent(i), Some(codec.decode_agent(i)));
    assert_eq!(
        codec.native().output(&codec.decode_agent(i)),
        DenseProtocol::output(codec, i),
        "output law broken at index {i}"
    );
}

/// The bisimulation law for one ordered pair: stepping decoded structs
/// through the native protocol and re-encoding must agree with the dense
/// transition table.
fn check_bisimulation<C: AgentCodec>(codec: &C, i: usize, j: usize) {
    let native = codec.native();
    let mut rng = seeded_rng(0);
    let mut u = codec.decode_agent(i);
    let mut v = codec.decode_agent(j);
    native.interact(&mut u, &mut v, &mut rng);
    assert_eq!(
        (codec.encode_agent(&u), codec.encode_agent(&v)),
        codec.transition(i, j),
        "δ diverged at ({i}, {j})"
    );
}

proptest! {
    /// Herman: all four states round-trip and bisimulate.
    #[test]
    fn herman_codec_laws(i in 0usize..4, j in 0usize..4) {
        let codec = HermanTokens::new();
        check_index_laws(&codec, i);
        check_bisimulation(&codec, i, j);
    }

    /// Coalescence: the `(size, coin)` packing round-trips and bisimulates
    /// over the whole `0..2(max_size+1)` range.
    #[test]
    fn coalescence_codec_laws(i in 0usize..258, j in 0usize..258) {
        let codec = StochasticCoalescence::new(128);
        prop_assume!(i < codec.num_states() && j < codec.num_states());
        check_index_laws(&codec, i);
        check_bisimulation(&codec, i, j);
    }

    /// Election: the `(rank, tag)` packing round-trips and bisimulates
    /// over the whole `0..K·n` range.
    #[test]
    fn election_codec_laws(i in 0usize..256, j in 0usize..256, k in 2usize..9) {
        let codec = TradeoffElection::new(64, k);
        let q = codec.num_states();
        check_index_laws(&codec, i % q);
        check_bisimulation(&codec, i % q, j % q);
    }
}

#[test]
fn out_of_range_indices_decode_to_none() {
    let herman = HermanTokens::new();
    assert_eq!(herman.try_decode_agent(4), None);
    let coalescence = StochasticCoalescence::new(64);
    assert_eq!(coalescence.try_decode_agent(coalescence.num_states()), None);
    let election = TradeoffElection::new(48, 4);
    assert_eq!(election.try_decode_agent(election.num_states() + 7), None);
}

/// The decoded stint must retrace the interned `u32` stint interaction for
/// interaction: the native structs and the dense indices step the same
/// transition system off the same RNG stream, so the trajectories are
/// bit-identical, not just distributionally equal.
fn decoded_stint_matches_interned<C>(
    codec: C,
    n: usize,
    base: HybridConfig,
    scatter: impl Fn(usize) -> usize,
) where
    C: AgentCodec + Sync,
{
    let q = codec.num_states();
    let mut counts = vec![0u64; q];
    for a in 0..n {
        counts[scatter(a) % q] += 1;
    }
    let mut decoded = HybridSimulator::with_config(codec.clone(), n, 977, base).unwrap();
    let interned_config = HybridConfig {
        interned_stints: true,
        ..base
    };
    let mut interned = HybridSimulator::with_config(codec, n, 977, interned_config).unwrap();
    // The scatter is occupancy-degenerate, so both runs migrate to their
    // per-agent representation on the replacement itself.
    decoded.set_counts(counts.clone()).unwrap();
    interned.set_counts(counts).unwrap();
    assert_eq!(decoded.stint_kind(), Some("decoded"));
    assert_eq!(interned.stint_kind(), Some("interned"));
    for _ in 0..8 {
        decoded.run(5_000);
        interned.run(5_000);
        assert_eq!(
            decoded.counts(),
            interned.counts(),
            "decoded and interned stints diverged"
        );
    }
}

#[test]
fn coalescence_decoded_stint_matches_interned_trajectory() {
    // Every agent a distinct size: Θ(n) occupancy forces the per-agent leg.
    decoded_stint_matches_interned(
        StochasticCoalescence::new(512),
        512,
        HybridConfig::default(),
        |a| 2 * a + (a & 1),
    );
}

#[test]
fn election_decoded_stint_matches_interned_trajectory() {
    decoded_stint_matches_interned(
        TradeoffElection::new(512, 4),
        512,
        HybridConfig::default(),
        |a| 4 * a + (a % 3),
    );
}

#[test]
fn herman_decoded_stint_matches_interned_trajectory() {
    // Herman is count-friendly (q = 4 can never exceed the default
    // up-threshold), so lower the threshold until the four-state scatter
    // counts as degenerate and the per-agent stint takes over.
    let config = HybridConfig {
        switch_up: 0.5,
        switch_down: 0.1,
        ..HybridConfig::default()
    };
    decoded_stint_matches_interned(HermanTokens::new(), 24, config, |a| a);
}
