//! Multi-threaded execution of independent simulation trials.
//!
//! Experiments run many independent executions (different seeds, different
//! population sizes).  Trials are embarrassingly parallel, so the harness fans them
//! out over a fixed number of worker threads.  Results are returned in trial order
//! regardless of completion order.
//!
//! Work is distributed dynamically (an atomic cursor), so long trials do not
//! stall whole chunks; results are written through **per-slot** locks, so the
//! fan-out does not serialise on a single shared collection and scales with the
//! number of cores.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `trials` independent jobs on as many worker threads as there are available
/// CPUs (capped at the number of trials), returning the results in trial order.
///
/// The closure receives the trial index `0..trials` and must be deterministic given
/// that index for reproducibility (derive per-trial seeds from the index with
/// [`derive_seed`](crate::rng::derive_seed)).
///
/// # Examples
///
/// ```rust
/// let squares = ppsim::run_trials(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_trials<T, F>(trials: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    run_trials_with_threads(trials, threads, job)
}

/// Run `trials` independent jobs on at most `threads` worker threads, returning the
/// results in trial order.
///
/// Each result is written to its own pre-allocated slot — there is no shared
/// results lock, so completion of cheap trials is never blocked behind another
/// thread's write.
///
/// # Panics
///
/// Panics if a worker thread panics; the panic of the job is propagated.
pub fn run_trials_with_threads<T, F>(trials: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, trials);
    if threads == 1 {
        return (0..trials).map(&job).collect();
    }

    let next = AtomicUsize::new(0);
    // One slot per trial: a worker takes a trial index from the atomic cursor and
    // writes into the slot it now exclusively owns.  The per-slot mutexes are
    // never contended (each is locked exactly once); they exist only to satisfy
    // the borrow checker without `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = job(i);
                *slots[i].lock() = Some(out);
            });
        }
    })
    // Joining surfaces a worker panic on the caller thread. ppcheck: allow(no-unwrap)
    .expect("a simulation worker thread panicked");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // Infallible by construction: each index is sent once. ppcheck: allow(no-unwrap)
                .expect("every trial index is processed exactly once")
        })
        .collect()
}

/// Apply `job(item, arg)` to every `(item, arg)` pair, splitting the items
/// into at most `threads` contiguous chunks with one scoped worker thread per
/// chunk.
///
/// Used by the sharded engine's within-epoch phase: the items are the shard
/// sub-simulators, the args their interaction allotments.  Chunking is static
/// (shards carry near-identical load by construction), the single-thread path
/// spawns nothing, and the outcome is independent of `threads` because the
/// jobs touch disjoint items.
///
/// # Panics
///
/// Panics if a worker thread panics; the panic of the job is propagated.
pub(crate) fn run_chunked<T, F>(items: &mut [T], args: &[u64], threads: usize, job: F)
where
    T: Send,
    F: Fn(&mut T, u64) + Sync,
{
    debug_assert_eq!(items.len(), args.len());
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        for (item, &a) in items.iter_mut().zip(args) {
            job(item, a);
        }
        return;
    }
    let per_chunk = items.len().div_ceil(threads);
    let job = &job;
    crossbeam::thread::scope(|scope| {
        for (chunk, chunk_args) in items.chunks_mut(per_chunk).zip(args.chunks(per_chunk)) {
            scope.spawn(move |_| {
                for (item, &a) in chunk.iter_mut().zip(chunk_args) {
                    job(item, a);
                }
            });
        }
    })
    // Joining surfaces a worker panic on the caller thread. ppcheck: allow(no-unwrap)
    .expect("a shard worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_chunked_applies_every_job_once() {
        for threads in [1usize, 2, 3, 8, 16] {
            let mut items = vec![0u64; 10];
            let args: Vec<u64> = (0..10).collect();
            run_chunked(&mut items, &args, threads, |item, a| *item += a + 1);
            assert_eq!(items, (1..=10).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn run_chunked_handles_empty_and_single() {
        let mut items: Vec<u64> = Vec::new();
        run_chunked(&mut items, &[], 4, |_, _| unreachable!());
        let mut one = vec![7u64];
        run_chunked(&mut one, &[5], 4, |item, a| *item *= a);
        assert_eq!(one, vec![35]);
    }

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials_with_threads(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_returns_empty() {
        let out: Vec<u32> = run_trials_with_threads(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path_matches_parallel_path() {
        let seq = run_trials_with_threads(25, 1, |i| i as u64 * 7 + 1);
        let par = run_trials_with_threads(25, 5, |i| i as u64 * 7 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = run_trials_with_threads(64, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        let distinct: HashSet<usize> = out.into_iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn default_thread_count_runs_all_trials() {
        let out = run_trials(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_job_durations_still_fill_every_slot() {
        // Dynamic scheduling: slow early trials must not prevent later ones from
        // being picked up by idle workers.
        let out = run_trials_with_threads(32, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }
}
