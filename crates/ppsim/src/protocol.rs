//! The [`Protocol`] trait: transition function, initial state and output function.

use std::fmt::Debug;
use std::hash::Hash;

use rand::rngs::SmallRng;

/// A population protocol.
///
/// A protocol is specified by a state space `Q` (the associated type [`State`]),
/// an output domain `O` ([`Output`]), a transition function `δ : Q × Q → Q × Q`
/// ([`interact`]) and an output function `ω : Q → O` ([`output`]).
///
/// All of the protocols of the reproduced paper are **uniform**: their transition
/// function does not depend on the population size `n`.  The trait cannot enforce
/// this syntactically, but every protocol in this workspace documents whether it is
/// uniform and which parameters (if any) are population-size independent constants.
///
/// # Randomness
///
/// The classic population model is deterministic at the transition level — all
/// randomness comes from the scheduler.  The paper's `FastLeaderElection` obtains
/// random bits *uniformly* through **synthetic coins** (the parity of the partner's
/// interaction counter, Appendix D of the paper).  For convenience the transition
/// function nevertheless receives an RNG; faithful protocols simply ignore it, while
/// tests and pragmatic variants may draw from it.
///
/// [`State`]: Protocol::State
/// [`Output`]: Protocol::Output
/// [`interact`]: Protocol::interact
/// [`output`]: Protocol::output
///
/// # Examples
///
/// ```rust
/// use ppsim::Protocol;
/// use rand::rngs::SmallRng;
///
/// /// The textbook two-state "rumour spreading" protocol.
/// struct Rumour;
///
/// impl Protocol for Rumour {
///     type State = bool;
///     type Output = bool;
///     fn initial_state(&self) -> bool { false }
///     fn interact(&self, u: &mut bool, v: &mut bool, _rng: &mut SmallRng) {
///         let informed = *u || *v;
///         *u = informed;
///         *v = informed;
///     }
///     fn output(&self, s: &bool) -> bool { *s }
/// }
/// ```
pub trait Protocol {
    /// The per-agent state space `Q`.
    ///
    /// States are kept in a dense `Vec` by the simulator, so they should be cheap to
    /// clone (ideally `Copy`).  `Hash`/`Eq` are required so that the empirical
    /// state-space usage of an execution can be measured
    /// (see [`StateSpaceTracker`](crate::metrics::StateSpaceTracker)).
    type State: Clone + Debug + PartialEq + Eq + Hash + Send;

    /// The output domain `O` of the output function `ω`.
    type Output: Clone + Debug + PartialEq;

    /// The common initial state `q₀` every agent starts in.
    ///
    /// The counting problem requires all agents to start in the same state, which is
    /// why the initial state does not depend on the agent identity.  Executions that
    /// need a distinguished agent (e.g. a pre-elected leader in component-level
    /// experiments) modify the configuration after construction via
    /// [`Simulator::states_mut`](crate::Simulator::states_mut).
    fn initial_state(&self) -> Self::State;

    /// The transition function `δ`, applied to the ordered pair
    /// `(initiator, responder)` selected by the scheduler.
    ///
    /// Both states are updated in place; `(initiator, responder)` after the call is
    /// the pair `δ(initiator, responder)` of the paper.
    ///
    /// This is the hot loop of the per-agent engines: both the sequential
    /// [`Simulator`](crate::Simulator) and the hybrid engine's decoded
    /// per-agent stints ([`DecodedStint`](crate::stint::DecodedStint), via an
    /// [`AgentCodec`](crate::stint::AgentCodec)'s native protocol) drive this
    /// method monomorphically on native states — keep it allocation-free.
    fn interact(
        &self,
        initiator: &mut Self::State,
        responder: &mut Self::State,
        rng: &mut SmallRng,
    );

    /// The output function `ω` mapping an agent state to its current output.
    fn output(&self, state: &Self::State) -> Self::Output;

    /// A short human-readable protocol name used in reports and error messages.
    fn name(&self) -> &'static str {
        "unnamed-protocol"
    }
}

/// Blanket implementation so that `&P` can be used wherever a protocol is expected.
impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;
    type Output = P::Output;

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }

    fn interact(
        &self,
        initiator: &mut Self::State,
        responder: &mut Self::State,
        rng: &mut SmallRng,
    ) {
        (**self).interact(initiator, responder, rng);
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        (**self).output(state)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    struct Or;

    impl Protocol for Or {
        type State = bool;
        type Output = bool;
        fn initial_state(&self) -> bool {
            false
        }
        fn interact(&self, u: &mut bool, v: &mut bool, _rng: &mut SmallRng) {
            let o = *u || *v;
            *u = o;
            *v = o;
        }
        fn output(&self, s: &bool) -> bool {
            *s
        }
        fn name(&self) -> &'static str {
            "or"
        }
    }

    #[test]
    fn transition_is_applied_in_place() {
        let p = Or;
        let mut rng = seeded_rng(1);
        let mut a = true;
        let mut b = false;
        p.interact(&mut a, &mut b, &mut rng);
        assert!(a && b);
    }

    #[test]
    fn reference_delegation_preserves_behaviour() {
        let p = Or;
        let r = &p;
        assert_eq!(r.name(), "or");
        assert!(!r.initial_state());
        assert!(r.output(&true));
        let mut rng = seeded_rng(2);
        let mut a = false;
        let mut b = true;
        r.interact(&mut a, &mut b, &mut rng);
        assert!(a && b);
    }
}
