//! The sharded batched engine: parallel count-based simulation for `n` up to
//! `10⁹` agents.
//!
//! [`ShardedBatchedSimulator`] partitions the population into `S` shards of
//! (near-)equal fixed size `m_k ≈ n/S`, each owning a local counts vector
//! driven by its own [`BatchedSimulator`] (collision-free `Θ(√m)` blocks,
//! exact within the shard).  Time advances in **epochs** — windows of `W`
//! interactions of the global schedule:
//!
//! 1. **Allocate.**  Each of the `W` interactions of the window is classified
//!    by where its ordered agent pair lands: within shard `k` (probability
//!    `m_k(m_k−1)/(n(n−1))`) or across the ordered shard pair `(k, l)`
//!    (probability `m_k·m_l/(n(n−1))`).  The per-category counts are drawn
//!    from the exact multinomial ([`sample::multinomial`](crate::sample)).
//! 2. **Within-shard phase (parallel).**  Shard `k` advances by its allotment
//!    under its private RNG — this is the embarrassingly parallel bulk of the
//!    work, fanned out over scoped worker threads.
//! 3. **Cross-shard phase.**  For each ordered shard pair `(k, l)` the
//!    `C_kl` cross interactions are resolved in bulk: initiator states are a
//!    multivariate-hypergeometric draw from shard `k`, responder states from
//!    shard `l` (chunked so no chunk draws more than `1/128` of either shard;
//!    `resolve_cross` documents why), paired by a uniform random contingency
//!    table, and applied through the shared transition table.  Cost `O(q²)`
//!    per chunk, independent of `C_kl`.
//! 4. **Rebalance.**  The global multiset is re-partitioned uniformly at
//!    random into the fixed shard sizes (one multivariate-hypergeometric
//!    split per shard), restoring the invariant that shard membership is a
//!    uniform random partition of the population.
//!
//! # Exactness and the epoch approximation
//!
//! Conditioned on **no agent taking part in more than one interaction of the
//! window**, the sharded schedule and the uniform schedule are *identical in
//! distribution*: under a uniform random partition (step 4) the probability
//! that a uniform ordered pair falls within shard `k` / across `(k, l)` is
//! exactly the multinomial weight of step 1; given the category counts, the
//! participants drawn in steps 2–3 are uniform without-replacement samples;
//! and interactions on disjoint agents commute, so executing them
//! within-first is a legal reordering.  The per-epoch total-variation error
//! is therefore bounded by the probability that some agent is re-used within
//! the window under either scheduler, `ε(W) ≤ 4W²/n` (birthday bound over
//! the `2W` agent draws, both sides) — the same argument that makes the
//! single-shard batched engine exact at block scale, where the bound is
//! driven to zero by re-sampling the block boundary.
//!
//! The sharded engine instead runs **long** epochs (`W = n/4` by default), so
//! re-use within a window is common and the bound above is vacuous; what
//! remains exact is (a) all *within-shard* re-use, handled by the per-shard
//! batched engines as the true population process on `m_k` agents, and (b)
//! the per-window interaction *counts* per category.  The residual
//! approximation is the collapsed ordering between a shard's internal
//! interactions and its cross-shard interactions within one window, and the
//! suppressed re-use of agents *across* cross-shard chunks.  Both effects
//! shrink linearly with `W` (set [`ShardedConfig::epoch_interactions`] to
//! trade throughput for fidelity — at `W ≲ √n` the engine is exact by the
//! bound above) and are validated empirically: the engine-equivalence suite
//! (`crates/protocols/tests/engine_equivalence.rs`) holds sharded runs at 2,
//! 4 and 8 shards to the same Kolmogorov–Smirnov and mean-ratio thresholds
//! the batched engine is held to against the sequential one.
//!
//! # Determinism
//!
//! The trajectory is a pure function of `(protocol, n, seed, shards, epoch)`.
//! Worker threads only ever advance disjoint shards under shard-private RNGs
//! seeded from the master seed, and every global draw (allocation,
//! cross-shard resolution, rebalancing) happens on the master RNG in a fixed
//! order — so changing `threads` changes wall-clock time, never results.
//!
//! Dynamic protocols ([`DenseProtocol::dynamic`]) share one state-interning
//! registry across all shard copies; to keep index assignment (and therefore
//! the trajectory) independent of the thread schedule, the within-shard phase
//! of such protocols is pinned to a single worker thread.  Static protocols
//! are unaffected.
//!
//! # Example
//!
//! ```rust
//! use ppsim::{DenseProtocol, ShardedBatchedSimulator, ShardedConfig};
//!
//! /// One-way epidemic: state 1 spreads to every agent.
//! #[derive(Clone)]
//! struct Rumor;
//! impl DenseProtocol for Rumor {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 2 }
//!     fn initial_state(&self) -> usize { 0 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
//!     fn output(&self, s: usize) -> bool { s == 1 }
//! }
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let config = ShardedConfig { shards: 4, threads: 2, ..ShardedConfig::default() };
//! let mut sim = ShardedBatchedSimulator::new(Rumor, 1_000_000, 42, config)?;
//! sim.transfer(0, 1, 1)?; // plant the rumour
//! let outcome = sim.run_until(|s| s.count_of(1) == s.population(), 1_000_000, u64::MAX);
//! assert!(outcome.converged());
//! # Ok(())
//! # }
//! ```

use rand::rngs::SmallRng;
use rand::Rng;

use crate::batched::BatchedSimulator;
use crate::block::{DeltaTable, Occupancy};
use crate::config::ConfigurationStats;
use crate::convergence::RunOutcome;
use crate::dense::DenseProtocol;
use crate::error::SimError;
use crate::parallel::run_chunked;
use crate::rng::{derive_seed, seeded_rng};
use crate::sample::{conditional_class_draw, multinomial, multivariate_hypergeometric_sparse};
use crate::snapshot::{
    persist_rng, unpersist_rng, Checkpointable, EngineSnapshot, PersistState, ENGINE_SHARDED,
};

/// Configuration of a [`ShardedBatchedSimulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of shards `S` the population is partitioned into.  Clamped to
    /// `n/2` so every shard holds at least two agents.  More shards mean
    /// longer collision-free blocks per interaction *and* more parallelism,
    /// at the price of more cross-shard work per epoch.
    pub shards: usize,
    /// Worker threads for the within-shard phase (capped at the shard
    /// count); `0` uses the machine's available parallelism.  Never affects
    /// results, only wall-clock time.
    pub threads: usize,
    /// Epoch window length `W` in interactions; `None` picks `max(n/4, 256)`.
    /// Smaller windows track the uniform scheduler more faithfully (exact
    /// below `√n`), larger windows amortise the epoch overhead further.
    pub epoch_interactions: Option<u64>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 8,
            threads: 0,
            epoch_interactions: None,
        }
    }
}

/// A single execution of a [`DenseProtocol`] on the sharded batched engine.
///
/// Mirrors the [`BatchedSimulator`] driving surface (`run`, `run_until`,
/// `run_until_observed`, `output_stats`, `transfer`, seeded construction) on
/// a population partitioned across shard-local counts vectors.
///
/// The protocol must be `Clone + Send` (each shard owns a copy and may be
/// advanced on a worker thread).
#[derive(Debug, Clone)]
pub struct ShardedBatchedSimulator<P: DenseProtocol + Clone + Send> {
    protocol: P,
    q: usize,
    n: u64,
    /// Master RNG: epoch allocation, cross-shard resolution, rebalancing,
    /// `transfer`.  Shards draw from their own RNGs.
    rng: SmallRng,
    interactions: u64,
    threads: usize,
    epoch_cap: u64,
    delta: DeltaTable,
    /// Precomputed `ω` per state; `None` for dynamic (interned) protocols,
    /// whose outputs are evaluated lazily on occupied states.
    outputs: Option<Vec<P::Output>>,
    /// Shard sub-simulators; shard `k` always holds exactly `sizes[k]` agents.
    shards: Vec<BatchedSimulator<P>>,
    /// Fixed shard sizes `m_k` (`n/S`, the first `n mod S` shards one larger).
    sizes: Vec<u64>,
    /// Aggregate configuration, refreshed after every epoch and mutation.
    counts: Vec<u64>,
    occupied: Occupancy,
    /// Multinomial weights of the `S²` epoch categories (constant: shard
    /// sizes never change).  Index `k·S + l`; the diagonal holds the
    /// within-shard weights `m_k(m_k−1)`, off-diagonal `m_k·m_l`.
    weights: Vec<u128>,
    // Scratch buffers reused across epochs.
    alloc: Vec<u64>,
    within: Vec<u64>,
    pool: Vec<u64>,
    init_pairs: Vec<(u32, u64)>,
    resp_pairs: Vec<(u32, u64)>,
}

impl<P: DenseProtocol + Clone + Send> ShardedBatchedSimulator<P> {
    /// Create a sharded simulator for `n` agents, all in the protocol's
    /// initial state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PopulationTooSmall`] if `n < 2`, and
    /// [`SimError::InvalidParameter`] for the same protocol defects
    /// [`BatchedSimulator::new`] rejects, or a zero `epoch_interactions`.
    pub fn new(protocol: P, n: usize, seed: u64, config: ShardedConfig) -> Result<Self, SimError> {
        if n < 2 {
            return Err(SimError::PopulationTooSmall { n });
        }
        if config.epoch_interactions == Some(0) {
            return Err(SimError::InvalidParameter {
                name: "epoch_interactions",
                reason: "an epoch must span at least one interaction".into(),
            });
        }
        let delta = DeltaTable::new(&protocol)?;
        let q = delta.num_states();
        let q0 = protocol.initial_state();
        let s = config.shards.max(1).min(n / 2).max(1);
        // Dynamic (interned) protocols share one index registry across all
        // shard copies; advancing shards concurrently would make the interning
        // order — and with it the index assignment and the trajectory — depend
        // on the thread schedule.  Pinning the within-shard phase to a single
        // worker keeps runs a pure function of the seed.
        let threads = if protocol.dynamic() {
            1
        } else if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            config.threads
        };
        let epoch_cap = config
            .epoch_interactions
            .unwrap_or_else(|| (n as u64 / 4).max(256));

        let base = n / s;
        let extra = n % s;
        let sizes: Vec<u64> = (0..s)
            .map(|k| (base + usize::from(k < extra)) as u64)
            .collect();
        let shards = sizes
            .iter()
            .enumerate()
            .map(|(k, &m)| {
                BatchedSimulator::new(
                    protocol.clone(),
                    m as usize,
                    derive_seed(seed, 1 + k as u64),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;

        let mut weights = vec![0u128; s * s];
        for k in 0..s {
            for l in 0..s {
                weights[k * s + l] = if k == l {
                    u128::from(sizes[k]) * u128::from(sizes[k] - 1)
                } else {
                    u128::from(sizes[k]) * u128::from(sizes[l])
                };
            }
        }

        let outputs = (!protocol.dynamic()).then(|| (0..q).map(|st| protocol.output(st)).collect());
        let mut counts = vec![0u64; q];
        counts[q0] = n as u64;
        Ok(ShardedBatchedSimulator {
            protocol,
            q,
            n: n as u64,
            rng: seeded_rng(derive_seed(seed, 0)),
            interactions: 0,
            threads,
            epoch_cap,
            delta,
            outputs,
            shards,
            sizes,
            counts,
            occupied: Occupancy::new(q, q0),
            weights,
            alloc: Vec::new(),
            within: Vec::new(),
            pool: vec![0; q],
            init_pairs: Vec::new(),
            resp_pairs: Vec::new(),
        })
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.n
    }

    /// The number of interactions executed so far.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The number of states `q` of the protocol.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.q
    }

    /// The number of shards the population is partitioned into.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The worker-thread budget for the within-shard phase.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The epoch window length `W` in interactions.
    #[must_use]
    pub fn epoch_interactions(&self) -> u64 {
        self.epoch_cap
    }

    /// The current configuration as state counts (`counts[s]` agents in state
    /// `s`; sums to `n`).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of agents currently in state `state`.
    #[must_use]
    pub fn count_of(&self, state: usize) -> u64 {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// The number of currently occupied states (states holding ≥ 1 agent).
    #[must_use]
    pub fn occupied_states(&self) -> usize {
        self.occupied
            .as_slice()
            .iter()
            .filter(|&&st| self.counts[st as usize] > 0)
            .count()
    }

    /// Output histogram of the current configuration, computed in `O(q)` over
    /// the occupied states.
    #[must_use]
    pub fn output_stats(&self) -> ConfigurationStats<P::Output> {
        ConfigurationStats::from_counts(self.occupied.as_slice().iter().filter_map(|&st| {
            let c = self.counts[st as usize];
            (c > 0).then(|| {
                let out = match &self.outputs {
                    Some(outputs) => outputs[st as usize].clone(),
                    None => self.protocol.output(st as usize),
                };
                (out, c as usize)
            })
        }))
    }

    /// Move `k` agents from state `from` to state `to` — the sharded analogue
    /// of [`BatchedSimulator::transfer`] for experiment setup.  The moved
    /// agents' shards are drawn hypergeometrically, so the partition stays a
    /// uniform one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if either state is out of range
    /// or fewer than `k` agents are in `from`.
    pub fn transfer(&mut self, from: usize, to: usize, k: u64) -> Result<(), SimError> {
        if from >= self.q || to >= self.q {
            return Err(SimError::InvalidParameter {
                name: "transfer",
                reason: format!(
                    "states ({from}, {to}) outside the state space 0..{}",
                    self.q
                ),
            });
        }
        if self.counts[from] < k {
            return Err(SimError::InvalidParameter {
                name: "transfer",
                reason: format!(
                    "cannot move {k} agents out of state {from} holding {}",
                    self.counts[from]
                ),
            });
        }
        let mut remaining_total = self.counts[from];
        let mut need = k;
        for shard in &mut self.shards {
            if need == 0 {
                break;
            }
            let c = shard.count_of(from);
            if c == 0 {
                continue;
            }
            let take = conditional_class_draw(&mut self.rng, c, remaining_total, need);
            if take > 0 {
                shard.transfer(from, to, take)?;
            }
            need -= take;
            remaining_total -= c;
        }
        debug_assert_eq!(need, 0);
        self.counts[from] -= k;
        self.counts[to] += k;
        self.occupied.mark(to);
        Ok(())
    }

    /// Replace the whole configuration (redistributed uniformly at random
    /// across the shards).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `counts` has the wrong length
    /// or does not sum to the population size.
    pub fn set_counts(&mut self, counts: Vec<u64>) -> Result<(), SimError> {
        if counts.len() != self.q {
            return Err(SimError::InvalidParameter {
                name: "counts",
                reason: format!("expected {} state counts, got {}", self.q, counts.len()),
            });
        }
        let total: u64 = counts.iter().sum();
        if total != self.n {
            return Err(SimError::InvalidParameter {
                name: "counts",
                reason: format!("counts sum to {total}, the population is {}", self.n),
            });
        }
        self.counts = counts;
        self.occupied.rebuild(&self.counts);
        self.rebalance();
        Ok(())
    }

    /// Corrupt `k` agents chosen uniformly without replacement across the
    /// whole population: the victim count is split over the shards
    /// hypergeometrically (each shard is an equal-probability container for
    /// any given agent), then delegated to
    /// [`BatchedSimulator::corrupt`] per shard — so the corrupted
    /// configuration is distributed exactly as if the shards were one flat
    /// count vector.  Victims stay in their shard; the next epoch's
    /// rebalance re-partitions as usual.
    ///
    /// All randomness comes from the caller's `rng` — the engine's own
    /// stream (which drives epoch allocation) is untouched, so a fault plan
    /// perturbs the trajectory only through the corruption itself.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `k` exceeds the population
    /// or `new_state` returns a state outside `0..q`.
    pub fn corrupt(
        &mut self,
        k: u64,
        rng: &mut SmallRng,
        new_state: &mut dyn FnMut(usize, &mut SmallRng) -> usize,
    ) -> Result<(), SimError> {
        if k > self.n {
            return Err(SimError::InvalidParameter {
                name: "corrupt",
                reason: format!("cannot corrupt {k} of {} agents", self.n),
            });
        }
        let mut remaining_total = self.n;
        let mut need = k;
        for shard in &mut self.shards {
            if need == 0 {
                break;
            }
            let c = shard.population();
            let take = conditional_class_draw(rng, c, remaining_total, need);
            if take > 0 {
                shard.corrupt(take, rng, &mut *new_state)?;
            }
            need -= take;
            remaining_total -= c;
        }
        debug_assert_eq!(need, 0);
        self.aggregate_counts();
        Ok(())
    }

    /// Execute one epoch window of exactly `w` interactions.
    fn run_epoch(&mut self, w: u64) {
        debug_assert!(w >= 1);
        let s = self.shards.len();

        // 1. Allocate the window's interactions over the S² categories.
        let mut alloc = std::mem::take(&mut self.alloc);
        multinomial(&mut self.rng, w, &self.weights, &mut alloc);

        // Symmetrised splitting: run (within, cross) or (cross, within) with
        // equal probability each epoch, so the first-order bias of collapsing
        // the window's interleaving cancels across epochs (the same trick
        // that upgrades Lie to Strang splitting; measurably removes the
        // ~3 % early-convergence drift the one-sided order shows on the
        // junta workload).
        let cross_first: bool = self.rng.gen();
        if cross_first {
            self.cross_phase(&alloc);
            self.within_phase(&alloc);
        } else {
            self.within_phase(&alloc);
            self.cross_phase(&alloc);
        }
        self.alloc = alloc;

        // 4. Refresh the aggregate view and re-partition.
        self.aggregate_counts();
        if s > 1 {
            self.rebalance();
        }
        self.interactions += w;
    }

    /// The within-shard half of an epoch, fanned out over worker threads.
    /// Shards use private RNGs, so thread scheduling cannot influence the
    /// trajectory.
    fn within_phase(&mut self, alloc: &[u64]) {
        let s = self.shards.len();
        let mut within = std::mem::take(&mut self.within);
        within.clear();
        within.extend((0..s).map(|k| alloc[k * s + k]));
        // Spawning is worth it only when each shard has real work: below
        // ~2¹⁸ interactions per shard the scoped-thread setup dominates the
        // within-phase itself.  Wall-clock-only decision — results are
        // identical either way.
        const SPAWN_MIN_INTERACTIONS: u64 = 1 << 18;
        let threads = if within.iter().copied().max().unwrap_or(0) < SPAWN_MIN_INTERACTIONS {
            1
        } else {
            self.threads
        };
        run_chunked(&mut self.shards, &within, threads, |shard, w_k| {
            shard.run(w_k);
        });
        self.within = within;
    }

    /// The cross-shard half of an epoch, on the master RNG in a fixed pair
    /// order.
    fn cross_phase(&mut self, alloc: &[u64]) {
        let s = self.shards.len();
        for k in 0..s {
            for l in 0..s {
                let c = alloc[k * s + l];
                if k != l && c > 0 {
                    self.resolve_cross(k, l, c);
                }
            }
        }
    }

    /// Resolve `c` cross-shard interactions with initiators in shard `k` and
    /// responders in shard `l`, in bulk chunks.
    ///
    /// A chunk draws its participants without replacement, so agent re-use
    /// *within* a chunk is suppressed (re-use across chunks is restored by
    /// merging between chunks).  The suppression bias scales with the
    /// sampling fraction `chunk/m`; capping chunks at `m/128` (< 1 % of
    /// either shard) keeps the junta/epidemic KS statistics within the
    /// equivalence thresholds where `m/2` chunks measurably distort them,
    /// at `O(q²)`-per-chunk cost that stays negligible next to the
    /// within-shard block work.
    fn resolve_cross(&mut self, k: usize, l: usize, c: u64) {
        debug_assert_ne!(k, l);
        let (shard_k, shard_l) = if k < l {
            let (left, right) = self.shards.split_at_mut(l);
            (&mut left[k], &mut right[0])
        } else {
            let (left, right) = self.shards.split_at_mut(k);
            (&mut right[0], &mut left[l])
        };
        let (m_k, m_l) = (self.sizes[k], self.sizes[l]);
        let acc_k = shard_k.shard_access();
        let acc_l = shard_l.shard_access();
        let chunk_cap = (m_k / 128).min(m_l / 128).max(1);

        let mut remaining = c;
        while remaining > 0 {
            let chunk = remaining.min(chunk_cap);
            // Initiator states: a uniform without-replacement draw from shard
            // k; responder states likewise from shard l (disjoint shards, so
            // the chunk's agents are pairwise distinct by construction).
            multivariate_hypergeometric_sparse(
                &mut self.rng,
                acc_k.counts,
                acc_k.occupied.as_slice(),
                m_k,
                chunk,
                &mut self.init_pairs,
            );
            for &(st, d) in &self.init_pairs {
                acc_k.counts[st as usize] -= d;
            }
            multivariate_hypergeometric_sparse(
                &mut self.rng,
                acc_l.counts,
                acc_l.occupied.as_slice(),
                m_l,
                chunk,
                &mut self.resp_pairs,
            );
            for &(st, d) in &self.resp_pairs {
                acc_l.counts[st as usize] -= d;
            }
            // Pair the margins uniformly; initiators' post-states stay in
            // shard k, responders' in shard l.
            let (protocol, delta) = (&self.protocol, &self.delta);
            let (touched_k, touched_l) = (&mut *acc_k.touched, &mut *acc_l.touched);
            crate::block::pair_classes(
                &mut self.rng,
                &self.init_pairs,
                &mut self.resp_pairs,
                chunk,
                |i, j, mult| {
                    let (a, b) = delta.eval(protocol, i, j);
                    touched_k.add(a, mult);
                    touched_l.add(b, mult);
                },
            );
            acc_k.touched.merge_into(acc_k.counts, acc_k.occupied);
            acc_l.touched.merge_into(acc_l.counts, acc_l.occupied);
            #[cfg(feature = "strict-invariants")]
            {
                crate::block::assert_mass_conserved(
                    acc_k.counts,
                    m_k,
                    "sharded cross-block delta (initiator shard)",
                );
                crate::block::assert_mass_conserved(
                    acc_l.counts,
                    m_l,
                    "sharded cross-block delta (responder shard)",
                );
            }
            remaining -= chunk;
        }
    }

    /// Rebuild the aggregate counts and occupancy from the shards.
    fn aggregate_counts(&mut self) {
        for &st in self.occupied.as_slice() {
            self.counts[st as usize] = 0;
        }
        for shard in &self.shards {
            let shard_counts = shard.counts();
            for &st in shard.occupied_slice() {
                let c = shard_counts[st as usize];
                if c > 0 {
                    self.counts[st as usize] += c;
                    self.occupied.mark(st as usize);
                }
            }
        }
        self.occupied.compact(&self.counts);
    }

    /// Re-partition the aggregate configuration uniformly at random into the
    /// fixed shard sizes: shard `k` receives a multivariate-hypergeometric
    /// draw of `m_k` agents from the pool of agents not yet assigned.
    fn rebalance(&mut self) {
        let s = self.shards.len();
        let mut pool = std::mem::take(&mut self.pool);
        for &st in self.occupied.as_slice() {
            pool[st as usize] = self.counts[st as usize];
        }
        let mut remaining_total = self.n;
        for k in 0..s - 1 {
            let m_k = self.sizes[k];
            multivariate_hypergeometric_sparse(
                &mut self.rng,
                &pool,
                self.occupied.as_slice(),
                remaining_total,
                m_k,
                &mut self.init_pairs,
            );
            let acc = self.shards[k].shard_access();
            for &st in acc.occupied.as_slice() {
                acc.counts[st as usize] = 0;
            }
            acc.occupied.clear();
            for &(st, c) in &self.init_pairs {
                pool[st as usize] -= c;
                acc.counts[st as usize] = c;
                acc.occupied.mark(st as usize);
            }
            remaining_total -= m_k;
        }
        // The last shard takes whatever remains (exactly m_{S−1} agents).
        debug_assert_eq!(remaining_total, self.sizes[s - 1]);
        let occupied = &self.occupied;
        let acc = self.shards[s - 1].shard_access();
        for &st in acc.occupied.as_slice() {
            acc.counts[st as usize] = 0;
        }
        acc.occupied.clear();
        for &st in occupied.as_slice() {
            let c = pool[st as usize];
            if c > 0 {
                pool[st as usize] = 0;
                acc.counts[st as usize] = c;
                acc.occupied.mark(st as usize);
            }
        }
        self.pool = pool;
    }

    /// Execute `budget` further interactions unconditionally.
    pub fn run(&mut self, budget: u64) {
        let mut remaining = budget;
        while remaining > 0 {
            let w = remaining.min(self.epoch_cap);
            self.run_epoch(w);
            remaining -= w;
        }
    }

    /// Run until `pred` holds (checked every `check_every` interactions, and
    /// once before the first step) or until `max_interactions` *total*
    /// interactions have been executed — the same contract as
    /// [`BatchedSimulator::run_until`].
    pub fn run_until<F>(
        &mut self,
        mut pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        let check_every = check_every.max(1);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions);
            self.run(chunk);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions,
            budget: max_interactions,
        }
    }

    /// Run until `pred` holds, invoking `observer` after every check interval —
    /// the same contract as [`BatchedSimulator::run_until_observed`].
    pub fn run_until_observed<F, Obs>(
        &mut self,
        mut pred: F,
        mut observer: Obs,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
        Obs: FnMut(&Self),
    {
        let check_every = check_every.max(1);
        observer(self);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions);
            self.run(chunk);
            observer(self);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions,
            budget: max_interactions,
        }
    }

    /// Consume the simulator and return the final configuration counts.
    #[must_use]
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

/// Checkpointing for the sharded engine.
///
/// Payload layout (engine tag
/// [`ENGINE_SHARDED`]):
///
/// ```text
/// u64              population n
/// u64              state-space size q
/// u64              shard count S
/// u64              epoch window length W
/// [u64; 4]         master RNG state
/// u64              total interactions executed
/// Vec<u8>          protocol state (stored once: all shard copies share it)
/// S × shard core   per-shard BatchedSimulator cores, without protocol bytes
/// Vec<(u32, u64)>  aggregate (state, count) in occupied-list order —
///                  rebalancing iterates this exact order, so it is stored
///                  verbatim rather than re-derived from the shards
/// ```
///
/// There is no persistent mid-epoch state: epochs are carved out of each
/// `run` call's budget, so a snapshot taken between `run` calls sits at an
/// epoch-window boundary of the *budget schedule*, wherever that lands
/// relative to the `W` grid.  `S` and `W` are validated on restore (they
/// shape the trajectory); the thread budget is not (it never does).
impl<P: DenseProtocol + Clone + Send> Checkpointable for ShardedBatchedSimulator<P> {
    fn save_state(&self) -> EngineSnapshot {
        let mut payload = Vec::new();
        self.n.persist(&mut payload);
        self.q.persist(&mut payload);
        self.shards.len().persist(&mut payload);
        self.epoch_cap.persist(&mut payload);
        persist_rng(&self.rng, &mut payload);
        self.interactions.persist(&mut payload);
        self.protocol.save_protocol_state().persist(&mut payload);
        for shard in &self.shards {
            shard.save_core(false, &mut payload);
        }
        let occ: Vec<(u32, u64)> = self
            .occupied
            .as_slice()
            .iter()
            .map(|&st| (st, self.counts[st as usize]))
            .collect();
        occ.persist(&mut payload);
        EngineSnapshot::new(ENGINE_SHARDED, payload)
    }

    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError> {
        snapshot.expect_engine(ENGINE_SHARDED, "the sharded engine")?;
        let mut r = snapshot.reader();
        let n = r.read::<u64>()?;
        let q = r.read::<usize>()?;
        let s = r.read::<usize>()?;
        let epoch_cap = r.read::<u64>()?;
        let rng = unpersist_rng(&mut r)?;
        let interactions = r.read::<u64>()?;
        let protocol_bytes = r.read::<Vec<u8>>()?;
        if n != self.n {
            return Err(SimError::SnapshotMismatch {
                reason: format!("snapshot population {n} != simulator population {}", self.n),
            });
        }
        if q != self.q {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot state space {q} != simulator state space {}",
                    self.q
                ),
            });
        }
        if s != self.shards.len() {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot has {s} shards, simulator has {} — the partition \
                     shapes the trajectory",
                    self.shards.len()
                ),
            });
        }
        if epoch_cap != self.epoch_cap {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot epoch window {epoch_cap} != simulator epoch window {} \
                     — the window shapes the trajectory",
                    self.epoch_cap
                ),
            });
        }
        // Protocol state first: the shard cores rebuild their δ-tables
        // against the restored interner contents.
        self.protocol.restore_protocol_state(&protocol_bytes)?;
        for shard in &mut self.shards {
            shard.restore_core(&mut r, false)?;
        }
        let occ = r.read::<Vec<(u32, u64)>>()?;
        r.finish()?;
        let total: u64 = occ.iter().map(|&(_, c)| c).sum();
        if total != n {
            return Err(SimError::SnapshotCorrupt {
                reason: format!("aggregate counts sum to {total}, population is {n}"),
            });
        }
        for &st in self.occupied.as_slice() {
            self.counts[st as usize] = 0;
        }
        self.occupied
            .restore_list(occ.iter().map(|&(st, _)| st).collect())?;
        for &(st, c) in &occ {
            self.counts[st as usize] = c;
        }
        self.rng = rng;
        self.interactions = interactions;
        self.delta = DeltaTable::new(&self.protocol)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-way epidemic on two dense states.
    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
        fn name(&self) -> &'static str {
            "rumor"
        }
    }

    /// Token-conserving drift (state index = number of tokens held).
    #[derive(Debug, Clone, Copy)]
    struct TokenDrift;
    impl DenseProtocol for TokenDrift {
        type Output = usize;
        fn num_states(&self) -> usize {
            4
        }
        fn initial_state(&self) -> usize {
            1
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            if v > 0 && u < 3 {
                (u + 1, v - 1)
            } else {
                (u, v)
            }
        }
        fn output(&self, s: usize) -> usize {
            s
        }
        fn name(&self) -> &'static str {
            "token-drift"
        }
    }

    fn config(shards: usize, threads: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            threads,
            epoch_interactions: None,
        }
    }

    #[test]
    fn rejects_tiny_population_and_zero_epoch() {
        assert_eq!(
            ShardedBatchedSimulator::new(Rumor, 1, 0, config(4, 1)).err(),
            Some(SimError::PopulationTooSmall { n: 1 })
        );
        assert!(matches!(
            ShardedBatchedSimulator::new(
                Rumor,
                100,
                0,
                ShardedConfig {
                    epoch_interactions: Some(0),
                    ..ShardedConfig::default()
                }
            ),
            Err(SimError::InvalidParameter {
                name: "epoch_interactions",
                ..
            })
        ));
    }

    #[test]
    fn shard_count_is_clamped_so_every_shard_has_two_agents() {
        let sim = ShardedBatchedSimulator::new(Rumor, 5, 0, config(16, 1)).unwrap();
        assert_eq!(sim.shards(), 2);
        let sim = ShardedBatchedSimulator::new(Rumor, 2, 0, config(16, 1)).unwrap();
        assert_eq!(sim.shards(), 1);
        let sim = ShardedBatchedSimulator::new(Rumor, 1000, 0, config(7, 1)).unwrap();
        assert_eq!(sim.shards(), 7);
        assert_eq!(sim.sizes.iter().sum::<u64>(), 1000);
        assert!(sim.sizes.iter().all(|&m| (142..=143).contains(&m)));
    }

    #[test]
    fn run_executes_exactly_the_budget() {
        let mut sim = ShardedBatchedSimulator::new(Rumor, 10_000, 3, config(4, 1)).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        sim.run(123_456);
        assert_eq!(sim.interactions(), 123_456);
    }

    #[test]
    fn counts_always_sum_to_n_and_tokens_are_conserved() {
        let mut sim = ShardedBatchedSimulator::new(TokenDrift, 3000, 7, config(4, 1)).unwrap();
        let tokens = |s: &ShardedBatchedSimulator<TokenDrift>| -> u64 {
            s.counts()
                .iter()
                .enumerate()
                .map(|(st, c)| st as u64 * c)
                .sum()
        };
        let before = tokens(&sim);
        for _ in 0..20 {
            sim.run(10_000);
            assert_eq!(sim.counts().iter().sum::<u64>(), 3000);
            assert_eq!(tokens(&sim), before);
            let per_shard: u64 = sim
                .shards
                .iter()
                .map(|sh| sh.counts().iter().sum::<u64>())
                .sum();
            assert_eq!(per_shard, 3000, "shards must partition the population");
            for (shard, &m) in sim.shards.iter().zip(&sim.sizes) {
                assert_eq!(shard.counts().iter().sum::<u64>(), m);
            }
        }
    }

    #[test]
    fn trajectory_is_independent_of_thread_count() {
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut sim =
                ShardedBatchedSimulator::new(TokenDrift, 2048, 99, config(4, threads)).unwrap();
            sim.run(200_000);
            let counts = sim.into_counts();
            match &reference {
                None => reference = Some(counts),
                Some(r) => assert_eq!(&counts, r, "threads = {threads} diverged"),
            }
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let mut a = ShardedBatchedSimulator::new(TokenDrift, 1024, 5, config(8, 2)).unwrap();
        let mut b = ShardedBatchedSimulator::new(TokenDrift, 1024, 5, config(8, 2)).unwrap();
        a.run(100_000);
        b.run(100_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.interactions(), b.interactions());
    }

    #[test]
    fn epidemic_reaches_everyone_in_n_log_n_time() {
        let n = 100_000u64;
        let mut sim = ShardedBatchedSimulator::new(Rumor, n as usize, 11, config(8, 1)).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == n, n, u64::MAX >> 1);
        let t = outcome.expect_converged("sharded epidemic");
        let nf = n as f64;
        assert!(t >= n - 1);
        assert!(
            (t as f64) < 8.0 * nf * nf.ln(),
            "epidemic took {t} interactions, far beyond O(n log n)"
        );
    }

    #[test]
    fn single_shard_degenerates_to_the_batched_process() {
        // S = 1: no cross-shard work, no rebalancing — still a correct
        // population process.
        let mut sim = ShardedBatchedSimulator::new(Rumor, 5000, 13, config(1, 1)).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == 5000, 5000, u64::MAX >> 1);
        assert!(outcome.converged());
    }

    #[test]
    fn transfer_and_set_counts_validate() {
        let mut sim = ShardedBatchedSimulator::new(Rumor, 10, 0, config(2, 1)).unwrap();
        assert!(sim.transfer(0, 1, 11).is_err());
        assert!(sim.transfer(0, 7, 1).is_err());
        assert!(sim.set_counts(vec![5, 4]).is_err());
        assert!(sim.set_counts(vec![5, 5, 0]).is_err());
        assert!(sim.set_counts(vec![4, 6]).is_ok());
        assert_eq!(sim.count_of(1), 6);
        let shard_total: u64 = sim.shards.iter().map(|sh| sh.count_of(1)).sum();
        assert_eq!(shard_total, 6, "set_counts must distribute to the shards");
        sim.transfer(1, 0, 6).unwrap();
        assert_eq!(sim.count_of(0), 10);
    }

    #[test]
    fn run_until_contract_matches_the_batched_engine() {
        let mut sim = ShardedBatchedSimulator::new(Rumor, 100, 1, config(2, 1)).unwrap();
        let outcome = sim.run_until(|_| true, 10, 1000);
        assert_eq!(outcome, RunOutcome::Converged { interactions: 0 });
        let outcome = sim.run_until(|_| false, 7, 100);
        assert_eq!(
            outcome,
            RunOutcome::Exhausted {
                interactions: 100,
                budget: 100
            }
        );
        assert_eq!(sim.interactions(), 100);
    }

    #[test]
    fn observer_sees_monotone_interaction_counts() {
        let mut sim = ShardedBatchedSimulator::new(Rumor, 5000, 13, config(4, 1)).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let mut checkpoints = Vec::new();
        let _ = sim.run_until_observed(
            |s| s.count_of(1) == s.population(),
            |s| checkpoints.push(s.interactions()),
            1000,
            50_000_000,
        );
        assert_eq!(checkpoints[0], 0);
        assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn output_stats_track_the_aggregate_configuration() {
        let mut sim = ShardedBatchedSimulator::new(Rumor, 10_000, 9, config(8, 1)).unwrap();
        sim.transfer(0, 1, 123).unwrap();
        let stats = sim.output_stats();
        assert_eq!(stats.population(), 10_000);
        assert_eq!(stats.count_of(&true), 123);
        assert_eq!(stats.count_of(&false), 9877);
        assert_eq!(sim.occupied_states(), 2);
    }

    #[test]
    fn short_epochs_match_the_exact_regime() {
        // W ≤ √n: the epoch approximation is exact by the birthday bound; the
        // run must still make correct progress (rumour saturates).
        let cfg = ShardedConfig {
            shards: 4,
            threads: 1,
            epoch_interactions: Some(50),
        };
        let mut sim = ShardedBatchedSimulator::new(Rumor, 4096, 17, cfg).unwrap();
        sim.transfer(0, 1, 1).unwrap();
        let outcome = sim.run_until(|s| s.count_of(1) == 4096, 4096, u64::MAX >> 1);
        assert!(outcome.converged());
    }

    #[test]
    fn snapshot_round_trip_is_identity_and_replay_is_bit_identical() {
        // Reference: one uninterrupted run.  Victim: same chunk schedule, but
        // serialized through bytes and restored into a fresh simulator at a
        // mid-run boundary that does not align with the epoch-window grid.
        let cfg = ShardedConfig {
            shards: 4,
            threads: 2,
            epoch_interactions: Some(997),
        };
        let chunks = [10_007u64, 5_003, 7_919];
        let mut reference = ShardedBatchedSimulator::new(TokenDrift, 2048, 99, cfg).unwrap();
        for &c in &chunks {
            reference.run(c);
        }

        let mut victim = ShardedBatchedSimulator::new(TokenDrift, 2048, 99, cfg).unwrap();
        victim.run(chunks[0]);
        let bytes = victim.save_state().to_bytes();
        drop(victim);

        let mut resumed = ShardedBatchedSimulator::new(TokenDrift, 2048, 1234, cfg).unwrap();
        resumed.run(41); // desync before restore to prove restore overwrites everything
        let snap = EngineSnapshot::from_bytes(&bytes).unwrap();
        resumed.restore_state(&snap).unwrap();
        assert_eq!(resumed.interactions(), chunks[0]);

        for &c in &chunks[1..] {
            resumed.run(c);
        }
        assert_eq!(resumed.interactions(), reference.interactions());
        assert_eq!(resumed.counts(), reference.counts());
        // Snapshot bytes are a pure function of the trajectory, so byte
        // equality certifies full observable-state equality (RNGs, per-shard
        // configurations, occupancy order — everything).
        assert_eq!(
            resumed.save_state().to_bytes(),
            reference.save_state().to_bytes()
        );
    }

    #[test]
    fn snapshot_restore_validates_population_partition_and_window() {
        let sim = ShardedBatchedSimulator::new(TokenDrift, 1024, 5, config(4, 1)).unwrap();
        let snap = sim.save_state();

        let mut other_n = ShardedBatchedSimulator::new(TokenDrift, 2048, 5, config(4, 1)).unwrap();
        assert!(matches!(
            other_n.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));

        let mut other_s = ShardedBatchedSimulator::new(TokenDrift, 1024, 5, config(8, 1)).unwrap();
        assert!(matches!(
            other_s.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));

        let cfg_w = ShardedConfig {
            shards: 4,
            threads: 1,
            epoch_interactions: Some(64),
        };
        let mut other_w = ShardedBatchedSimulator::new(TokenDrift, 1024, 5, cfg_w).unwrap();
        assert!(matches!(
            other_w.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));

        // A failed restore must leave the target able to keep running.
        other_w.run(100);
        assert_eq!(other_w.interactions(), 100);
    }
}
