//! Versioned engine snapshots: save/restore simulator state for crash
//! recovery with **bit-identical** deterministic replay.
//!
//! # Why replay-verification is sound
//!
//! Every engine in this crate is a pure function of `(protocol, n, seed,
//! engine parameters)` *and the sequence of `run` budgets it is driven with*:
//! all randomness flows through explicitly seeded [`SmallRng`] streams, all
//! iteration orders are over vectors (never hash maps), and no wall-clock
//! input reaches a trajectory decision.  A snapshot therefore only has to
//! capture the *mutable* state — configuration, RNG streams, interaction
//! counters, and (for the hybrid engine) the representation bookkeeping —
//! for a resumed run to retrace the uninterrupted run exactly, provided the
//! driver replays the same chunk schedule.  The fault-injection harness
//! ([`crate::faultsim`]) asserts exactly that: kill at an arbitrary chunk
//! boundary, resume from the snapshot, compare final snapshot bytes.
//!
//! Conversely, everything *derivable* is deliberately **not** serialized and
//! is rebuilt on restore: collision samplers (a pure function of `n`),
//! transition tables and δ-memos (functions of the protocol; memos may hold
//! stale state indices from another process and must be rebuilt), output
//! caches, occupancy flag vectors (derivable from the occupied list), and
//! scratch buffers.  Wall-clock accounting (the hybrid engine's per-leg
//! seconds) is also excluded — so snapshot bytes are a pure function of the
//! trajectory and byte equality is a valid trajectory-equality check.
//!
//! # Format layout (version 1)
//!
//! All integers are little-endian; there is no padding.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PPSS"
//! 4       4     u32    format version (currently 1)
//! 8       1     u8     engine tag (see the ENGINE_* constants)
//! 9       8     u64    payload length L
//! 17      L     [u8]   payload (engine-specific, see each engine's docs)
//! 17+L    4     u32    CRC-32 (IEEE) over the payload bytes only
//! ```
//!
//! Payloads are built from the primitive codec of [`PersistState`]: fixed
//! little-endian integers, `bool` as one byte, `f64` as its IEEE-754 bit
//! pattern, and `Vec<T>` as a `u64` length prefix followed by the elements.
//! Nothing in a payload is positional beyond this — every engine reads its
//! payload back with a [`SnapshotReader`] and rejects trailing garbage.
//!
//! # Versioning policy
//!
//! The version number covers the whole format: header *and* every engine
//! payload layout.  Any change to any engine's payload bumps
//! [`SNAPSHOT_VERSION`]; readers reject snapshots with a newer version
//! ([`SimError::SnapshotVersion`]) rather than guessing.  Golden-file tests
//! pin the byte layout so an accidental change fails loudly instead of
//! silently orphaning old checkpoints.
//!
//! # Atomicity
//!
//! [`EngineSnapshot::write_atomic`] writes to a sibling temp file, fsyncs
//! it, and renames it over the destination, so a crash mid-checkpoint never
//! corrupts the last good snapshot — at worst it leaves a stale temp file.
//!
//! [`SmallRng`]: rand::rngs::SmallRng

use std::fs;
use std::io::Write as _;
use std::path::Path;

use rand::rngs::SmallRng;

use crate::error::SimError;

/// The four magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PPSS";

/// The format version this build writes (and the newest it reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Engine tag: [`crate::Simulator`] (per-agent sequential).
pub const ENGINE_SEQUENTIAL: u8 = 1;
/// Engine tag: [`crate::BatchedSimulator`].
pub const ENGINE_BATCHED: u8 = 2;
/// Engine tag: [`crate::ShardedBatchedSimulator`].
pub const ENGINE_SHARDED: u8 = 3;
/// Engine tag: [`crate::HybridSimulator`].
pub const ENGINE_HYBRID: u8 = 4;
/// Engine tag: [`crate::DenseSimulator`] running its sequential variant
/// (a [`crate::Simulator`] payload prefixed by the protocol's own state,
/// so dynamic protocols restore their interner).
pub const ENGINE_DENSE_SEQUENTIAL: u8 = 5;
/// Engine tag: [`crate::adversary::AdversarialRun`] (a fault-plan cursor
/// wrapped around an inner engine snapshot).
pub const ENGINE_ADVERSARY: u8 = 6;

/// First engine tag reserved for composite snapshots defined by downstream
/// crates (staged runners, sweep drivers).  Tags below this value belong to
/// `ppsim` engines.
pub const ENGINE_COMPOSITE_BASE: u8 = 0x10;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over `bytes`.
///
/// Small, table-driven, and dependency-free; this is the checksum in every
/// snapshot trailer.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// A cursor over a snapshot payload, yielding typed fields and rejecting
/// truncation.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Start reading `bytes` from the beginning.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consume exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotCorrupt`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        if self.remaining() < n {
            return Err(SimError::SnapshotCorrupt {
                reason: format!(
                    "payload truncated: wanted {n} bytes at offset {}, {} remain",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decode one `T` at the cursor.
    ///
    /// # Errors
    ///
    /// Propagates the field's decoding error.
    pub fn read<T: PersistState>(&mut self) -> Result<T, SimError> {
        T::unpersist(self)
    }

    /// Assert the payload has been fully consumed.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotCorrupt`] if trailing bytes remain — a decoder
    /// that leaves bytes behind has misread the layout.
    pub fn finish(self) -> Result<(), SimError> {
        if self.remaining() != 0 {
            return Err(SimError::SnapshotCorrupt {
                reason: format!("{} trailing bytes after payload", self.remaining()),
            });
        }
        Ok(())
    }
}

/// A type that can serialize itself into a snapshot payload and decode
/// itself back.
///
/// This is the element codec used for agent-state vectors, counters, and
/// everything else inside an [`EngineSnapshot`] payload.  Implementations
/// must be *canonical*: `unpersist(persist(x)) == x` and equal values
/// produce equal bytes, so snapshot-byte equality is state equality.
pub trait PersistState: Sized {
    /// Append this value's canonical encoding to `out`.
    fn persist(&self, out: &mut Vec<u8>);

    /// Decode one value at the reader's cursor.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotCorrupt`] on truncation or an invalid encoding.
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError>;
}

macro_rules! persist_int {
    ($($t:ty),*) => {$(
        impl PersistState for $t {
            fn persist(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
                let raw = r.take(std::mem::size_of::<$t>())?;
                // `take` returned exactly `size_of::<$t>()` bytes. ppcheck: allow(no-unwrap)
                Ok(<$t>::from_le_bytes(raw.try_into().expect("exact-size slice")))
            }
        }
    )*};
}

persist_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl PersistState for usize {
    fn persist(&self, out: &mut Vec<u8>) {
        (*self as u64).persist(out);
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        let v = u64::unpersist(r)?;
        usize::try_from(v).map_err(|_| SimError::SnapshotCorrupt {
            reason: format!("value {v} exceeds this platform's usize"),
        })
    }
}

impl PersistState for bool {
    fn persist(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        match u8::unpersist(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SimError::SnapshotCorrupt {
                reason: format!("invalid bool byte {b:#04x}"),
            }),
        }
    }
}

impl PersistState for f64 {
    fn persist(&self, out: &mut Vec<u8>) {
        self.to_bits().persist(out);
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(f64::from_bits(u64::unpersist(r)?))
    }
}

impl<A: PersistState, B: PersistState> PersistState for (A, B) {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
        self.1.persist(out);
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok((A::unpersist(r)?, B::unpersist(r)?))
    }
}

impl<A: PersistState, B: PersistState, C: PersistState> PersistState for (A, B, C) {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
        self.1.persist(out);
        self.2.persist(out);
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok((A::unpersist(r)?, B::unpersist(r)?, C::unpersist(r)?))
    }
}

impl<T: PersistState> PersistState for Vec<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for item in self {
            item.persist(out);
        }
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        let len = usize::unpersist(r)?;
        // Elements occupy at least one byte each; reject length prefixes the
        // remaining payload cannot possibly satisfy before allocating.
        if len > r.remaining() {
            return Err(SimError::SnapshotCorrupt {
                reason: format!(
                    "vector length {len} exceeds {} remaining payload bytes",
                    r.remaining()
                ),
            });
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::unpersist(r)?);
        }
        Ok(items)
    }
}

impl PersistState for [u64; 4] {
    fn persist(&self, out: &mut Vec<u8>) {
        for w in self {
            w.persist(out);
        }
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok([
            u64::unpersist(r)?,
            u64::unpersist(r)?,
            u64::unpersist(r)?,
            u64::unpersist(r)?,
        ])
    }
}

impl<T: PersistState> PersistState for Option<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.persist(out);
            }
        }
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        match u8::unpersist(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::unpersist(r)?)),
            b => Err(SimError::SnapshotCorrupt {
                reason: format!("invalid Option tag {b:#04x}"),
            }),
        }
    }
}

impl PersistState for String {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        let len = usize::unpersist(r)?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SimError::SnapshotCorrupt {
            reason: "string field is not valid UTF-8".into(),
        })
    }
}

/// Serialize a [`SmallRng`]'s full internal state (xoshiro256++, four 64-bit
/// words) so a restored run continues the identical random stream.
pub fn persist_rng(rng: &SmallRng, out: &mut Vec<u8>) {
    rng.state().persist(out);
}

/// Decode a [`SmallRng`] previously written by [`persist_rng`].
///
/// # Errors
///
/// [`SimError::SnapshotCorrupt`] on truncation.
pub fn unpersist_rng(r: &mut SnapshotReader<'_>) -> Result<SmallRng, SimError> {
    Ok(SmallRng::from_state(r.read::<[u64; 4]>()?))
}

/// One engine's complete serialized state: an engine tag plus an opaque,
/// engine-defined payload, framed by the versioned header documented at the
/// [module level](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    engine: u8,
    payload: Vec<u8>,
}

impl EngineSnapshot {
    /// Wrap an engine payload under the given engine tag.
    #[must_use]
    pub fn new(engine: u8, payload: Vec<u8>) -> Self {
        EngineSnapshot { engine, payload }
    }

    /// The engine tag (one of the `ENGINE_*` constants, or a composite tag
    /// at or above [`ENGINE_COMPOSITE_BASE`]).
    #[must_use]
    pub fn engine(&self) -> u8 {
        self.engine
    }

    /// The raw payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// A reader positioned at the start of the payload.
    #[must_use]
    pub fn reader(&self) -> SnapshotReader<'_> {
        SnapshotReader::new(&self.payload)
    }

    /// Check the engine tag against the engine attempting the restore.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotMismatch`] naming both tags.
    pub fn expect_engine(&self, expected: u8, name: &str) -> Result<(), SimError> {
        if self.engine != expected {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot carries engine tag {} but is being restored into {name} (tag {expected})",
                    self.engine
                ),
            });
        }
        Ok(())
    }

    /// Frame this snapshot as the full on-disk byte stream (header, payload,
    /// CRC trailer).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + self.payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        SNAPSHOT_VERSION.persist(&mut out);
        self.engine.persist(&mut out);
        (self.payload.len() as u64).persist(&mut out);
        out.extend_from_slice(&self.payload);
        crc32(&self.payload).persist(&mut out);
        out
    }

    /// Parse and validate a byte stream produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotCorrupt`] on truncation, bad magic, a length
    /// field disagreeing with the stream, trailing bytes, or a CRC
    /// mismatch; [`SimError::SnapshotVersion`] for a newer format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SimError> {
        let mut r = SnapshotReader::new(bytes);
        let magic = r.take(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SimError::SnapshotCorrupt {
                reason: format!("bad magic {magic:02x?}, expected b\"PPSS\""),
            });
        }
        let version = r.read::<u32>()?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SimError::SnapshotVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let engine = r.read::<u8>()?;
        let len = r.read::<usize>()?;
        let payload = r.take(len)?.to_vec();
        let stored_crc = r.read::<u32>()?;
        r.finish()?;
        let actual_crc = crc32(&payload);
        if stored_crc != actual_crc {
            return Err(SimError::SnapshotCorrupt {
                reason: format!(
                    "CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
                ),
            });
        }
        Ok(EngineSnapshot { engine, payload })
    }

    /// Write the framed snapshot to `path` atomically: the bytes go to a
    /// sibling `<name>.tmp` file, which is fsynced and then renamed over
    /// `path`.  A crash at any point leaves either the previous snapshot or
    /// the new one — never a torn file.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotIo`] carrying the failing path and OS error.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SimError> {
        write_bytes_atomic(path, &self.to_bytes())
    }

    /// Read and validate a snapshot file written by [`Self::write_atomic`].
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotIo`] if the file cannot be read, plus every
    /// validation error of [`Self::from_bytes`].
    pub fn read_file(path: &Path) -> Result<Self, SimError> {
        let bytes = fs::read(path).map_err(|e| SimError::SnapshotIo {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Self::from_bytes(&bytes)
    }
}

/// Write `bytes` to `path` atomically (temp file + fsync + rename).  This is
/// the same primitive [`EngineSnapshot::write_atomic`] uses, exposed for
/// result tables and other artifacts that want crash-safe replacement.
///
/// # Errors
///
/// [`SimError::SnapshotIo`] carrying the failing path and OS error.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), SimError> {
    let io_err = |reason: std::io::Error| SimError::SnapshotIo {
        path: path.display().to_string(),
        reason: reason.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    fs::rename(&tmp, path).map_err(io_err)?;
    // Make the rename itself durable where the filesystem supports opening
    // directories; failure here cannot tear the file, so it is best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Engines that can serialize their complete mutable state and later restore
/// it — the capability behind checkpoint/resume and the fault-injection
/// harness.
///
/// # Contract
///
/// * `restore_state(save_state())` is the identity on all observable state.
/// * After a restore, driving the simulator with the same chunk schedule as
///   the original run reproduces the original trajectory bit-identically.
/// * `restore_state` validates before mutating where practical, and returns
///   a typed [`SimError`] (never panics) on corrupt, version-skewed, or
///   mismatched snapshots.  A failed restore may leave the simulator in an
///   unspecified (but memory-safe) state; callers should discard it.
pub trait Checkpointable {
    /// Serialize the engine's complete mutable state.
    fn save_state(&self) -> EngineSnapshot;

    /// Restore state previously produced by [`Self::save_state`] on a
    /// compatible simulator (same protocol, population, and engine
    /// configuration).
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotMismatch`] if the snapshot does not fit this
    /// simulator, [`SimError::SnapshotCorrupt`] if the payload does not
    /// decode.
    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        0xABu8.persist(&mut out);
        0xBEEFu16.persist(&mut out);
        0xDEAD_BEEFu32.persist(&mut out);
        u64::MAX.persist(&mut out);
        (7u128 << 100).persist(&mut out);
        (-3i32).persist(&mut out);
        (-9i64).persist(&mut out);
        true.persist(&mut out);
        1.5f64.persist(&mut out);
        42usize.persist(&mut out);
        let mut r = SnapshotReader::new(&out);
        assert_eq!(r.read::<u8>().unwrap(), 0xAB);
        assert_eq!(r.read::<u16>().unwrap(), 0xBEEF);
        assert_eq!(r.read::<u32>().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read::<u64>().unwrap(), u64::MAX);
        assert_eq!(r.read::<u128>().unwrap(), 7u128 << 100);
        assert_eq!(r.read::<i32>().unwrap(), -3);
        assert_eq!(r.read::<i64>().unwrap(), -9);
        assert!(r.read::<bool>().unwrap());
        assert_eq!(r.read::<f64>().unwrap(), 1.5);
        assert_eq!(r.read::<usize>().unwrap(), 42);
        r.finish().unwrap();
    }

    #[test]
    fn compound_values_round_trip() {
        let mut out = Vec::new();
        let v: Vec<(u32, u64)> = vec![(1, 10), (2, 20), (3, 30)];
        v.persist(&mut out);
        Some(5u64).persist(&mut out);
        Option::<u64>::None.persist(&mut out);
        [1u64, 2, 3, 4].persist(&mut out);
        "hello".to_string().persist(&mut out);
        let mut r = SnapshotReader::new(&out);
        assert_eq!(r.read::<Vec<(u32, u64)>>().unwrap(), v);
        assert_eq!(r.read::<Option<u64>>().unwrap(), Some(5));
        assert_eq!(r.read::<Option<u64>>().unwrap(), None);
        assert_eq!(r.read::<[u64; 4]>().unwrap(), [1, 2, 3, 4]);
        assert_eq!(r.read::<String>().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let mut r = SnapshotReader::new(&[1, 2]);
        assert!(matches!(
            r.read::<u32>(),
            Err(SimError::SnapshotCorrupt { .. })
        ));
        let mut r = SnapshotReader::new(&[7]);
        assert!(matches!(
            r.read::<bool>(),
            Err(SimError::SnapshotCorrupt { .. })
        ));
        // A vector length prefix the payload cannot satisfy is rejected
        // before allocation.
        let mut out = Vec::new();
        u64::MAX.persist(&mut out);
        let mut r = SnapshotReader::new(&out);
        assert!(matches!(
            r.read::<Vec<u8>>(),
            Err(SimError::SnapshotCorrupt { .. })
        ));
        // Trailing bytes are an error through finish().
        let r = SnapshotReader::new(&[0]);
        assert!(matches!(r.finish(), Err(SimError::SnapshotCorrupt { .. })));
    }

    #[test]
    fn rng_round_trip_resumes_the_stream() {
        let mut rng = crate::rng::seeded_rng(1234);
        let _: u64 = rng.gen();
        let mut out = Vec::new();
        persist_rng(&rng, &mut out);
        let mut copy = unpersist_rng(&mut SnapshotReader::new(&out)).unwrap();
        let a: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| copy.gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_frame_round_trips() {
        let snap = EngineSnapshot::new(ENGINE_BATCHED, vec![1, 2, 3, 4, 5]);
        let bytes = snap.to_bytes();
        assert_eq!(&bytes[..4], b"PPSS");
        let back = EngineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.engine(), ENGINE_BATCHED);
        assert_eq!(back.payload(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn frame_validation_rejects_each_kind_of_damage() {
        let snap = EngineSnapshot::new(ENGINE_HYBRID, vec![9; 32]);
        let good = snap.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            EngineSnapshot::from_bytes(&bad_magic),
            Err(SimError::SnapshotCorrupt { .. })
        ));

        let mut future = good.clone();
        future[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            EngineSnapshot::from_bytes(&future),
            Err(SimError::SnapshotVersion { found, supported })
                if found == SNAPSHOT_VERSION + 1 && supported == SNAPSHOT_VERSION
        ));

        let mut flipped = good.clone();
        let mid = 17 + 16;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            EngineSnapshot::from_bytes(&flipped),
            Err(SimError::SnapshotCorrupt { reason }) if reason.contains("CRC")
        ));

        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            EngineSnapshot::from_bytes(truncated),
            Err(SimError::SnapshotCorrupt { .. })
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            EngineSnapshot::from_bytes(&trailing),
            Err(SimError::SnapshotCorrupt { reason }) if reason.contains("trailing")
        ));
    }

    #[test]
    fn expect_engine_names_both_tags() {
        let snap = EngineSnapshot::new(ENGINE_SHARDED, Vec::new());
        snap.expect_engine(ENGINE_SHARDED, "sharded").unwrap();
        let err = snap.expect_engine(ENGINE_BATCHED, "batched").unwrap_err();
        assert!(matches!(err, SimError::SnapshotMismatch { ref reason }
            if reason.contains("tag 3") && reason.contains("batched")));
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("ppss-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ppss");
        let snap = EngineSnapshot::new(ENGINE_SEQUENTIAL, (0u8..100).collect());
        snap.write_atomic(&path).unwrap();
        // Overwriting is atomic too: the temp file must not linger.
        snap.write_atomic(&path).unwrap();
        assert!(!dir.join("snap.ppss.tmp").exists());
        assert_eq!(EngineSnapshot::read_file(&path).unwrap(), snap);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_file_missing_is_an_io_error() {
        let err = EngineSnapshot::read_file(Path::new("/nonexistent/dir/x.ppss")).unwrap_err();
        assert!(matches!(err, SimError::SnapshotIo { ref path, .. }
            if path.contains("x.ppss")));
    }
}
