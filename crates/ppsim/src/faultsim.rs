//! Fault-injection harness: kill a run at an arbitrary chunk boundary,
//! resume it from a serialized snapshot, and verify the resumed trajectory
//! is **bit-identical** to the uninterrupted one.
//!
//! # What "bit-identical" means here
//!
//! Engine snapshots ([`crate::snapshot`]) deliberately exclude everything
//! that is not a pure function of the trajectory (wall-clock accounting,
//! scratch buffers, memo tables), so two simulators are in observably
//! equivalent states **iff** their snapshot bytes are equal: same
//! configuration in the same occupancy discovery order, same RNG states,
//! same interaction counters, same switch log.  The harness therefore
//! compares final snapshot bytes instead of enumerating observables.
//!
//! # What a "kill" means here
//!
//! Trajectories of the batched-family engines depend on the *chunk
//! schedule* — `run(a); run(b)` and `run(a + b)` sample different (equally
//! exact) block sequences — so a checkpointing driver snapshots at chunk
//! boundaries and a resumed run replays the same remaining schedule.  The
//! harness models the crash faithfully at that granularity: the victim is
//! **dropped** (its process dies) and nothing survives except the snapshot
//! bytes, which travel through the full serialization frame
//! ([`EngineSnapshot::to_bytes`] → [`EngineSnapshot::from_bytes`]).  Kills
//! land *inside* epoch windows, hybrid stints, or migrations simply by
//! choosing a chunk schedule whose boundaries straddle them — e.g.
//! prime-sized chunks via [`coprime_chunks`], which never align with an
//! epoch grid or monitor cadence.
//!
//! The harness is generic over any [`Checkpointable`] engine plus a driving
//! closure, because the engines share `run(&mut self, budget)` by
//! convention, not by trait.
//!
//! ```rust
//! use ppsim::faultsim::{coprime_chunks, kill_and_resume};
//! use ppsim::{BatchedSimulator, DenseProtocol};
//!
//! #[derive(Clone)]
//! struct Rumor;
//! impl DenseProtocol for Rumor {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 2 }
//!     fn initial_state(&self) -> usize { 0 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
//!     fn output(&self, s: usize) -> bool { s == 1 }
//! }
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! let chunks = coprime_chunks(10_000, 1_009);
//! let verdict = kill_and_resume(
//!     || {
//!         let mut sim = BatchedSimulator::new(Rumor, 5_000, 7)?;
//!         sim.transfer(0, 1, 1)?;
//!         Ok(sim)
//!     },
//!     |sim, budget| sim.run(budget),
//!     &chunks,
//!     2, // SIGKILL after the second chunk
//! )?;
//! assert!(verdict.bit_identical());
//! # Ok(())
//! # }
//! ```

use crate::error::SimError;
use crate::snapshot::{Checkpointable, EngineSnapshot};

/// The outcome of one kill/resume experiment: the final snapshot bytes of
/// the interrupted-and-resumed run and of the uninterrupted reference,
/// plus where the kill landed and which engine was under test — enough to
/// reproduce a divergence from the verdict alone.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct FaultVerdict {
    /// Final snapshot bytes of the run that was killed and resumed.
    pub resumed: Vec<u8>,
    /// Final snapshot bytes of the uninterrupted reference run.
    pub reference: Vec<u8>,
    /// The engine tag of the reference's final snapshot (one of the
    /// `ENGINE_*` constants in [`crate::snapshot`]).
    pub engine_tag: u8,
    /// The (clamped) chunk index the victim was killed after.
    pub kill_after: usize,
}

impl FaultVerdict {
    /// Whether the resumed run ended in exactly the state of the
    /// uninterrupted one (see the module docs for why byte equality is the
    /// right check).
    #[must_use]
    pub fn bit_identical(&self) -> bool {
        self.resumed == self.reference
    }

    /// Byte offset of the first divergence, if any (diagnostics).
    #[must_use]
    pub fn first_divergence(&self) -> Option<usize> {
        if self.bit_identical() {
            return None;
        }
        Some(
            self.resumed
                .iter()
                .zip(&self.reference)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| self.resumed.len().min(self.reference.len())),
        )
    }

    /// One line of diagnostics: engine tag, kill point, and the byte offset
    /// of the first divergence — what an `assert!` message should carry so
    /// a CI failure is actionable without re-running locally.
    #[must_use]
    pub fn describe(&self) -> String {
        match self.first_divergence() {
            None => format!(
                "engine tag {} killed after chunk {}: resume bit-identical ({} bytes)",
                self.engine_tag,
                self.kill_after,
                self.reference.len()
            ),
            Some(offset) => format!(
                "engine tag {} killed after chunk {}: first divergence at byte {} \
                 (resumed {} bytes, reference {} bytes)",
                self.engine_tag,
                self.kill_after,
                offset,
                self.resumed.len(),
                self.reference.len()
            ),
        }
    }
}

/// Split `total` interactions into chunks of `chunk` with a final remainder
/// chunk — pick `chunk` prime (1009, 4999, 7919, …) so boundaries never
/// align with an engine's epoch grid or monitor cadence and kills land
/// mid-window.
///
/// # Panics
///
/// Panics if `chunk == 0`.
#[must_use]
pub fn coprime_chunks(total: u64, chunk: u64) -> Vec<u64> {
    assert!(chunk > 0, "chunks must make progress");
    let mut chunks = Vec::with_capacity((total / chunk) as usize + 1);
    let mut remaining = total;
    while remaining > 0 {
        let c = remaining.min(chunk);
        chunks.push(c);
        remaining -= c;
    }
    chunks
}

/// Run one kill/resume experiment.
///
/// 1. Build a fresh engine with `make` and drive it through the whole
///    `chunks` schedule — the uninterrupted reference.
/// 2. Build a second engine, drive it through `chunks[..kill_after]`, take
///    a snapshot, serialize it to bytes, and **drop the engine** — the
///    crash.
/// 3. Build a third engine, restore it from the deserialized bytes, drive
///    it through `chunks[kill_after..]`, and compare final snapshots.
///
/// `kill_after` is clamped to the schedule length, so `0` means "killed
/// before the first interaction" and `chunks.len()` means "killed after the
/// finish line" — both legitimate edge cases.
///
/// # Errors
///
/// Propagates `make`'s construction errors and any snapshot
/// encode/decode/restore error — a harness that panicked instead would hide
/// exactly the robustness defects it exists to catch.
pub fn kill_and_resume<S, F, R>(
    make: F,
    mut run: R,
    chunks: &[u64],
    kill_after: usize,
) -> Result<FaultVerdict, SimError>
where
    S: Checkpointable,
    F: Fn() -> Result<S, SimError>,
    R: FnMut(&mut S, u64),
{
    let kill_after = kill_after.min(chunks.len());

    let mut reference = make()?;
    for &c in chunks {
        run(&mut reference, c);
    }
    let reference_snapshot = reference.save_state();
    let engine_tag = reference_snapshot.engine();
    let reference_bytes = reference_snapshot.to_bytes();
    drop(reference);

    let mut victim = make()?;
    for &c in &chunks[..kill_after] {
        run(&mut victim, c);
    }
    let snapshot_bytes = victim.save_state().to_bytes();
    drop(victim);

    let snapshot = EngineSnapshot::from_bytes(&snapshot_bytes)?;
    let mut resumed = make()?;
    resumed.restore_state(&snapshot)?;
    for &c in &chunks[kill_after..] {
        run(&mut resumed, c);
    }
    Ok(FaultVerdict {
        resumed: resumed.save_state().to_bytes(),
        reference: reference_bytes,
        engine_tag,
        kill_after,
    })
}

/// Run [`kill_and_resume`] with the kill point swept across **every** chunk
/// boundary of the schedule, returning the first non-identical verdict (and
/// its kill index), or `None` if every resume was bit-identical.
///
/// This is the adversarial mode the integration suite uses: whatever
/// internal phase structure an engine has (epoch windows, monitor cadence,
/// migrations), some kill point of a coprime schedule lands inside it.
///
/// # Errors
///
/// Propagates the first [`SimError`] any experiment hits.
pub fn sweep_kill_points<S, F, R>(
    make: F,
    mut run: R,
    chunks: &[u64],
) -> Result<Option<(usize, FaultVerdict)>, SimError>
where
    S: Checkpointable,
    F: Fn() -> Result<S, SimError>,
    R: FnMut(&mut S, u64),
{
    for kill_after in 0..=chunks.len() {
        let verdict = kill_and_resume(&make, &mut run, chunks, kill_after)?;
        if !verdict.bit_identical() {
            return Ok(Some((kill_after, verdict)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched::BatchedSimulator;
    use crate::dense::DenseProtocol;

    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
    }

    #[test]
    fn coprime_chunks_cover_the_total_exactly() {
        let chunks = coprime_chunks(10_000, 1_009);
        assert_eq!(chunks.iter().sum::<u64>(), 10_000);
        assert_eq!(chunks.len(), 10);
        assert!(chunks[..9].iter().all(|&c| c == 1_009));
        assert_eq!(coprime_chunks(0, 7), Vec::<u64>::new());
    }

    #[test]
    fn coprime_chunks_degenerate_budget_below_chunk_is_one_chunk() {
        // budget < chunk: the whole budget is a single (short) chunk, not
        // zero chunks and not a chunk-sized overshoot.
        assert_eq!(coprime_chunks(500, 997), vec![500]);
        assert_eq!(coprime_chunks(1, 997), vec![1]);
        assert_eq!(coprime_chunks(997, 997), vec![997]);
    }

    #[test]
    fn kill_and_resume_detects_equivalence_and_kill_points_clamp() {
        let make = || {
            let mut sim = BatchedSimulator::new(Rumor, 2_000, 13)?;
            sim.transfer(0, 1, 1)?;
            Ok(sim)
        };
        let chunks = coprime_chunks(5_000, 997);
        for kill_after in [0, 3, usize::MAX] {
            let verdict = kill_and_resume(make, |s, b| s.run(b), &chunks, kill_after).unwrap();
            assert!(verdict.bit_identical(), "{}", verdict.describe());
            assert_eq!(verdict.first_divergence(), None);
            assert_eq!(verdict.engine_tag, crate::snapshot::ENGINE_BATCHED);
            assert_eq!(verdict.kill_after, kill_after.min(chunks.len()));
            assert!(verdict.describe().contains("bit-identical"));
        }
    }

    #[test]
    fn sweep_reports_no_divergence_for_a_correct_engine() {
        let make = || BatchedSimulator::new(Rumor, 500, 3);
        let chunks = coprime_chunks(2_000, 499);
        assert_eq!(
            sweep_kill_points(make, |s, b| s.run(b), &chunks).unwrap(),
            None
        );
    }

    #[test]
    fn first_divergence_points_at_the_corrupted_byte() {
        let verdict = FaultVerdict {
            resumed: vec![1, 2, 9, 4],
            reference: vec![1, 2, 3, 4],
            engine_tag: crate::snapshot::ENGINE_BATCHED,
            kill_after: 3,
        };
        assert!(!verdict.bit_identical());
        assert_eq!(verdict.first_divergence(), Some(2));
        let description = verdict.describe();
        assert!(description.contains("tag 2"), "{description}");
        assert!(description.contains("chunk 3"), "{description}");
        assert!(description.contains("byte 2"), "{description}");
        let truncated = FaultVerdict {
            resumed: vec![1, 2],
            reference: vec![1, 2, 3],
            engine_tag: crate::snapshot::ENGINE_BATCHED,
            kill_after: 0,
        };
        assert_eq!(truncated.first_divergence(), Some(2));
    }
}
