//! The scenario-matrix conformance runner: declarative protocol × engine ×
//! init × fault cells with a fixed per-cell invariant battery.
//!
//! A [`Scenario`] names one *row* of a conformance matrix — a protocol, a
//! population size, an [`InitStrategy`], a [`FaultPlan`], a convergence
//! predicate with an interaction bound, and any conserved quantities the
//! protocol promises.  Binding a row to an [`Engine`] yields a *cell*
//! ([`BoundCell`]); [`run_cell`] executes a cell and checks, in one pass:
//!
//! 1. **Convergence within the bound** — the predicate holds (and every
//!    plan event has fired) within `bound` logical interactions.
//! 2. **Population conservation** — `Σ counts == n` at every probe point.
//! 3. **Conserved quantities** — each [`ConservedQuantity`] obeys its
//!    [`ConservationLaw`] at every probe point once the plan's corruption
//!    events have all fired (faults may legitimately break a conservation
//!    law *while* they are being injected, so the probe starts after the
//!    last one).
//! 4. **Recovery bookkeeping** — every fired fault has a closed
//!    [`RecoveryRecord`](crate::adversary::RecoveryRecord).
//! 5. **Determinism and checkpoint round-trip** — a second run of the same
//!    cell is driven to the midpoint of the first run's trajectory,
//!    snapshotted ([`Checkpointable::save_state`]), restored into a third,
//!    freshly constructed run, and continued; the continuation must land on
//!    the first run's exact final configuration, interaction count, and
//!    recovery records, and the restored run's own snapshot must
//!    byte-round-trip.  One leg therefore witnesses both (seed, plan)
//!    determinism across independent constructions *and* snapshot fidelity.
//!
//! Both legs drive the engine with the same fixed probe grid (`check_every`
//! chunks), so their low-level run-call pattern — and hence their sampled
//! trajectory — is identical by construction.
//!
//! The standard matrix for the ported protocols lives in
//! `ppproto::scenarios`; this module is protocol-agnostic machinery.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::adversary::{AdversarialRun, FaultKind, FaultPlan, InitStrategy};
use crate::dense::DenseProtocol;
use crate::engine::Engine;
use crate::error::SimError;
use crate::snapshot::{Checkpointable, EngineSnapshot};

/// How a [`ConservedQuantity`] must behave along a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConservationLaw {
    /// The value never changes (e.g. total cluster mass below the
    /// saturation cap).
    Exact,
    /// The value never increases (e.g. Herman token count, cluster mass
    /// under saturation).
    NonIncreasing,
}

/// A named scalar of the dense configuration (counts → value).
pub type QuantityFn = Arc<dyn Fn(&[u64]) -> u64 + Send + Sync>;

/// A convergence / legitimacy predicate on the dense configuration.
pub type PredicateFn = Arc<dyn Fn(&[u64]) -> bool + Send + Sync>;

/// A named scalar computed from the dense configuration, checked at every
/// probe point against its [`ConservationLaw`].
#[derive(Clone)]
pub struct ConservedQuantity {
    /// Short label used in failure messages (e.g. `"mass"`, `"tokens"`).
    pub name: &'static str,
    /// The law the quantity obeys.
    pub law: ConservationLaw,
    /// The quantity itself, as a function of the dense counts.
    pub value: QuantityFn,
}

impl std::fmt::Debug for ConservedQuantity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConservedQuantity")
            .field("name", &self.name)
            .field("law", &self.law)
            .finish_non_exhaustive()
    }
}

/// Structural invariants a protocol declares about its own transition
/// system, returned by
/// [`DenseProtocol::invariants`].
///
/// The scenario matrix probes these along sampled trajectories; the
/// `ppcheck` ahead-of-run verifier checks the same declarations
/// *exhaustively* — every conservation law over every reachable transition
/// pair, and closure of the legitimate set over every small-`n`
/// configuration — before any simulation runs.
#[derive(Clone, Debug, Default)]
pub struct ProtocolInvariants {
    /// Conserved quantities, **additive in the counts** (a sum over agents
    /// of a per-state weight, possibly reduced mod `m`): only then is a law
    /// that holds on every transition pair equivalent to the law holding on
    /// every full configuration.
    pub conserved: Vec<ConservedQuantity>,
    /// Whether `δ` is expected to treat initiator and responder
    /// symmetrically, i.e. `δ(u, v) = swap(δ(v, u))` for all pairs.
    /// `None` declares no expectation (the audit reports but does not fail).
    pub role_symmetric: Option<bool>,
}

/// Evaluate a conserved quantity on the synthetic two-agent configuration
/// `{u, v}` of a `num_states`-state protocol.
///
/// This is the shared evaluation bridge between the trajectory probes above
/// and the exhaustive per-pair check in `ppcheck`: for an additive quantity
/// the change under `δ(u, v) = (u', v')` in *any* configuration equals
/// `pair_quantity(q, _, u', v') - pair_quantity(q, _, u, v)`, so checking
/// the law on every pair proves it on every configuration.
#[must_use]
pub fn pair_quantity(q: &ConservedQuantity, num_states: usize, u: usize, v: usize) -> u64 {
    let mut counts = vec![0u64; num_states];
    counts[u] += 1;
    counts[v] += 1;
    (q.value)(&counts)
}

/// One row of a conformance matrix: a protocol under an init strategy and
/// fault plan, with its convergence predicate and invariants.  Bind a row
/// to engines with [`BoundCell::new`].
#[derive(Clone)]
pub struct Scenario<P: DenseProtocol + Clone + Send + 'static> {
    /// Row label, conventionally `"protocol/variant"` (e.g.
    /// `"herman/adversarial"`).
    pub name: String,
    /// The protocol under test.
    pub protocol: P,
    /// Population size.
    pub n: usize,
    /// Master seed — the cell is a pure function of `(seed, plan, engine)`.
    pub seed: u64,
    /// Starting configuration.
    pub init: InitStrategy,
    /// Deterministic fault schedule ([`FaultPlan::empty`] for fault-free
    /// rows).
    pub plan: FaultPlan,
    /// Convergence / legitimacy predicate on the dense counts.
    pub predicate: PredicateFn,
    /// Logical-interaction budget: the predicate must hold (with all plan
    /// events fired) within this many interactions.
    pub bound: u64,
    /// Probe grid: the predicate and invariants are checked every this
    /// many interactions (clamped to ≥ 1).
    pub check_every: u64,
    /// Conserved quantities checked once the plan's corruptions are done.
    pub conserved: Vec<ConservedQuantity>,
}

impl<P: DenseProtocol + Clone + Send + 'static> std::fmt::Debug for Scenario<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("seed", &self.seed)
            .field("init", &self.init)
            .field("bound", &self.bound)
            .finish_non_exhaustive()
    }
}

/// The outcome of one executed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The scenario row label.
    pub scenario: String,
    /// The engine the cell ran on ([`Engine::name`]).
    pub engine: &'static str,
    /// Population size.
    pub n: usize,
    /// Logical clock at convergence (`None` if the budget was exhausted or
    /// the cell errored before converging).
    pub converged_at: Option<u64>,
    /// Logical clock of the mid-cell checkpoint (leg B).
    pub checkpoint_at: u64,
    /// Plan events fired by the reference run.
    pub events_fired: usize,
    /// Every invariant violation observed; empty means the cell passed.
    pub failures: Vec<String>,
}

impl CellResult {
    /// Whether every per-cell invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Internal: everything leg A learns that leg B needs to replicate.
struct Reference {
    /// Number of whole probe chunks executed before convergence.
    steps: u64,
    converged_at: u64,
    counts: Vec<u64>,
    records_bytes: Vec<u8>,
    events_fired: usize,
}

fn records_fingerprint<P: DenseProtocol + Clone + Send + 'static>(
    run: &AdversarialRun<P>,
) -> Vec<u8> {
    use crate::snapshot::PersistState;
    let mut out = Vec::new();
    run.records().to_vec().persist(&mut out);
    out
}

/// Close any still-open recovery records without advancing the clock: a
/// zero-budget `run_until` evaluates the predicate once at the current
/// configuration, which (when it holds) stamps every open record.
fn close_records<P: DenseProtocol + Clone + Send + 'static>(
    run: &mut AdversarialRun<P>,
    pred: &PredicateFn,
) -> Result<(), SimError> {
    let here = run.interactions();
    // Only the record-stamping side effect matters here; the zero-budget
    // outcome itself carries no information.
    let _ = run.run_until(|s| s.with_counts(|c| pred(c)), 1, here)?;
    Ok(())
}

/// Execute one cell of the matrix and check the full invariant battery.
///
/// Construction or run errors are reported as failures in the returned
/// [`CellResult`], never panics — a broken cell must not take the rest of
/// the matrix down with it.
pub fn run_cell<P: DenseProtocol + Clone + Send + 'static>(
    engine: Engine,
    sc: &Scenario<P>,
) -> CellResult {
    let mut result = CellResult {
        scenario: sc.name.clone(),
        engine: engine.name(),
        n: sc.n,
        converged_at: None,
        checkpoint_at: 0,
        events_fired: 0,
        failures: Vec::new(),
    };
    let reference = match run_reference(engine, sc, &mut result) {
        Ok(Some(reference)) => reference,
        Ok(None) => return result,
        Err(e) => {
            result.failures.push(format!("reference run: {e}"));
            return result;
        }
    };
    result.converged_at = Some(reference.converged_at);
    result.events_fired = reference.events_fired;
    if let Err(e) = run_checkpointed_replay(engine, sc, &reference, &mut result) {
        result.failures.push(format!("checkpoint replay: {e}"));
    }
    result
}

/// Leg A: the reference trajectory, probing invariants on a fixed grid.
fn run_reference<P: DenseProtocol + Clone + Send + 'static>(
    engine: Engine,
    sc: &Scenario<P>,
    result: &mut CellResult,
) -> Result<Option<Reference>, SimError> {
    let grid = sc.check_every.max(1);
    let mut run = AdversarialRun::new(
        engine,
        sc.protocol.clone(),
        sc.n,
        sc.seed,
        sc.init.clone(),
        sc.plan.clone(),
    )?;
    let corruptions = sc
        .plan
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::Corrupt { .. }))
        .count();
    let total_events = sc.plan.events().len();
    let mut previous: Vec<Option<u64>> = vec![None; sc.conserved.len()];
    let mut steps = 0u64;
    loop {
        let now = run.interactions();
        let counts = run.inner().counts();
        let population: u64 = counts.iter().sum();
        if population != sc.n as u64 {
            result.failures.push(format!(
                "population not conserved at {now}: Σcounts = {population}, n = {}",
                sc.n
            ));
            return Ok(None);
        }
        // Conserved quantities are probed once the plan can no longer
        // legitimately perturb them.
        let corruptions_fired = run
            .plan()
            .events()
            .iter()
            .take(run.events_fired())
            .filter(|e| matches!(e.kind, FaultKind::Corrupt { .. }))
            .count();
        if corruptions_fired == corruptions {
            for (q, prev) in sc.conserved.iter().zip(previous.iter_mut()) {
                let value = (q.value)(&counts);
                match (*prev, q.law) {
                    (None, _) => *prev = Some(value),
                    (Some(p), ConservationLaw::Exact) if value != p => {
                        result.failures.push(format!(
                            "conserved quantity `{}` changed at {now}: {p} → {value}",
                            q.name
                        ));
                        *prev = Some(value);
                    }
                    (Some(p), ConservationLaw::NonIncreasing) if value > p => {
                        result.failures.push(format!(
                            "non-increasing quantity `{}` grew at {now}: {p} → {value}",
                            q.name
                        ));
                        *prev = Some(value);
                    }
                    (Some(_), _) => *prev = Some(value),
                }
            }
        }
        if (sc.predicate)(&counts) && run.events_fired() == total_events {
            close_records(&mut run, &sc.predicate)?;
            for record in run.records() {
                if record.reconverged_at.is_none() {
                    result.failures.push(format!(
                        "recovery record {} never closed",
                        record.event_index
                    ));
                }
            }
            return Ok(Some(Reference {
                steps,
                converged_at: now,
                counts,
                records_bytes: records_fingerprint(&run),
                events_fired: run.events_fired(),
            }));
        }
        if now >= sc.bound {
            result.failures.push(format!(
                "did not converge within the bound: {now} ≥ {} ({} of {total_events} events fired)",
                sc.bound,
                run.events_fired()
            ));
            return Ok(None);
        }
        run.run(grid)?;
        steps += 1;
    }
}

/// Leg B: rebuild the cell from scratch, drive it to the midpoint of the
/// reference trajectory on the same probe grid, snapshot, restore into a
/// third fresh run, continue, and demand the reference's exact endpoint.
fn run_checkpointed_replay<P: DenseProtocol + Clone + Send + 'static>(
    engine: Engine,
    sc: &Scenario<P>,
    reference: &Reference,
    result: &mut CellResult,
) -> Result<(), SimError> {
    let grid = sc.check_every.max(1);
    let make = || {
        AdversarialRun::new(
            engine,
            sc.protocol.clone(),
            sc.n,
            sc.seed,
            sc.init.clone(),
            sc.plan.clone(),
        )
    };
    let midpoint = reference.steps / 2;
    let mut second = make()?;
    for _ in 0..midpoint {
        second.run(grid)?;
    }
    result.checkpoint_at = second.interactions();
    let bytes = second.save_state().to_bytes();
    drop(second);

    let mut resumed = make()?;
    resumed.restore_state(&EngineSnapshot::from_bytes(&bytes)?)?;
    if resumed.save_state().to_bytes() != bytes {
        result
            .failures
            .push("snapshot does not byte-round-trip through restore".to_string());
    }
    for _ in midpoint..reference.steps {
        resumed.run(grid)?;
    }
    if (sc.predicate)(&resumed.inner().counts()) {
        close_records(&mut resumed, &sc.predicate)?;
    }
    if resumed.interactions() != reference.converged_at {
        result.failures.push(format!(
            "replay clock diverged: {} (replay) vs {} (reference)",
            resumed.interactions(),
            reference.converged_at
        ));
    }
    if resumed.inner().counts() != reference.counts {
        result
            .failures
            .push("replay configuration diverged from the reference run".to_string());
    }
    if resumed.events_fired() != reference.events_fired {
        result.failures.push(format!(
            "replay fired {} events, reference fired {}",
            resumed.events_fired(),
            reference.events_fired
        ));
    }
    if records_fingerprint(&resumed) != reference.records_bytes {
        result
            .failures
            .push("replay recovery records diverged from the reference run".to_string());
    }
    Ok(())
}

/// A scenario row bound to one engine: the type-erased unit a
/// heterogeneous matrix is made of (rows over different protocol types mix
/// freely in one `Vec<BoundCell>`).
pub struct BoundCell {
    scenario: String,
    engine: &'static str,
    runner: Box<dyn Fn() -> CellResult + Send + Sync>,
}

impl BoundCell {
    /// Bind `scenario` to `engine`; the cell owns a clone of the row.
    pub fn new<P: DenseProtocol + Clone + Send + Sync + 'static>(
        engine: Engine,
        scenario: &Scenario<P>,
    ) -> Self {
        let owned = scenario.clone();
        BoundCell {
            scenario: scenario.name.clone(),
            engine: engine.name(),
            runner: Box::new(move || run_cell(engine, &owned)),
        }
    }

    /// The row label this cell was bound from.
    #[must_use]
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// The engine name this cell runs on.
    #[must_use]
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// Execute the cell.
    #[must_use]
    pub fn run(&self) -> CellResult {
        (self.runner)()
    }
}

impl std::fmt::Debug for BoundCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundCell")
            .field("scenario", &self.scenario)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

/// Execute every cell in order, invoking `progress` after each (e.g. to
/// print a live pass/fail line; pass `|_| {}` to stay quiet).
pub fn run_matrix(cells: &[BoundCell], mut progress: impl FnMut(&CellResult)) -> MatrixSummary {
    let mut results = Vec::with_capacity(cells.len());
    for cell in cells {
        let result = cell.run();
        progress(&result);
        results.push(result);
    }
    MatrixSummary { cells: results }
}

/// The executed matrix: per-cell results plus rendering helpers.
#[derive(Debug, Clone)]
#[must_use]
pub struct MatrixSummary {
    /// Every executed cell, in matrix order.
    pub cells: Vec<CellResult>,
}

impl MatrixSummary {
    /// Whether every cell passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.cells.iter().all(CellResult::passed)
    }

    /// The failing cells, in matrix order.
    #[must_use]
    pub fn failures(&self) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| !c.passed()).collect()
    }

    /// `"<passed>/<total> cells passed"`.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let passed = self.cells.iter().filter(|c| c.passed()).count();
        format!("{passed}/{} cells passed", self.cells.len())
    }

    /// A GitHub-flavoured markdown table of every cell — the CI artifact.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| scenario | engine | n | converged at | checkpoint | events | result |\n");
        out.push_str("|---|---|---:|---:|---:|---:|---|\n");
        for cell in &self.cells {
            let converged = cell
                .converged_at
                .map_or_else(|| "—".to_string(), |t| t.to_string());
            let verdict = if cell.passed() {
                "pass".to_string()
            } else {
                format!("FAIL: {}", cell.failures.join("; "))
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                cell.scenario,
                cell.engine,
                cell.n,
                converged,
                cell.checkpoint_at,
                cell.events_fired,
                verdict
            );
        }
        let _ = writeln!(out, "\n{}", self.summary_line());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CorruptionTarget, FaultEvent};

    /// Two-state rumor: informed tells uninformed; state 1 is informed.
    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            if u == 1 || v == 1 {
                (1, 1)
            } else {
                (0, 0)
            }
        }
        fn output(&self, state: usize) -> bool {
            state == 1
        }
        fn name(&self) -> &'static str {
            "rumor"
        }
    }

    fn rumor_scenario(plan: FaultPlan) -> Scenario<Rumor> {
        Scenario {
            name: "rumor/test".into(),
            protocol: Rumor,
            n: 64,
            seed: 7,
            init: InitStrategy::Fixed(vec![63, 1]),
            plan,
            predicate: Arc::new(|c: &[u64]| c[0] == 0),
            bound: 1 << 20,
            check_every: 128,
            conserved: vec![ConservedQuantity {
                name: "informed-nonfalling",
                law: ConservationLaw::NonIncreasing,
                // Uninformed count is non-increasing in the fault-free rumor.
                value: Arc::new(|c: &[u64]| c[0]),
            }],
        }
    }

    #[test]
    fn a_clean_cell_passes_the_full_battery_on_every_engine() {
        let sc = rumor_scenario(FaultPlan::empty());
        for engine in [
            Engine::Sequential,
            Engine::Batched,
            Engine::Sharded {
                shards: 4,
                threads: 1,
            },
            Engine::Hybrid,
        ] {
            let cell = run_cell(engine, &sc);
            assert!(cell.passed(), "{engine:?}: {:?}", cell.failures);
            assert!(cell.converged_at.is_some());
            assert!(cell.checkpoint_at <= cell.converged_at.unwrap());
        }
    }

    #[test]
    fn a_faulted_cell_fires_and_closes_its_records() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 256,
            kind: FaultKind::Corrupt {
                agents: 16,
                target: CorruptionTarget::State(0),
            },
        }])
        .unwrap();
        let cell = run_cell(Engine::Sequential, &rumor_scenario(plan));
        assert!(cell.passed(), "{:?}", cell.failures);
        assert_eq!(cell.events_fired, 1);
    }

    #[test]
    fn an_unreachable_predicate_fails_the_bound_check() {
        let mut sc = rumor_scenario(FaultPlan::empty());
        sc.predicate = Arc::new(|_: &[u64]| false);
        sc.bound = 4096;
        let cell = run_cell(Engine::Batched, &sc);
        assert!(!cell.passed());
        assert!(cell.failures[0].contains("did not converge"));
    }

    #[test]
    fn a_violated_conservation_law_is_reported() {
        let mut sc = rumor_scenario(FaultPlan::empty());
        // The informed count strictly grows — an Exact law on it must trip.
        sc.conserved = vec![ConservedQuantity {
            name: "informed",
            law: ConservationLaw::Exact,
            value: Arc::new(|c: &[u64]| c[1]),
        }];
        let cell = run_cell(Engine::Sequential, &sc);
        assert!(!cell.passed());
        assert!(cell
            .failures
            .iter()
            .any(|f| f.contains("`informed` changed")));
    }

    #[test]
    fn the_matrix_summary_renders_every_cell() {
        let sc = rumor_scenario(FaultPlan::empty());
        let cells = vec![
            BoundCell::new(Engine::Sequential, &sc),
            BoundCell::new(Engine::Batched, &sc),
        ];
        let mut seen = 0;
        let summary = run_matrix(&cells, |_| seen += 1);
        assert_eq!(seen, 2);
        assert!(summary.passed());
        assert_eq!(summary.summary_line(), "2/2 cells passed");
        let md = summary.markdown();
        assert!(md.contains("| rumor/test | sequential |"));
        assert!(md.contains("2/2 cells passed"));
    }
}
