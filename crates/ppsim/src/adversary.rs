//! Adversarial initializations, transient fault injection, and recovery
//! probing — the layer self-stabilization experiments run on.
//!
//! The paper analyses its protocols from the clean all-`q₀` configuration
//! under a fault-free uniform scheduler.  Self-stabilizing protocols
//! (Herman's protocol, the space–time leader election of Austin–Berenbrink
//! et al.; see `PAPERS.md`) are instead *defined* by recovery from arbitrary
//! configurations, so measuring them needs three things the engines alone
//! do not provide:
//!
//! 1. **[`InitStrategy`]** — adversary-chosen starting configurations:
//!    a fixed count vector, a seeded uniform-random configuration, a
//!    seeded "arbitrary" configuration (random occupied set, random
//!    composition), and [`WorstCaseSearch`], a random-restart hill-climb
//!    over configurations maximizing observed reconvergence time.
//! 2. **[`FaultPlan`]** — a deterministic schedule of transient faults
//!    fired at absolute interaction counts: corrupt `k` agents to
//!    adversary-chosen states ([`FaultKind::Corrupt`]) or silence `k`
//!    agents for a window of interactions ([`FaultKind::Silence`]).
//!    Injection is exact in every representation — dense counts move mass
//!    between states, sharded runs split the victim draw
//!    hypergeometrically across shards, hybrid per-agent stints overwrite
//!    native structs through the [`AgentCodec`](crate::AgentCodec) — and
//!    all fault randomness comes from a dedicated plan RNG, so a plan
//!    perturbs the engine's scheduled trajectory only through the faults
//!    themselves.
//! 3. **[`AdversarialRun`]** — an engine wrapper that fires the plan at
//!    its scheduled times, resets convergence-probing state at each
//!    injection ([`DenseSimulator::reset_monitor`]), and records a
//!    [`RecoveryRecord`] per event with the reconvergence time observed by
//!    [`AdversarialRun::run_until`].  The fault cursor (next event, plan
//!    RNG, recovery records) is carried through [`crate::snapshot`], so a
//!    kill/resume mid-plan replays the remaining faults bit-identically.
//!
//! # Silence faults are exact
//!
//! Silencing `k` agents for `W` interactions does **not** run the main
//! engine with rejection: the victims are stashed (a multivariate
//! hypergeometric draw from the plan RNG), and the remaining `n − k` agents
//! run on a *window engine* of the same kind for `E ~ Binomial(W, p)`
//! effective interactions, where `p = (n−k)(n−k−1) / (n(n−1))` is the
//! probability that a uniform ordered pair avoids the victims.  The window
//! then merges back via [`DenseSimulator::set_counts`].  The window is
//! atomic within one [`AdversarialRun::run`] call (the clock may overshoot
//! a budget boundary by the remainder of a window), so a snapshot never
//! observes a half-executed silence window.
//!
//! # Example: one corruption mid-epidemic
//!
//! ```rust
//! use ppsim::adversary::{AdversarialRun, CorruptionTarget, FaultEvent, FaultKind, FaultPlan, InitStrategy};
//! use ppsim::{DenseProtocol, Engine};
//!
//! /// One-way epidemic: rumour state 1 spreads to the whole population.
//! #[derive(Clone)]
//! struct Rumor;
//! impl DenseProtocol for Rumor {
//!     type Output = bool;
//!     fn num_states(&self) -> usize { 2 }
//!     fn initial_state(&self) -> usize { 0 }
//!     fn transition(&self, u: usize, v: usize) -> (usize, usize) { (u.max(v), v) }
//!     fn output(&self, s: usize) -> bool { s == 1 }
//! }
//!
//! # fn main() -> Result<(), ppsim::SimError> {
//! // Knock 100 informed agents back to ignorance after 5 000 interactions.
//! let plan = FaultPlan::new(vec![FaultEvent {
//!     at: 5_000,
//!     kind: FaultKind::Corrupt { agents: 100, target: CorruptionTarget::State(0) },
//! }])?;
//! let mut run = AdversarialRun::new(Engine::Batched, Rumor, 2_000, 42, InitStrategy::Clean, plan)?;
//! run.inner_mut().transfer(0, 1, 1)?; // plant the rumour
//!
//! let outcome = run.run_until(|s| s.count_of(1) == s.population(), 1_000, 10_000_000)?;
//! assert!(outcome.converged(), "the epidemic must recover from the corruption");
//! let record = &run.records()[0];
//! assert_eq!(record.injected_at, 5_000);
//! assert!(record.recovery_time().is_some());
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::convergence::RunOutcome;
use crate::dense::DenseProtocol;
use crate::engine::{DenseSimulator, Engine};
use crate::error::SimError;
use crate::rng::{derive_seed, seeded_rng};
use crate::sample::{binomial, multinomial, multivariate_hypergeometric_sparse};
use crate::snapshot::{
    persist_rng, unpersist_rng, Checkpointable, EngineSnapshot, PersistState, SnapshotReader,
    ENGINE_ADVERSARY,
};

/// Seed-derivation salt for the plan RNG (fault randomness), keeping it a
/// separate stream from the engine's schedule RNG built on the same master
/// seed.
const PLAN_SALT: u64 = 0x41_44_56;

/// What a corrupted agent's state is overwritten with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionTarget {
    /// Every victim is set to this dense state index.
    State(usize),
    /// Each victim is set independently uniformly over `0..states` (drawn
    /// from the plan RNG).
    Uniform {
        /// Exclusive upper bound of the target state range.
        states: usize,
    },
}

impl PersistState for CorruptionTarget {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            CorruptionTarget::State(s) => {
                0u8.persist(out);
                s.persist(out);
            }
            CorruptionTarget::Uniform { states } => {
                1u8.persist(out);
                states.persist(out);
            }
        }
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        match u8::unpersist(r)? {
            0 => Ok(CorruptionTarget::State(usize::unpersist(r)?)),
            1 => Ok(CorruptionTarget::Uniform {
                states: usize::unpersist(r)?,
            }),
            tag => Err(SimError::SnapshotCorrupt {
                reason: format!("unknown corruption-target tag {tag}"),
            }),
        }
    }
}

/// One kind of transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite the states of `agents` victims chosen uniformly without
    /// replacement.  Instantaneous (consumes no interactions).
    Corrupt {
        /// Number of victims.
        agents: u64,
        /// What each victim's state becomes.
        target: CorruptionTarget,
    },
    /// Remove `agents` victims from the interaction schedule for the next
    /// `window` interactions (they keep their states and rejoin afterwards).
    Silence {
        /// Number of victims (must leave at least 2 active agents).
        agents: u64,
        /// Length of the silence window in interactions (the window
        /// executes atomically; see the module docs).
        window: u64,
    },
}

impl PersistState for FaultKind {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            FaultKind::Corrupt { agents, target } => {
                0u8.persist(out);
                agents.persist(out);
                target.persist(out);
            }
            FaultKind::Silence { agents, window } => {
                1u8.persist(out);
                agents.persist(out);
                window.persist(out);
            }
        }
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        match u8::unpersist(r)? {
            0 => Ok(FaultKind::Corrupt {
                agents: u64::unpersist(r)?,
                target: CorruptionTarget::unpersist(r)?,
            }),
            1 => Ok(FaultKind::Silence {
                agents: u64::unpersist(r)?,
                window: u64::unpersist(r)?,
            }),
            tag => Err(SimError::SnapshotCorrupt {
                reason: format!("unknown fault-kind tag {tag}"),
            }),
        }
    }
}

/// One scheduled fault: `kind` fires when the run's logical clock reaches
/// the absolute interaction count `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute interaction count at which the fault fires.
    pub at: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

impl PersistState for FaultEvent {
    fn persist(&self, out: &mut Vec<u8>) {
        self.at.persist(out);
        self.kind.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(FaultEvent {
            at: u64::unpersist(r)?,
            kind: FaultKind::unpersist(r)?,
        })
    }
}

/// A deterministic schedule of transient faults, sorted by firing time.
///
/// The plan is immutable after validation; together with a master seed it
/// pins the entire faulty execution, which is what makes (seed, plan) pairs
/// replayable across kill/resume ([`AdversarialRun`]'s [`Checkpointable`]
/// implementation embeds the plan bytes and refuses to restore into a run
/// built over a different plan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Validate and sort a fault schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if a silence window has zero
    /// length, or if any event is scheduled inside an earlier event's
    /// silence window (the window executes atomically, so the clock could
    /// never stop at the inner event's time).
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, SimError> {
        events.sort_by_key(|e| e.at);
        let mut blocked_until: Option<(u64, u64)> = None;
        for event in &events {
            if let Some((start, end)) = blocked_until {
                if event.at < end {
                    return Err(SimError::InvalidParameter {
                        name: "fault_plan",
                        reason: format!(
                            "event at {} falls inside the silence window ({start}, {end}) of an \
                             earlier event",
                            event.at
                        ),
                    });
                }
            }
            if let FaultKind::Silence { window, .. } = event.kind {
                if window == 0 {
                    return Err(SimError::InvalidParameter {
                        name: "fault_plan",
                        reason: "a silence window must span at least one interaction".to_string(),
                    });
                }
                blocked_until = Some((event.at, event.at + window));
            }
        }
        Ok(FaultPlan { events })
    }

    /// An empty plan (the wrapped run degenerates to the plain engine).
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// The validated events in firing order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The plan's canonical byte encoding — embedded in snapshots so a
    /// restore into a run built over a different plan fails loudly.
    #[must_use]
    pub fn fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.events.persist(&mut out);
        out
    }
}

/// How the starting configuration is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitStrategy {
    /// The protocol's own initial configuration (all agents in `q₀`).
    Clean,
    /// A fixed count vector (shorter than `q` is zero-padded; must sum to
    /// the population).
    Fixed(Vec<u64>),
    /// Each agent's state drawn independently uniformly over `0..states`.
    Uniform {
        /// Exclusive upper bound of the state range agents are thrown into.
        states: usize,
        /// Seed of the draw (independent of the run's master seed).
        seed: u64,
    },
    /// A seeded "arbitrary" configuration: a uniformly chosen occupied-set
    /// size `m`, a uniform `m`-subset of `0..states`, and a uniform random
    /// composition of the population over those `m` states — unlike
    /// [`InitStrategy::Uniform`] this reaches lopsided configurations
    /// (one giant block, a few singletons) with non-vanishing probability.
    SeededArbitrary {
        /// Exclusive upper bound of the state range agents are thrown into.
        states: usize,
        /// Seed of the draw (independent of the run's master seed).
        seed: u64,
    },
}

impl InitStrategy {
    /// The configuration this strategy produces for a population of `n`
    /// over a state space of size `q`, or `None` for [`InitStrategy::Clean`]
    /// (keep the engine's own initial configuration).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if the strategy's state range
    /// is empty or exceeds `q`, or a fixed configuration does not fit.
    pub fn counts(&self, n: u64, q: usize) -> Result<Option<Vec<u64>>, SimError> {
        match self {
            InitStrategy::Clean => Ok(None),
            InitStrategy::Fixed(counts) => {
                if counts.len() > q {
                    return Err(SimError::InvalidParameter {
                        name: "init",
                        reason: format!(
                            "fixed configuration spans {} states, the state space has {q}",
                            counts.len()
                        ),
                    });
                }
                let mut full = counts.clone();
                full.resize(q, 0);
                Ok(Some(full))
            }
            InitStrategy::Uniform { states, seed } => {
                let states = check_range(*states, q)?;
                let mut rng = seeded_rng(*seed);
                let mut drawn = Vec::new();
                multinomial(&mut rng, n, &vec![1u128; states], &mut drawn);
                drawn.resize(q, 0);
                Ok(Some(drawn))
            }
            InitStrategy::SeededArbitrary { states, seed } => {
                let states = check_range(*states, q)?;
                let mut rng = seeded_rng(*seed);
                let mut counts = vec![0u64; q];
                arbitrary_composition(&mut counts, n, states, &mut rng);
                Ok(Some(counts))
            }
        }
    }

    /// Apply this strategy to a freshly constructed simulator.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::counts`] and
    /// [`DenseSimulator::set_counts`] errors.
    pub fn apply<P: DenseProtocol + Clone + Send + 'static>(
        &self,
        sim: &mut DenseSimulator<P>,
    ) -> Result<(), SimError> {
        match self.counts(sim.population(), sim.num_states())? {
            Some(counts) => sim.set_counts(counts),
            None => Ok(()),
        }
    }
}

fn check_range(states: usize, q: usize) -> Result<usize, SimError> {
    if states == 0 || states > q {
        return Err(SimError::InvalidParameter {
            name: "init",
            reason: format!("state range {states} outside 1..={q}"),
        });
    }
    Ok(states)
}

/// Fill `counts` with an arbitrary composition: a uniform occupied-set size
/// `m ∈ 1..=min(states, n)`, a uniform `m`-subset of `0..states` (partial
/// Fisher–Yates), and a uniform composition of `n` into `m` positive parts
/// (`m − 1` distinct cut points in `1..n`, stars and bars).
fn arbitrary_composition(counts: &mut [u64], n: u64, states: usize, rng: &mut SmallRng) {
    let m = rng.gen_range(1..=states.min(n as usize).max(1));
    let mut slots: Vec<usize> = (0..states).collect();
    for v in 0..m {
        let swap = v + rng.gen_range(0..states - v);
        slots.swap(v, swap);
    }
    let mut cuts = BTreeSet::new();
    while cuts.len() < m - 1 {
        cuts.insert(rng.gen_range(1..n));
    }
    let mut prev = 0u64;
    let mut slot = 0usize;
    for cut in cuts {
        counts[slots[slot]] = cut - prev;
        prev = cut;
        slot += 1;
    }
    counts[slots[slot]] = n - prev;
}

/// Observed reconvergence time of `protocol` on `engine` from the
/// configuration `configuration` (zero-padded to the state space): the
/// interaction count at which `pred` first held (up to `check_every`
/// granularity), or `None` if the budget ran out — the objective
/// [`WorstCaseSearch`] maximizes.
///
/// # Errors
///
/// Propagates engine construction and [`DenseSimulator::set_counts`] errors.
#[allow(clippy::too_many_arguments)] // mirrors the full (engine, protocol, n, seed, init, pred, cadence, budget) tuple
pub fn reconvergence_time<P, F>(
    engine: Engine,
    protocol: &P,
    n: usize,
    seed: u64,
    configuration: &[u64],
    mut pred: F,
    check_every: u64,
    max_interactions: u64,
) -> Result<Option<u64>, SimError>
where
    P: DenseProtocol + Clone + Send + 'static,
    F: FnMut(&DenseSimulator<P>) -> bool,
{
    let mut sim = DenseSimulator::new(engine, protocol.clone(), n, seed)?;
    let mut counts = configuration.to_vec();
    if counts.len() > sim.num_states() {
        return Err(SimError::InvalidParameter {
            name: "configuration",
            reason: format!(
                "configuration spans {} states, the state space has {}",
                counts.len(),
                sim.num_states()
            ),
        });
    }
    counts.resize(sim.num_states(), 0);
    sim.set_counts(counts)?;
    match sim.run_until(|s| pred(s), check_every, max_interactions) {
        RunOutcome::Converged { interactions } => Ok(Some(interactions)),
        RunOutcome::Exhausted { .. } => Ok(None),
    }
}

/// Random-restart hill-climb over starting configurations, maximizing the
/// observed reconvergence time — the worst-case-init search driver.
///
/// Every candidate is evaluated with the same `eval_seeds` engine seeds
/// (all derived from [`Self::seed`]), so the objective is a deterministic
/// function of the configuration and the search — including its reported
/// worst init and that init's objective value — is reproducible from
/// [`Self::seed`] alone.  An exhausted budget ranks above every finite
/// time (the adversary found a configuration the protocol could not
/// recover from within the budget).
///
/// With `eval_seeds = 1` (the classical search) a candidate's badness is
/// its recovery time under a single schedule, which can overfit to one
/// lucky or unlucky interaction sequence.  With more seeds the objective
/// is **maximin**: the candidate's badness is its *minimum* badness across
/// the derived schedules, so a reported worst case must be slow to recover
/// under every probed schedule, not a fluke of one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseSearch {
    /// The adversary may populate states `0..states`.
    pub states: usize,
    /// Number of independent random restarts.
    pub restarts: usize,
    /// Coordinate-wise perturbation steps per restart.
    pub steps: usize,
    /// Fraction of the population moved per perturbation (at least one
    /// agent always moves).
    pub move_fraction: f64,
    /// Master seed of the search (candidate draws and evaluation seeds).
    pub seed: u64,
    /// Independent engine seeds per candidate (the multi-seed objective);
    /// `1` reproduces the classical single-schedule search exactly.
    pub eval_seeds: usize,
}

/// The outcome of a [`WorstCaseSearch`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub struct WorstCaseReport {
    /// The worst configuration found (zero-padded to the state space).
    pub configuration: Vec<u64>,
    /// Its reconvergence time; `None` means the convergence budget ran out.
    pub interactions: Option<u64>,
    /// Total configurations evaluated.
    pub evaluations: usize,
}

impl WorstCaseSearch {
    /// Run the search against `pred` (the convergence predicate) with the
    /// given probing granularity and per-evaluation interaction budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a degenerate search space
    /// and propagates engine construction errors.
    pub fn run<P, F>(
        &self,
        engine: Engine,
        protocol: &P,
        n: usize,
        pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> Result<WorstCaseReport, SimError>
    where
        P: DenseProtocol + Clone + Send + 'static,
        F: Fn(&DenseSimulator<P>) -> bool,
    {
        if self.states == 0 || self.restarts == 0 || self.eval_seeds == 0 {
            return Err(SimError::InvalidParameter {
                name: "worst_case_search",
                reason: "need at least one state, one restart and one eval seed".to_string(),
            });
        }
        // Exhausted budgets sort above every finite time.
        let badness = |t: Option<u64>| t.map_or(u128::MAX, u128::from);
        // Seed 0 is the classical single-schedule eval seed, so
        // `eval_seeds: 1` reproduces the historical search bit for bit.
        let eval_seed = |j: u64| derive_seed(self.seed, 0xE7A1 + j);
        let mut rng = seeded_rng(derive_seed(self.seed, 0x5EED));
        let mut evaluations = 0usize;
        // The maximin aggregate: a candidate's objective is its *minimum*
        // recovery time across the derived schedules (`None` only if every
        // schedule exhausted the budget).
        let evaluate =
            |configuration: &[u64], evaluations: &mut usize| -> Result<Option<u64>, SimError> {
                let mut worst: Option<u64> = None;
                for j in 0..self.eval_seeds as u64 {
                    *evaluations += 1;
                    let t = reconvergence_time(
                        engine,
                        protocol,
                        n,
                        eval_seed(j),
                        configuration,
                        &pred,
                        check_every,
                        max_interactions,
                    )?;
                    worst = match (worst, t) {
                        (cur, None) => cur,
                        (None, Some(t)) => Some(t),
                        (Some(cur), Some(t)) => Some(cur.min(t)),
                    };
                }
                Ok(worst)
            };
        let move_k = ((n as f64 * self.move_fraction) as u64).max(1);
        let mut best: Option<(Vec<u64>, Option<u64>)> = None;
        for _ in 0..self.restarts {
            let mut current = vec![0u64; self.states];
            arbitrary_composition(&mut current, n as u64, self.states, &mut rng);
            let mut current_time = evaluate(&current, &mut evaluations)?;
            for _ in 0..self.steps {
                let mut candidate = current.clone();
                perturb(&mut candidate, move_k, &mut rng);
                let t = evaluate(&candidate, &mut evaluations)?;
                if badness(t) >= badness(current_time) {
                    current = candidate;
                    current_time = t;
                }
            }
            if best
                .as_ref()
                .is_none_or(|(_, t)| badness(current_time) > badness(*t))
            {
                best = Some((current, current_time));
            }
        }
        let Some((configuration, interactions)) = best else {
            return Err(SimError::InvalidParameter {
                name: "restarts",
                reason: "the worst-case search needs at least one restart".to_string(),
            });
        };
        Ok(WorstCaseReport {
            configuration,
            interactions,
            evaluations,
        })
    }
}

/// Move up to `k` agents from one occupied coordinate to another coordinate
/// — a single hill-climb step.
fn perturb(counts: &mut [u64], k: u64, rng: &mut SmallRng) {
    let occupied: Vec<usize> = (0..counts.len()).filter(|&s| counts[s] > 0).collect();
    let from = occupied[rng.gen_range(0..occupied.len())];
    let to = rng.gen_range(0..counts.len());
    let amount = k.min(counts[from]);
    counts[from] -= amount;
    counts[to] += amount;
}

/// One fault event's recovery bookkeeping: when it was injected and when
/// the convergence predicate next held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Index of the event in the plan.
    pub event_index: usize,
    /// Logical clock at injection (the event's scheduled time).
    pub injected_at: u64,
    /// Logical clock at the first [`AdversarialRun::run_until`] check at
    /// which the predicate held again; `None` while still recovering.
    pub reconverged_at: Option<u64>,
}

impl RecoveryRecord {
    /// Interactions from injection to reconvergence, if reconverged.
    #[must_use]
    pub fn recovery_time(&self) -> Option<u64> {
        self.reconverged_at.map(|t| t - self.injected_at)
    }
}

impl PersistState for RecoveryRecord {
    fn persist(&self, out: &mut Vec<u8>) {
        self.event_index.persist(out);
        self.injected_at.persist(out);
        self.reconverged_at.persist(out);
    }

    fn unpersist(r: &mut SnapshotReader<'_>) -> Result<Self, SimError> {
        Ok(RecoveryRecord {
            event_index: usize::unpersist(r)?,
            injected_at: u64::unpersist(r)?,
            reconverged_at: Option::<u64>::unpersist(r)?,
        })
    }
}

/// A [`DenseSimulator`] wrapped in a [`FaultPlan`]: runs the engine, fires
/// each fault exactly when the logical clock reaches its scheduled time,
/// and records recovery times (see the module docs).
///
/// The logical clock is the engine's interaction count plus the summed
/// silence windows (a silence window advances time without the main engine
/// executing — its survivors run on a window engine; see the module docs).
#[derive(Debug, Clone)]
pub struct AdversarialRun<P: DenseProtocol + Clone + Send + 'static> {
    sim: DenseSimulator<P>,
    engine: Engine,
    protocol: P,
    n: u64,
    plan: FaultPlan,
    plan_rng: SmallRng,
    /// Logical time contributed by completed silence windows.
    silenced: u64,
    next_event: usize,
    records: Vec<RecoveryRecord>,
}

impl<P: DenseProtocol + Clone + Send + 'static> AdversarialRun<P> {
    /// Wrap a fresh engine in a fault plan, applying `init` first.
    ///
    /// The engine is seeded with `seed` verbatim (so the fault-free prefix
    /// matches a plain `DenseSimulator::new(engine, …, seed)` run); the
    /// plan RNG derives from it on a salted stream.
    ///
    /// # Errors
    ///
    /// Propagates engine construction and [`InitStrategy`] errors.
    pub fn new(
        engine: Engine,
        protocol: P,
        n: usize,
        seed: u64,
        init: InitStrategy,
        plan: FaultPlan,
    ) -> Result<Self, SimError> {
        let mut sim = DenseSimulator::new(engine, protocol.clone(), n, seed)?;
        init.apply(&mut sim)?;
        Ok(AdversarialRun {
            sim,
            engine,
            protocol,
            n: n as u64,
            plan,
            plan_rng: seeded_rng(derive_seed(seed, PLAN_SALT)),
            silenced: 0,
            next_event: 0,
            records: Vec::new(),
        })
    }

    /// The wrapped engine (convergence predicates receive this reference).
    #[must_use]
    pub fn inner(&self) -> &DenseSimulator<P> {
        &self.sim
    }

    /// Mutable access to the wrapped engine (experiment setup between
    /// construction and the first [`Self::run`]).
    #[must_use]
    pub fn inner_mut(&mut self) -> &mut DenseSimulator<P> {
        &mut self.sim
    }

    /// The fault plan driving this run.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The logical clock: engine interactions plus completed silence
    /// windows.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.sim.interactions() + self.silenced
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Number of plan events already fired.
    #[must_use]
    pub fn events_fired(&self) -> usize {
        self.next_event
    }

    /// Per-event recovery bookkeeping, in firing order.
    #[must_use]
    pub fn records(&self) -> &[RecoveryRecord] {
        &self.records
    }

    /// Advance the logical clock by `budget` interactions, firing every
    /// plan event whose time is crossed.  A silence window that starts
    /// inside the budget executes atomically, so the clock may end past
    /// `budget` (see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates injection errors ([`DenseSimulator::corrupt`], window
    /// engine construction).  An injection error leaves the event unfired;
    /// the plan cannot make progress past it.
    pub fn run(&mut self, budget: u64) -> Result<(), SimError> {
        let target = self.interactions().saturating_add(budget);
        while self.interactions() < target {
            while let Some(event) = self.plan.events.get(self.next_event) {
                if event.at > self.interactions() {
                    break;
                }
                self.fire()?;
            }
            if self.interactions() >= target {
                break;
            }
            let until = match self.plan.events.get(self.next_event) {
                Some(event) => target.min(event.at),
                None => target,
            };
            let step = until.saturating_sub(self.interactions());
            if step > 0 {
                self.sim.run(step);
            }
        }
        Ok(())
    }

    /// Run until `pred` holds on the wrapped engine **and** every plan
    /// event has fired (checked every `check_every` interactions, and once
    /// before the first step), or until `max_interactions` total logical
    /// interactions.  Each check at which `pred` holds marks every
    /// still-recovering [`RecoveryRecord`] as reconverged at the current
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::run`] errors.
    pub fn run_until<F>(
        &mut self,
        mut pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&DenseSimulator<P>) -> bool,
    {
        let check_every = check_every.max(1);
        loop {
            if pred(&self.sim) {
                let now = self.interactions();
                for record in &mut self.records {
                    record.reconverged_at.get_or_insert(now);
                }
                if self.next_event >= self.plan.events.len() {
                    return Ok(RunOutcome::Converged { interactions: now });
                }
            }
            if self.interactions() >= max_interactions {
                return Ok(RunOutcome::Exhausted {
                    interactions: self.interactions(),
                    budget: max_interactions,
                });
            }
            let chunk = check_every.min(max_interactions - self.interactions());
            self.run(chunk)?;
        }
    }

    /// Fire the next plan event now.
    fn fire(&mut self) -> Result<(), SimError> {
        let index = self.next_event;
        let event = self.plan.events[index];
        match event.kind {
            FaultKind::Corrupt { agents, target } => {
                #[allow(clippy::type_complexity)]
                let mut overwrite: Box<dyn FnMut(usize, &mut SmallRng) -> usize> = match target {
                    CorruptionTarget::State(s) => Box::new(move |_, _: &mut SmallRng| s),
                    CorruptionTarget::Uniform { states } => {
                        Box::new(move |_, rng: &mut SmallRng| rng.gen_range(0..states))
                    }
                };
                self.sim
                    .corrupt(agents, &mut self.plan_rng, &mut overwrite)?;
            }
            FaultKind::Silence { agents, window } => self.silence(agents, window)?,
        }
        self.sim.reset_monitor();
        self.next_event = index + 1;
        self.records.push(RecoveryRecord {
            event_index: index,
            injected_at: event.at,
            reconverged_at: None,
        });
        Ok(())
    }

    /// Execute one atomic silence window (see the module docs): stash the
    /// victims, run the survivors on a window engine for the binomially
    /// thinned effective interaction count, merge back, advance the clock
    /// by the full window.
    fn silence(&mut self, agents: u64, window: u64) -> Result<(), SimError> {
        if agents + 2 > self.n {
            return Err(SimError::InvalidParameter {
                name: "silence",
                reason: format!(
                    "silencing {agents} of {} agents leaves fewer than 2 active",
                    self.n
                ),
            });
        }
        let counts = self.sim.counts();
        let occupied: Vec<u32> = (0..counts.len())
            .filter(|&s| counts[s] > 0)
            .map(|s| s as u32)
            .collect();
        let mut stash = Vec::new();
        multivariate_hypergeometric_sparse(
            &mut self.plan_rng,
            &counts,
            &occupied,
            self.n,
            agents,
            &mut stash,
        );
        let mut active = counts;
        for &(state, c) in &stash {
            active[state as usize] -= c;
        }
        let survivors = self.n - agents;
        let window_seed = self.plan_rng.gen::<u64>();
        let mut window_sim = DenseSimulator::new(
            self.engine,
            self.protocol.clone(),
            survivors as usize,
            window_seed,
        )?;
        active.resize(window_sim.num_states(), 0);
        window_sim.set_counts(active)?;
        // Effective interactions: both endpoints of a uniform ordered pair
        // must avoid the victims.
        let p = (survivors as f64 * (survivors - 1) as f64) / (self.n as f64 * (self.n - 1) as f64);
        let effective = binomial(&mut self.plan_rng, window, p);
        window_sim.run(effective);
        let mut merged = window_sim.counts();
        merged.resize(merged.len().max(self.sim.num_states()), 0);
        for (state, c) in stash {
            merged[state as usize] += c;
        }
        merged.truncate(self.sim.num_states());
        self.silenced += window;
        self.sim.set_counts(merged)
    }
}

/// Snapshot layout under [`ENGINE_ADVERSARY`]:
///
/// ```text
/// Vec<u8>              fault-plan fingerprint (restore must match)
/// u64                  silenced (logical time from completed windows)
/// u64                  next_event
/// [u64; 4]             plan RNG
/// Vec<RecoveryRecord>  per-event recovery bookkeeping
/// Vec<u8>              inner engine snapshot (framed bytes)
/// ```
///
/// The restore target must be constructed over the same engine, protocol,
/// population, and plan; a plan mismatch fails with
/// [`SimError::SnapshotMismatch`] before anything is mutated.
impl<P: DenseProtocol + Clone + Send + 'static> Checkpointable for AdversarialRun<P> {
    fn save_state(&self) -> EngineSnapshot {
        let mut payload = Vec::new();
        self.plan.fingerprint().persist(&mut payload);
        self.silenced.persist(&mut payload);
        (self.next_event as u64).persist(&mut payload);
        persist_rng(&self.plan_rng, &mut payload);
        self.records.persist(&mut payload);
        self.sim.save_state().to_bytes().persist(&mut payload);
        EngineSnapshot::new(ENGINE_ADVERSARY, payload)
    }

    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError> {
        snapshot.expect_engine(ENGINE_ADVERSARY, "an adversarial run")?;
        let mut r = snapshot.reader();
        let fingerprint = r.read::<Vec<u8>>()?;
        if fingerprint != self.plan.fingerprint() {
            return Err(SimError::SnapshotMismatch {
                reason: "snapshot was taken under a different fault plan".to_string(),
            });
        }
        let silenced = r.read::<u64>()?;
        let next_event = r.read::<u64>()? as usize;
        let plan_rng = unpersist_rng(&mut r)?;
        let records = r.read::<Vec<RecoveryRecord>>()?;
        let inner_bytes = r.read::<Vec<u8>>()?;
        r.finish()?;
        if next_event > self.plan.events.len() {
            return Err(SimError::SnapshotCorrupt {
                reason: format!(
                    "fault cursor {next_event} past the plan's {} events",
                    self.plan.events.len()
                ),
            });
        }
        let inner = EngineSnapshot::from_bytes(&inner_bytes)?;
        self.sim.restore_state(&inner)?;
        self.silenced = silenced;
        self.next_event = next_event;
        self.plan_rng = plan_rng;
        self.records = records;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    struct Rumor;
    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, u: usize, v: usize) -> (usize, usize) {
            (u.max(v), v)
        }
        fn output(&self, s: usize) -> bool {
            s == 1
        }
    }

    const ALL_ENGINES: [Engine; 4] = [
        Engine::Sequential,
        Engine::Batched,
        Engine::Sharded {
            shards: 4,
            threads: 1,
        },
        Engine::Hybrid,
    ];

    fn corrupt_plan(at: u64, agents: u64) -> FaultPlan {
        FaultPlan::new(vec![FaultEvent {
            at,
            kind: FaultKind::Corrupt {
                agents,
                target: CorruptionTarget::State(0),
            },
        }])
        .unwrap()
    }

    #[test]
    fn plan_validation_sorts_and_rejects_overlaps() {
        // Out-of-order events are sorted.
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 500,
                kind: FaultKind::Corrupt {
                    agents: 1,
                    target: CorruptionTarget::State(0),
                },
            },
            FaultEvent {
                at: 100,
                kind: FaultKind::Corrupt {
                    agents: 1,
                    target: CorruptionTarget::State(0),
                },
            },
        ])
        .unwrap();
        assert_eq!(plan.events()[0].at, 100);
        // An event inside an earlier silence window is rejected.
        let overlapping = FaultPlan::new(vec![
            FaultEvent {
                at: 100,
                kind: FaultKind::Silence {
                    agents: 10,
                    window: 1_000,
                },
            },
            FaultEvent {
                at: 600,
                kind: FaultKind::Corrupt {
                    agents: 1,
                    target: CorruptionTarget::State(0),
                },
            },
        ]);
        assert!(overlapping.is_err());
        // Zero-length silence windows are rejected.
        assert!(FaultPlan::new(vec![FaultEvent {
            at: 0,
            kind: FaultKind::Silence {
                agents: 1,
                window: 0
            },
        }])
        .is_err());
    }

    #[test]
    fn init_strategies_produce_valid_configurations() {
        let n = 10_000u64;
        let q = 64usize;
        for init in [
            InitStrategy::Uniform {
                states: 16,
                seed: 3,
            },
            InitStrategy::SeededArbitrary {
                states: 16,
                seed: 3,
            },
        ] {
            let counts = init.counts(n, q).unwrap().unwrap();
            assert_eq!(counts.len(), q);
            assert_eq!(counts.iter().sum::<u64>(), n);
            assert!(counts[16..].iter().all(|&c| c == 0));
            // Seeded draws are reproducible.
            assert_eq!(init.counts(n, q).unwrap().unwrap(), counts);
        }
        assert!(InitStrategy::Clean.counts(n, q).unwrap().is_none());
        let fixed = InitStrategy::Fixed(vec![n - 7, 7]);
        assert_eq!(fixed.counts(n, q).unwrap().unwrap()[1], 7);
        assert!(InitStrategy::Uniform {
            states: 65,
            seed: 0
        }
        .counts(n, q)
        .is_err());
        assert!(InitStrategy::Fixed(vec![0; 65]).counts(n, q).is_err());
    }

    #[test]
    fn corruption_fires_at_its_exact_time_on_every_engine() {
        for engine in ALL_ENGINES {
            let mut run = AdversarialRun::new(
                engine,
                Rumor,
                2_000,
                42,
                InitStrategy::Clean,
                corrupt_plan(5_000, 100),
            )
            .unwrap();
            run.inner_mut().transfer(0, 1, 1).unwrap();
            let outcome = run
                .run_until(|s| s.count_of(1) == s.population(), 1_000, 50_000_000)
                .unwrap();
            assert!(outcome.converged(), "{} failed", engine.name());
            assert_eq!(run.records().len(), 1);
            let record = run.records()[0];
            assert_eq!(record.injected_at, 5_000);
            let recovery = record.recovery_time().expect("recovered");
            assert!(
                recovery > 0,
                "{}: corruption must undo convergence",
                engine.name()
            );
        }
    }

    #[test]
    fn trajectories_are_seed_and_plan_deterministic_per_engine() {
        for engine in ALL_ENGINES {
            let run_once = || {
                let mut run = AdversarialRun::new(
                    engine,
                    Rumor,
                    2_000,
                    7,
                    InitStrategy::SeededArbitrary { states: 2, seed: 9 },
                    corrupt_plan(3_000, 50),
                )
                .unwrap();
                run.run(20_000).unwrap();
                (run.inner().counts(), run.interactions())
            };
            assert_eq!(run_once(), run_once(), "{}", engine.name());
        }
    }

    #[test]
    fn silence_preserves_mass_and_advances_the_clock_without_the_main_engine() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 1_000,
            kind: FaultKind::Silence {
                agents: 500,
                window: 4_000,
            },
        }])
        .unwrap();
        let mut run =
            AdversarialRun::new(Engine::Batched, Rumor, 2_000, 11, InitStrategy::Clean, plan)
                .unwrap();
        run.inner_mut().transfer(0, 1, 1).unwrap();
        run.run(10_000).unwrap();
        assert_eq!(run.interactions(), 10_000);
        // The main engine executed everything except the silence window.
        assert_eq!(run.inner().interactions(), 6_000);
        assert_eq!(run.inner().counts().iter().sum::<u64>(), 2_000);
        assert_eq!(run.records().len(), 1);
    }

    #[test]
    fn silence_cannot_empty_the_population() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 0,
            kind: FaultKind::Silence {
                agents: 1_999,
                window: 100,
            },
        }])
        .unwrap();
        let mut run =
            AdversarialRun::new(Engine::Batched, Rumor, 2_000, 0, InitStrategy::Clean, plan)
                .unwrap();
        assert!(run.run(10).is_err());
    }

    #[test]
    fn worst_case_search_is_reproducible_and_finds_a_harder_init_than_clean() {
        // On the epidemic with pred = "everyone informed", the clean
        // configuration (no rumour at all) never converges — so seed one
        // informed agent into every candidate via the predicate domain:
        // search over both states; a configuration with fewer informed
        // agents takes longer.
        let search = WorstCaseSearch {
            states: 2,
            restarts: 2,
            steps: 3,
            move_fraction: 0.25,
            seed: 13,
            eval_seeds: 1,
        };
        let pred = |s: &DenseSimulator<Rumor>| s.count_of(1) == s.population();
        let run = |_: ()| {
            search
                .run(Engine::Batched, &Rumor, 2_000, pred, 1_000, 1_000_000)
                .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.configuration, b.configuration);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.evaluations, 2 * (3 + 1));
        assert_eq!(a.configuration.iter().sum::<u64>(), 2_000);
    }

    #[test]
    fn multi_seed_search_reports_a_worst_init_reproducible_from_its_seed() {
        let search = WorstCaseSearch {
            states: 2,
            restarts: 2,
            steps: 3,
            move_fraction: 0.25,
            seed: 13,
            eval_seeds: 3,
        };
        let pred = |s: &DenseSimulator<Rumor>| s.count_of(1) == s.population();
        let run = |_: ()| {
            search
                .run(Engine::Batched, &Rumor, 2_000, pred, 1_000, 1_000_000)
                .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a, b, "the search must be a pure function of its seed");
        assert_eq!(
            a.evaluations,
            2 * (3 + 1) * 3,
            "restarts × (steps+1) × eval seeds"
        );
        assert_eq!(a.configuration.iter().sum::<u64>(), 2_000);

        // The reported objective re-derives from the single search seed: the
        // maximin aggregate over the documented eval-seed stream, evaluated
        // directly against the reported configuration, must reproduce it.
        let mut reproduced: Option<u64> = None;
        for j in 0..3u64 {
            let t = reconvergence_time(
                Engine::Batched,
                &Rumor,
                2_000,
                derive_seed(13, 0xE7A1 + j),
                &a.configuration,
                pred,
                1_000,
                1_000_000,
            )
            .unwrap();
            reproduced = match (reproduced, t) {
                (cur, None) => cur,
                (None, Some(t)) => Some(t),
                (Some(cur), Some(t)) => Some(cur.min(t)),
            };
        }
        assert_eq!(
            reproduced, a.interactions,
            "the worst init's objective must reproduce outside the search"
        );
    }

    #[test]
    fn snapshot_mid_plan_replays_the_remaining_faults_bit_identically() {
        for engine in ALL_ENGINES {
            let make = || {
                let plan = FaultPlan::new(vec![
                    FaultEvent {
                        at: 2_000,
                        kind: FaultKind::Corrupt {
                            agents: 100,
                            target: CorruptionTarget::Uniform { states: 2 },
                        },
                    },
                    FaultEvent {
                        at: 6_000,
                        kind: FaultKind::Silence {
                            agents: 200,
                            window: 1_500,
                        },
                    },
                    FaultEvent {
                        at: 9_000,
                        kind: FaultKind::Corrupt {
                            agents: 50,
                            target: CorruptionTarget::State(0),
                        },
                    },
                ])
                .unwrap();
                AdversarialRun::new(engine, Rumor, 2_000, 17, InitStrategy::Clean, plan).unwrap()
            };
            // Reference: straight through.
            let mut reference = make();
            reference.run(4_500).unwrap();
            reference.run(8_000).unwrap();
            // Victim: snapshot between the first and second events.
            let mut victim = make();
            victim.run(4_500).unwrap();
            let bytes = victim.save_state().to_bytes();
            drop(victim);
            let mut resumed = make();
            let snap = EngineSnapshot::from_bytes(&bytes).unwrap();
            resumed.restore_state(&snap).unwrap();
            resumed.run(8_000).unwrap();
            assert_eq!(
                resumed.save_state().to_bytes(),
                reference.save_state().to_bytes(),
                "{}: mid-plan resume diverged",
                engine.name()
            );
            assert_eq!(resumed.events_fired(), 3);
        }
    }

    #[test]
    fn restoring_under_a_different_plan_is_rejected() {
        let mut run = AdversarialRun::new(
            Engine::Batched,
            Rumor,
            2_000,
            1,
            InitStrategy::Clean,
            corrupt_plan(1_000, 10),
        )
        .unwrap();
        run.run(2_000).unwrap();
        let snap = run.save_state();
        let mut other = AdversarialRun::new(
            Engine::Batched,
            Rumor,
            2_000,
            1,
            InitStrategy::Clean,
            corrupt_plan(1_000, 11),
        )
        .unwrap();
        assert!(matches!(
            other.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));
    }
}
