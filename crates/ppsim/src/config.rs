//! Helpers for inspecting configurations (the vector of all agent states).

// Keyed census lookups only; nothing iterates the map to drive the
// simulation. ppcheck: allow(hashmap-iter)
use std::collections::HashMap;
use std::hash::Hash;

use crate::protocol::Protocol;

/// Summary statistics over a configuration, computed against a protocol's output
/// function.
///
/// Constructed with [`ConfigurationStats::from_states`]; used by convergence
/// predicates and by the experiment harness to ask questions like "do all agents
/// currently output the same value?".
#[derive(Debug, Clone)]
pub struct ConfigurationStats<O> {
    histogram: Vec<(O, usize)>,
    n: usize,
}

impl<O: Clone + PartialEq> ConfigurationStats<O> {
    /// Compute the output histogram of `states` under `protocol`.
    pub fn from_states<P>(protocol: &P, states: &[P::State]) -> Self
    where
        P: Protocol<Output = O>,
    {
        let mut histogram: Vec<(O, usize)> = Vec::new();
        for s in states {
            let o = protocol.output(s);
            match histogram.iter_mut().find(|(v, _)| *v == o) {
                Some((_, c)) => *c += 1,
                None => histogram.push((o, 1)),
            }
        }
        ConfigurationStats {
            histogram,
            n: states.len(),
        }
    }

    /// Build the histogram directly from `(output, count)` pairs — the `O(q)`
    /// path used by the batched count-based engine, where `q` is the number of
    /// occupied states rather than the population size.
    ///
    /// Pairs with equal outputs are aggregated; zero counts are kept out of
    /// the histogram so `distinct_outputs` only reports outputs that are
    /// actually present.
    pub fn from_counts<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (O, usize)>,
    {
        let mut histogram: Vec<(O, usize)> = Vec::new();
        let mut n = 0;
        for (o, c) in pairs {
            if c == 0 {
                continue;
            }
            n += c;
            match histogram.iter_mut().find(|(v, _)| *v == o) {
                Some((_, total)) => *total += c,
                None => histogram.push((o, c)),
            }
        }
        ConfigurationStats { histogram, n }
    }

    /// The population size.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// The number of distinct outputs currently present.
    #[must_use]
    pub fn distinct_outputs(&self) -> usize {
        self.histogram.len()
    }

    /// Returns the single common output if *all* agents agree, `None` otherwise.
    #[must_use]
    pub fn unanimous(&self) -> Option<&O> {
        if self.histogram.len() == 1 {
            Some(&self.histogram[0].0)
        } else {
            None
        }
    }

    /// Number of agents currently outputting `value`.
    #[must_use]
    pub fn count_of(&self, value: &O) -> usize {
        self.histogram
            .iter()
            .find(|(v, _)| v == value)
            .map_or(0, |(_, c)| *c)
    }

    /// The most common output and its multiplicity; `None` for an empty population.
    #[must_use]
    pub fn plurality(&self) -> Option<(&O, usize)> {
        self.histogram
            .iter()
            .max_by_key(|(_, c)| *c)
            .map(|(v, c)| (v, *c))
    }

    /// Iterate over `(output, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&O, usize)> {
        self.histogram.iter().map(|(v, c)| (v, *c))
    }
}

/// Count how many agents satisfy `pred`.
pub fn count_matching<S>(states: &[S], mut pred: impl FnMut(&S) -> bool) -> usize {
    states.iter().filter(|s| pred(s)).count()
}

/// Build a multiset (state → multiplicity) view of a configuration.
///
/// Population protocols are invariant under permutations of the agents, so the
/// multiset of states is the canonical representation of a configuration.
pub fn state_multiset<S: Clone + Eq + Hash>(states: &[S]) -> HashMap<S, usize> {
    let mut map = HashMap::new();
    for s in states {
        *map.entry(s.clone()).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    struct Parity;
    impl Protocol for Parity {
        type State = u8;
        type Output = bool;
        fn initial_state(&self) -> u8 {
            0
        }
        fn interact(&self, u: &mut u8, v: &mut u8, _rng: &mut SmallRng) {
            *u ^= 1;
            *v ^= 1;
        }
        fn output(&self, s: &u8) -> bool {
            (*s).is_multiple_of(2)
        }
    }

    #[test]
    fn histogram_counts_outputs() {
        let states = vec![0u8, 1, 2, 3, 4];
        let stats = ConfigurationStats::from_states(&Parity, &states);
        assert_eq!(stats.population(), 5);
        assert_eq!(stats.distinct_outputs(), 2);
        assert_eq!(stats.count_of(&true), 3);
        assert_eq!(stats.count_of(&false), 2);
        assert_eq!(stats.plurality(), Some((&true, 3)));
        assert!(stats.unanimous().is_none());
    }

    #[test]
    fn unanimous_detects_agreement() {
        let states = vec![0u8, 2, 4];
        let stats = ConfigurationStats::from_states(&Parity, &states);
        assert_eq!(stats.unanimous(), Some(&true));
    }

    #[test]
    fn count_matching_counts() {
        let states = vec![1u8, 2, 3, 4, 5];
        assert_eq!(count_matching(&states, |s| *s > 2), 3);
    }

    #[test]
    fn state_multiset_collects_multiplicities() {
        let states = vec![1u8, 2, 2, 3, 3, 3];
        let ms = state_multiset(&states);
        assert_eq!(ms[&1], 1);
        assert_eq!(ms[&2], 2);
        assert_eq!(ms[&3], 3);
        assert_eq!(ms.values().sum::<usize>(), states.len());
    }

    #[test]
    fn empty_population_has_no_plurality() {
        let states: Vec<u8> = vec![];
        let stats = ConfigurationStats::from_states(&Parity, &states);
        assert!(stats.plurality().is_none());
        assert_eq!(stats.distinct_outputs(), 0);
    }
}
