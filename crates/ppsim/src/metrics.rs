//! Measurement utilities: empirical state-space usage and time series.

use std::collections::HashSet;
use std::hash::Hash;

/// Tracks the set of distinct agent states observed during an execution.
///
/// The paper's space bounds ("the protocol uses `O(log n · log log n)` states
/// w.h.p.") refer to the number of distinct states that actually occur during the
/// execution, because the pseudo-code variables have ranges that are only bounded
/// w.h.p.  This tracker records exactly that quantity: feed it the configuration at
/// regular checkpoints (and at the end) and read off [`distinct_states`].
///
/// [`distinct_states`]: StateSpaceTracker::distinct_states
#[derive(Debug, Clone, Default)]
pub struct StateSpaceTracker<S: Eq + Hash + Clone> {
    seen: HashSet<S>,
}

impl<S: Eq + Hash + Clone> StateSpaceTracker<S> {
    /// Create an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        StateSpaceTracker {
            seen: HashSet::new(),
        }
    }

    /// Record every state of a configuration.
    pub fn record(&mut self, states: &[S]) {
        for s in states {
            if !self.seen.contains(s) {
                self.seen.insert(s.clone());
            }
        }
    }

    /// Record a single state.
    pub fn record_state(&mut self, state: &S) {
        if !self.seen.contains(state) {
            self.seen.insert(state.clone());
        }
    }

    /// The number of distinct states observed so far.
    #[must_use]
    pub fn distinct_states(&self) -> usize {
        self.seen.len()
    }

    /// Whether a particular state has been observed.
    #[must_use]
    pub fn contains(&self, state: &S) -> bool {
        self.seen.contains(state)
    }
}

/// A sampled time series `(interaction count, value)`.
///
/// Used by the experiment harness to record, e.g., the number of informed agents
/// over time or the maximum load during balancing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries<T> {
    points: Vec<(u64, T)>,
}

impl<T> TimeSeries<T> {
    /// Create an empty time series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample taken at `interactions`.
    pub fn push(&mut self, interactions: u64, value: T) {
        self.points.push((interactions, value));
    }

    /// The recorded samples in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(u64, T)] {
        &self.points
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded sample.
    #[must_use]
    pub fn last(&self) -> Option<&(u64, T)> {
        self.points.last()
    }

    /// Iterate over the samples.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, T)> {
        self.points.iter()
    }
}

impl<T> FromIterator<(u64, T)> for TimeSeries<T> {
    fn from_iter<I: IntoIterator<Item = (u64, T)>>(iter: I) -> Self {
        TimeSeries {
            points: iter.into_iter().collect(),
        }
    }
}

impl<T> Extend<(u64, T)> for TimeSeries<T> {
    fn extend<I: IntoIterator<Item = (u64, T)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_distinct_states_only() {
        let mut t = StateSpaceTracker::new();
        t.record(&[1u32, 2, 2, 3]);
        assert_eq!(t.distinct_states(), 3);
        t.record(&[3, 4]);
        assert_eq!(t.distinct_states(), 4);
        t.record_state(&4);
        assert_eq!(t.distinct_states(), 4);
        assert!(t.contains(&1));
        assert!(!t.contains(&99));
    }

    #[test]
    fn tracker_default_is_empty() {
        let t: StateSpaceTracker<u8> = StateSpaceTracker::default();
        assert_eq!(t.distinct_states(), 0);
    }

    #[test]
    fn time_series_records_in_order() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(0, 1.0);
        ts.push(100, 2.0);
        ts.push(200, 3.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last(), Some(&(200, 3.0)));
        let xs: Vec<u64> = ts.iter().map(|(t, _)| *t).collect();
        assert_eq!(xs, vec![0, 100, 200]);
    }

    #[test]
    fn time_series_from_iterator_and_extend() {
        let mut ts: TimeSeries<u32> = (0..3).map(|i| (i as u64, i)).collect();
        ts.extend([(10, 10u32)]);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.points()[3], (10, 10));
    }
}
