//! The sequential simulator driving a single protocol execution.

use rand::rngs::SmallRng;

use crate::config::ConfigurationStats;
use crate::convergence::RunOutcome;
use crate::error::SimError;
use crate::protocol::Protocol;
use crate::rng::seeded_rng;
use crate::scheduler::{Scheduler, UniformScheduler};
use crate::snapshot::{
    persist_rng, unpersist_rng, Checkpointable, EngineSnapshot, PersistState, ENGINE_SEQUENTIAL,
};

/// A single execution of a population protocol.
///
/// The simulator owns the protocol, the configuration (one state per agent), the
/// scheduler and the RNG.  Each [`step`](Simulator::step) executes exactly one
/// interaction of the probabilistic population model.
///
/// # Examples
///
/// ```rust
/// use ppsim::{Protocol, Simulator};
/// use rand::rngs::SmallRng;
///
/// struct Epidemic;
/// impl Protocol for Epidemic {
///     type State = u8;
///     type Output = u8;
///     fn initial_state(&self) -> u8 { 0 }
///     fn interact(&self, u: &mut u8, v: &mut u8, _rng: &mut SmallRng) {
///         let m = (*u).max(*v);
///         *u = m;
///         *v = m;
///     }
///     fn output(&self, s: &u8) -> u8 { *s }
/// }
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let mut sim = Simulator::new(Epidemic, 50, 1)?;
/// sim.states_mut()[0] = 1;
/// let outcome = sim.run_until(|s| s.output_stats().unanimous() == Some(&1), 50, 200_000);
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<P: Protocol, Sch: Scheduler = UniformScheduler> {
    protocol: P,
    scheduler: Sch,
    states: Vec<P::State>,
    rng: SmallRng,
    interactions: u64,
}

impl<P: Protocol> Simulator<P, UniformScheduler> {
    /// Create a simulator for `n` agents, all in the protocol's initial state, using
    /// the uniformly random scheduler of the probabilistic model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PopulationTooSmall`] if `n < 2`.
    pub fn new(protocol: P, n: usize, seed: u64) -> Result<Self, SimError> {
        Self::with_scheduler(protocol, n, seed, UniformScheduler::new())
    }
}

impl<P: Protocol, Sch: Scheduler> Simulator<P, Sch> {
    /// Create a simulator with an explicit scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PopulationTooSmall`] if `n < 2`.
    pub fn with_scheduler(
        protocol: P,
        n: usize,
        seed: u64,
        scheduler: Sch,
    ) -> Result<Self, SimError> {
        if n < 2 {
            return Err(SimError::PopulationTooSmall { n });
        }
        let states = vec![protocol.initial_state(); n];
        Ok(Simulator {
            protocol,
            scheduler,
            states,
            rng: seeded_rng(seed),
            interactions: 0,
        })
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// The number of interactions executed so far.
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration (one state per agent).
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Mutable access to the configuration.
    ///
    /// Intended for experiment setup, e.g. planting a rumour or a pre-elected leader
    /// when exercising a component protocol in isolation.
    pub fn states_mut(&mut self) -> &mut [P::State] {
        &mut self.states
    }

    /// Current outputs of all agents.
    ///
    /// Allocates a fresh `Vec`; in hot paths (per-check predicates) prefer
    /// [`outputs_iter`](Simulator::outputs_iter), which is allocation-free, or
    /// [`outputs_into`](Simulator::outputs_into) with a reused buffer.
    #[must_use]
    pub fn outputs(&self) -> Vec<P::Output> {
        self.outputs_iter().collect()
    }

    /// Iterate over the agents' current outputs without allocating.
    pub fn outputs_iter(&self) -> impl Iterator<Item = P::Output> + '_ {
        self.states.iter().map(|s| self.protocol.output(s))
    }

    /// Write the agents' current outputs into `buf`, reusing its capacity.
    pub fn outputs_into(&self, buf: &mut Vec<P::Output>) {
        buf.clear();
        buf.extend(self.outputs_iter());
    }

    /// Output histogram of the current configuration.
    #[must_use]
    pub fn output_stats(&self) -> ConfigurationStats<P::Output> {
        ConfigurationStats::from_states(&self.protocol, &self.states)
    }

    /// Execute exactly one interaction.
    pub fn step(&mut self) {
        let n = self.states.len();
        let (i, j) = self.scheduler.next_pair(n, &mut self.rng);
        debug_assert_ne!(i, j);
        // Split the slice to obtain two disjoint mutable references.
        let (a, b) = if i < j {
            let (lo, hi) = self.states.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = self.states.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        self.protocol.interact(a, b, &mut self.rng);
        self.interactions += 1;
    }

    /// Execute `budget` further interactions unconditionally.
    pub fn run(&mut self, budget: u64) {
        for _ in 0..budget {
            self.step();
        }
    }

    /// Run until `pred` holds (checked every `check_every` interactions, and once
    /// before the first step) or until `max_interactions` *total* interactions have
    /// been executed.
    ///
    /// Returns a [`RunOutcome`] carrying the interaction count at the first check at
    /// which the predicate held.  For the monotone "done"-flag predicates exposed by
    /// the counting protocols this equals the convergence time up to the check
    /// granularity.
    pub fn run_until<F>(
        &mut self,
        mut pred: F,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
    {
        let check_every = check_every.max(1);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions);
            self.run(chunk);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions,
            budget: max_interactions,
        }
    }

    /// Run until `pred` holds, invoking `observer` after every check interval.
    ///
    /// The observer receives the simulator after each chunk of `check_every`
    /// interactions; it is used by the measurement harness to record time series and
    /// empirical state-space usage without entangling measurement with simulation.
    pub fn run_until_observed<F, Obs>(
        &mut self,
        mut pred: F,
        mut observer: Obs,
        check_every: u64,
        max_interactions: u64,
    ) -> RunOutcome
    where
        F: FnMut(&Self) -> bool,
        Obs: FnMut(&Self),
    {
        let check_every = check_every.max(1);
        observer(self);
        if pred(self) {
            return RunOutcome::Converged {
                interactions: self.interactions,
            };
        }
        while self.interactions < max_interactions {
            let chunk = check_every.min(max_interactions - self.interactions);
            self.run(chunk);
            observer(self);
            if pred(self) {
                return RunOutcome::Converged {
                    interactions: self.interactions,
                };
            }
        }
        RunOutcome::Exhausted {
            interactions: self.interactions,
            budget: max_interactions,
        }
    }

    /// Consume the simulator and return the final configuration.
    #[must_use]
    pub fn into_states(self) -> Vec<P::State> {
        self.states
    }
}

/// Checkpointing for the sequential engine under the probabilistic model's
/// uniform scheduler (the scheduler itself is stateless, so the snapshot is
/// the agent vector, the RNG stream, and the interaction counter).
///
/// Payload layout (within the [`snapshot`](crate::snapshot) frame, engine
/// tag [`ENGINE_SEQUENTIAL`]):
///
/// ```text
/// [u64; 4]        RNG state (xoshiro256++)
/// u64             interactions executed
/// Vec<P::State>   per-agent states, in agent-index order
/// ```
///
/// Restoring validates the population size against the simulator's; the
/// protocol itself is not serialized here (pair a snapshot with the same
/// protocol construction, or use
/// [`DenseSimulator`](crate::DenseSimulator)'s sequential variant, which
/// adds the protocol's own state to the payload).
impl<P> Checkpointable for Simulator<P, UniformScheduler>
where
    P: Protocol,
    P::State: PersistState,
{
    fn save_state(&self) -> EngineSnapshot {
        let mut payload = Vec::new();
        persist_rng(&self.rng, &mut payload);
        self.interactions.persist(&mut payload);
        self.states.persist(&mut payload);
        EngineSnapshot::new(ENGINE_SEQUENTIAL, payload)
    }

    fn restore_state(&mut self, snapshot: &EngineSnapshot) -> Result<(), SimError> {
        snapshot.expect_engine(ENGINE_SEQUENTIAL, "the sequential engine")?;
        let mut r = snapshot.reader();
        let rng = unpersist_rng(&mut r)?;
        let interactions = r.read::<u64>()?;
        let states = r.read::<Vec<P::State>>()?;
        r.finish()?;
        if states.len() != self.states.len() {
            return Err(SimError::SnapshotMismatch {
                reason: format!(
                    "snapshot population {} != simulator population {}",
                    states.len(),
                    self.states.len()
                ),
            });
        }
        self.rng = rng;
        self.interactions = interactions;
        self.states = states;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[derive(Debug, Clone, Copy)]
    struct MaxBroadcast;

    impl Protocol for MaxBroadcast {
        type State = u32;
        type Output = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn interact(&self, u: &mut u32, v: &mut u32, _rng: &mut SmallRng) {
            let m = (*u).max(*v);
            *u = m;
            *v = m;
        }
        fn output(&self, s: &u32) -> u32 {
            *s
        }
        fn name(&self) -> &'static str {
            "max-broadcast"
        }
    }

    #[test]
    fn rejects_tiny_population() {
        assert_eq!(
            Simulator::new(MaxBroadcast, 1, 0).err(),
            Some(SimError::PopulationTooSmall { n: 1 })
        );
        assert!(Simulator::new(MaxBroadcast, 0, 0).is_err());
        assert!(Simulator::new(MaxBroadcast, 2, 0).is_ok());
    }

    #[test]
    fn step_counts_interactions() {
        let mut sim = Simulator::new(MaxBroadcast, 10, 3).unwrap();
        assert_eq!(sim.interactions(), 0);
        sim.run(25);
        assert_eq!(sim.interactions(), 25);
        sim.step();
        assert_eq!(sim.interactions(), 26);
    }

    #[test]
    fn broadcast_converges_and_is_monotone() {
        let n = 200;
        let mut sim = Simulator::new(MaxBroadcast, n, 5).unwrap();
        sim.states_mut()[7] = 42;
        let outcome = sim.run_until(|s| s.states().iter().all(|&x| x == 42), n as u64, 5_000_000);
        let t = outcome.expect_converged("broadcast");
        // Broadcast needs at least n-1 informing interactions.
        assert!(t >= (n as u64) - 1);
        assert!(sim.outputs().iter().all(|&o| o == 42));
    }

    #[test]
    fn run_until_returns_immediately_if_predicate_already_holds() {
        let mut sim = Simulator::new(MaxBroadcast, 10, 1).unwrap();
        let outcome = sim.run_until(|_| true, 100, 1000);
        assert_eq!(outcome, RunOutcome::Converged { interactions: 0 });
        assert_eq!(sim.interactions(), 0);
    }

    #[test]
    fn run_until_exhausts_budget() {
        let mut sim = Simulator::new(MaxBroadcast, 10, 1).unwrap();
        let outcome = sim.run_until(|_| false, 7, 100);
        assert_eq!(
            outcome,
            RunOutcome::Exhausted {
                interactions: 100,
                budget: 100
            }
        );
        assert_eq!(sim.interactions(), 100, "budget must be respected exactly");
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let mut a = Simulator::new(MaxBroadcast, 64, 77).unwrap();
        let mut b = Simulator::new(MaxBroadcast, 64, 77).unwrap();
        a.states_mut()[0] = 9;
        b.states_mut()[0] = 9;
        a.run(10_000);
        b.run(10_000);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Simulator::new(MaxBroadcast, 64, 1).unwrap();
        let mut b = Simulator::new(MaxBroadcast, 64, 2).unwrap();
        a.states_mut()[0] = 9;
        b.states_mut()[0] = 9;
        a.run(200);
        b.run(200);
        // With overwhelming probability the informed sets differ after 200 steps.
        assert_ne!(a.states(), b.states());
    }

    #[test]
    fn observer_sees_monotone_interaction_counts() {
        let mut sim = Simulator::new(MaxBroadcast, 32, 4).unwrap();
        sim.states_mut()[0] = 1;
        let mut checkpoints = Vec::new();
        let _ = sim.run_until_observed(
            |s| s.states().iter().all(|&x| x == 1),
            |s| checkpoints.push(s.interactions()),
            64,
            1_000_000,
        );
        assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            checkpoints[0], 0,
            "observer is called before the first step"
        );
    }

    #[test]
    fn snapshot_round_trip_is_identity_and_replay_is_bit_identical() {
        let mut sim = Simulator::new(MaxBroadcast, 100, 21).unwrap();
        sim.states_mut()[0] = 3;
        sim.run(5_000);
        let snap = sim.save_state();

        // restore(save(sim)) is the identity on observable state.
        let mut copy = Simulator::new(MaxBroadcast, 100, 0).unwrap();
        copy.restore_state(&snap).unwrap();
        assert_eq!(copy.states(), sim.states());
        assert_eq!(copy.interactions(), sim.interactions());

        // The resumed run retraces the original bit-identically.
        sim.run(5_000);
        copy.run(5_000);
        assert_eq!(copy.states(), sim.states());
        assert_eq!(
            copy.save_state().to_bytes(),
            sim.save_state().to_bytes(),
            "snapshot bytes are a pure function of the trajectory"
        );
    }

    #[test]
    fn snapshot_restore_rejects_population_mismatch_and_wrong_engine() {
        let sim = Simulator::new(MaxBroadcast, 10, 0).unwrap();
        let snap = sim.save_state();
        let mut other = Simulator::new(MaxBroadcast, 11, 0).unwrap();
        assert!(matches!(
            other.restore_state(&snap),
            Err(SimError::SnapshotMismatch { .. })
        ));
        let alien = crate::snapshot::EngineSnapshot::new(crate::snapshot::ENGINE_BATCHED, vec![]);
        let mut sim = Simulator::new(MaxBroadcast, 10, 0).unwrap();
        assert!(matches!(
            sim.restore_state(&alien),
            Err(SimError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn into_states_returns_final_configuration() {
        let mut sim = Simulator::new(MaxBroadcast, 8, 9).unwrap();
        sim.states_mut()[3] = 5;
        sim.run(1_000);
        let states = sim.into_states();
        assert_eq!(states.len(), 8);
        assert!(states.iter().all(|&s| s == 5));
    }
}
