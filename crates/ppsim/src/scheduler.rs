//! Interaction schedulers.
//!
//! The probabilistic population model selects, in every time step, an ordered pair of
//! distinct agents `(initiator, responder)` independently and uniformly at random —
//! this is [`UniformScheduler`], the scheduler used by all experiments.
//!
//! Stability (correctness with probability 1) is a statement about *every possible*
//! interaction sequence, so the crate additionally offers [`AllPairsScheduler`], a
//! deterministic scheduler that cycles through all ordered pairs.  It is used by the
//! stabilisation probes in the test suites: once a protocol claims to have stabilised,
//! applying every ordered pair must not change any agent's output.

use rand::rngs::SmallRng;
use rand::Rng;

/// A source of ordered interaction pairs.
pub trait Scheduler {
    /// Produce the next ordered pair `(initiator, responder)` of *distinct* agent
    /// indices in `0..n`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `n < 2`.
    fn next_pair(&mut self, n: usize, rng: &mut SmallRng) -> (usize, usize);

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// The uniformly random scheduler of the probabilistic population model.
///
/// Each call draws an ordered pair of distinct indices independently and uniformly at
/// random from the `n·(n−1)` possible pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformScheduler;

impl UniformScheduler {
    /// Create a new uniform scheduler.
    #[must_use]
    pub fn new() -> Self {
        UniformScheduler
    }
}

impl Scheduler for UniformScheduler {
    #[inline]
    fn next_pair(&mut self, n: usize, rng: &mut SmallRng) -> (usize, usize) {
        debug_assert!(n >= 2);
        let i = rng.gen_range(0..n);
        // Draw j uniformly from the remaining n-1 indices.
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        (i, j)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Deterministic scheduler cycling through every ordered pair `(i, j)`, `i ≠ j`,
/// in lexicographic order.
///
/// One full cycle applies all `n·(n−1)` ordered pairs exactly once.  This is *not*
/// the probabilistic scheduler of the model; it exists to probe stabilisation:
/// a configuration is stable if and only if no sequence of interactions can change
/// any output, and cycling through all pairs (repeatedly) is a practical, exhaustive
/// one-step test of that property.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllPairsScheduler {
    next: usize,
}

impl AllPairsScheduler {
    /// Create a new all-pairs scheduler starting at pair `(0, 1)`.
    #[must_use]
    pub fn new() -> Self {
        AllPairsScheduler { next: 0 }
    }

    /// The number of ordered pairs in one full cycle for a population of size `n`.
    #[must_use]
    pub fn cycle_len(n: usize) -> u64 {
        (n as u64) * (n as u64 - 1)
    }
}

impl Scheduler for AllPairsScheduler {
    fn next_pair(&mut self, n: usize, _rng: &mut SmallRng) -> (usize, usize) {
        debug_assert!(n >= 2);
        let per_initiator = n - 1;
        let total = n * per_initiator;
        let k = self.next % total;
        self.next = (self.next + 1) % total;
        let i = k / per_initiator;
        let mut j = k % per_initiator;
        if j >= i {
            j += 1;
        }
        (i, j)
    }

    fn name(&self) -> &'static str {
        "all-pairs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use std::collections::HashSet;

    #[test]
    fn uniform_pairs_are_distinct_and_in_range() {
        let mut s = UniformScheduler::new();
        let mut rng = seeded_rng(3);
        for _ in 0..10_000 {
            let (i, j) = s.next_pair(17, &mut rng);
            assert!(i < 17 && j < 17);
            assert_ne!(i, j);
        }
    }

    #[test]
    fn uniform_pairs_cover_all_ordered_pairs() {
        let n = 6;
        let mut s = UniformScheduler::new();
        let mut rng = seeded_rng(11);
        let mut seen = HashSet::new();
        for _ in 0..20_000 {
            seen.insert(s.next_pair(n, &mut rng));
        }
        assert_eq!(
            seen.len(),
            n * (n - 1),
            "every ordered pair should eventually appear"
        );
    }

    #[test]
    fn uniform_pairs_are_roughly_uniform() {
        // Chi-squared style sanity check: no ordered pair should be wildly over- or
        // under-represented.
        let n = 5;
        let draws = 200_000usize;
        let mut counts = vec![0u32; n * n];
        let mut s = UniformScheduler::new();
        let mut rng = seeded_rng(7);
        for _ in 0..draws {
            let (i, j) = s.next_pair(n, &mut rng);
            counts[i * n + j] += 1;
        }
        let expected = draws as f64 / (n * (n - 1)) as f64;
        for i in 0..n {
            for j in 0..n {
                let c = f64::from(counts[i * n + j]);
                if i == j {
                    assert_eq!(c, 0.0);
                } else {
                    assert!(
                        (c - expected).abs() < 0.1 * expected,
                        "pair ({i},{j}) count {c} deviates more than 10% from {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_pairs_cycle_visits_each_ordered_pair_once() {
        let n = 7;
        let mut s = AllPairsScheduler::new();
        let mut rng = seeded_rng(0);
        let mut seen = HashSet::new();
        for _ in 0..AllPairsScheduler::cycle_len(n) {
            let (i, j) = s.next_pair(n, &mut rng);
            assert_ne!(i, j);
            assert!(seen.insert((i, j)), "pair repeated within a cycle");
        }
        assert_eq!(seen.len(), n * (n - 1));
        // The next cycle repeats the same pairs.
        let (i, j) = s.next_pair(n, &mut rng);
        assert_eq!((i, j), (0, 1));
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(UniformScheduler::new().name(), "uniform");
        assert_eq!(AllPairsScheduler::new().name(), "all-pairs");
    }
}
