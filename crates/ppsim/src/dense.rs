//! The [`DenseProtocol`] trait: protocols over an enumerated state space.
//!
//! The sequential [`Simulator`](crate::Simulator) works with arbitrary
//! `Protocol::State` types held in a per-agent `Vec`.  The batched
//! count-based engine ([`BatchedSimulator`](crate::BatchedSimulator)) instead
//! represents a configuration as a multiset — `counts[s]` agents in state `s`
//! — which requires the state space to be enumerable: states are dense
//! indices `0..q` and the transition function is a deterministic map
//! `δ : q × q → q × q`.
//!
//! Determinism is not a restriction for the protocols of the reproduced paper:
//! the probabilistic population model puts all randomness in the *scheduler*,
//! and the paper's protocols draw any random bits they need from the schedule
//! itself (synthetic coins).  Protocols whose transitions consult an RNG
//! cannot be batched with this trait.
//!
//! [`DenseAdapter`] lifts a `DenseProtocol` back into a regular [`Protocol`]
//! so the *same* transition system can be driven by both engines — this is how
//! the distributional-equivalence tests pin the two engines against each
//! other.

use std::fmt::Debug;

use rand::rngs::SmallRng;

use crate::protocol::Protocol;

/// A population protocol over an enumerated state space `0..q` with a
/// deterministic transition function.
///
/// # Examples
///
/// A two-state one-way epidemic, run on the batched count-based engine:
///
/// ```rust
/// use ppsim::{BatchedSimulator, DenseProtocol};
///
/// struct Rumor;
///
/// impl DenseProtocol for Rumor {
///     type Output = bool;
///     fn num_states(&self) -> usize { 2 }
///     fn initial_state(&self) -> usize { 0 }
///     fn transition(&self, u: usize, v: usize) -> (usize, usize) {
///         (u.max(v), v) // the initiator learns the rumour from the responder
///     }
///     fn output(&self, s: usize) -> bool { s == 1 }
/// }
///
/// # fn main() -> Result<(), ppsim::SimError> {
/// let mut sim = BatchedSimulator::new(Rumor, 100_000, 7)?;
/// sim.transfer(0, 1, 1)?; // plant the rumour
/// let outcome = sim.run_until(|s| s.count_of(1) == s.population(), 100_000, u64::MAX >> 1);
/// assert!(outcome.converged());
/// # Ok(())
/// # }
/// ```
pub trait DenseProtocol {
    /// The output domain `O` of the output function `ω` (`Send` so that
    /// precomputed output tables can ride along to shard worker threads).
    type Output: Clone + Debug + PartialEq + Send;

    /// The number of states `q`.  State indices are `0..q`.
    fn num_states(&self) -> usize;

    /// The common initial state index `q₀ < q`.
    fn initial_state(&self) -> usize;

    /// The deterministic transition function `δ(initiator, responder)`,
    /// returning the pair of post-interaction state indices.
    ///
    /// Must be a pure function of its arguments: the batched engine applies it
    /// once per *state-pair class* and multiplies, so any hidden dependence on
    /// interaction order or an RNG would change the simulated process.
    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize);

    /// The output function `ω` on state indices.
    fn output(&self, state: usize) -> Self::Output;

    /// A short human-readable protocol name used in reports and error messages.
    fn name(&self) -> &'static str {
        "dense-protocol"
    }

    /// The structural invariants this protocol declares about its own
    /// transition system — conserved quantities (additive in the counts)
    /// and a role-symmetry expectation.
    ///
    /// Declared invariants are probed along trajectories by the scenario
    /// matrix ([`conformance`](crate::conformance)) and checked
    /// *exhaustively* ahead of any run by the `ppcheck` verifier: every
    /// conservation law over every reachable `δ` pair.  The default
    /// declares nothing.
    fn invariants(&self) -> crate::conformance::ProtocolInvariants {
        crate::conformance::ProtocolInvariants::default()
    }

    /// Membership of the protocol's **legitimate set** — the configurations
    /// it claims to converge into and, for silent protocols, never leave.
    ///
    /// `None` (the default) declares no legitimate set; `Some(b)` states
    /// whether the dense configuration `counts` is legitimate.  The
    /// `ppcheck` verifier checks *closure*: no single interaction maps a
    /// legitimate configuration to an illegitimate one (silent stability),
    /// over every legitimate configuration of a small population.
    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        let _ = counts;
        None
    }

    /// Whether state indices are assigned **dynamically** — interned on first
    /// appearance (see [`StateInterner`](crate::StateInterner)) rather than
    /// fixed by a static encoding.
    ///
    /// For dynamic protocols [`num_states`](Self::num_states) is a capacity,
    /// not a census: most indices have no state behind them yet, and calling
    /// [`transition`](Self::transition) or [`output`](Self::output) on an
    /// unassigned index is an error.  The engines react in two ways:
    ///
    /// * they never precompute per-state tables (transition table, output
    ///   table) eagerly — everything is evaluated lazily on occupied states;
    /// * the sharded engine pins its within-shard phase to a single worker
    ///   thread, so the order in which new states are interned — and with it
    ///   the index assignment and the whole trajectory — stays a pure
    ///   function of the seed instead of the thread schedule.
    fn dynamic(&self) -> bool {
        false
    }

    /// For [`dynamic`](Self::dynamic) (interned) protocols: how many distinct
    /// states have been assigned indices so far — the realised state census,
    /// as opposed to the `num_states()` capacity.
    ///
    /// Static encodings return `None` (every index is live by construction).
    /// The hybrid engine records this census in its switch log and the bench
    /// tooling emits it next to the switch points, so occupancy blow-ups are
    /// attributable to the protocol stage that minted the states.
    fn discovered_states(&self) -> Option<usize> {
        None
    }

    /// Build a **decoded per-agent stint** over this configuration, if the
    /// protocol carries a typed agent-state codec
    /// ([`AgentCodec`](crate::stint::AgentCodec)).
    ///
    /// The hybrid engine calls this at every dense → per-agent migration;
    /// `counts` is the configuration to expand and `seed` drives the stint's
    /// schedule RNG.  The default `None` makes the engine fall back to
    /// stepping interned `u32` indices through [`Self::transition`]
    /// (the [`IndexCodec`](crate::stint::IndexCodec) path).  Codec-bearing
    /// protocols override it in three lines:
    ///
    /// ```rust,ignore
    /// fn agent_stint(&self, counts: &[u64], seed: u64) -> Option<BoxedAgentStint<Self::Output>> {
    ///     Some(DecodedStint::boxed(self.clone(), counts, seed))
    /// }
    /// ```
    fn agent_stint(
        &self,
        counts: &[u64],
        seed: u64,
    ) -> Option<crate::stint::BoxedAgentStint<Self::Output>> {
        let _ = (counts, seed);
        None
    }

    /// Serialize the protocol's own mutable state for a checkpoint
    /// ([`ppsim::snapshot`](crate::snapshot)).
    ///
    /// Static encodings have none — the default returns an empty payload.
    /// Dynamic (interned) protocols override this to persist their
    /// [`StateInterner`](crate::StateInterner) contents: the index ↔ state
    /// assignment is part of the trajectory, so a resumed run must see the
    /// checkpoint's exact assignment (and *only* it — states interned after
    /// the checkpoint must be forgotten on restore).
    fn save_protocol_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state previously produced by
    /// [`save_protocol_state`](Self::save_protocol_state).
    ///
    /// The default accepts only the empty payload the default save produces.
    ///
    /// # Errors
    ///
    /// [`SimError`](crate::SimError) variants describing a corrupt or
    /// mismatched payload.
    fn restore_protocol_state(&self, bytes: &[u8]) -> Result<(), crate::SimError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(crate::SimError::SnapshotMismatch {
                reason: format!(
                    "protocol `{}` carries no mutable state but the snapshot \
                     holds {} bytes of it",
                    self.name(),
                    bytes.len()
                ),
            })
        }
    }

    /// Rebuild a **decoded per-agent stint** from bytes written by
    /// [`AgentStint::save_stint`](crate::stint::AgentStint::save_stint) —
    /// the restore-side counterpart of [`agent_stint`](Self::agent_stint).
    ///
    /// Protocols that override `agent_stint` must override this too (with
    /// `DecodedStint::restore_boxed(self.clone(), bytes)`), or their hybrid
    /// snapshots taken mid-stint cannot be restored.  The default `None`
    /// signals "this protocol has no codec"; the hybrid engine then reports
    /// a [`SnapshotMismatch`](crate::SimError::SnapshotMismatch).
    fn restore_agent_stint(
        &self,
        bytes: &[u8],
    ) -> Option<Result<crate::stint::BoxedAgentStint<Self::Output>, crate::SimError>> {
        let _ = bytes;
        None
    }
}

/// Blanket implementation so `&P` can be used wherever a dense protocol is
/// expected.
impl<P: DenseProtocol + ?Sized> DenseProtocol for &P {
    type Output = P::Output;

    fn num_states(&self) -> usize {
        (**self).num_states()
    }
    fn initial_state(&self) -> usize {
        (**self).initial_state()
    }
    fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
        (**self).transition(initiator, responder)
    }
    fn output(&self, state: usize) -> Self::Output {
        (**self).output(state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn invariants(&self) -> crate::conformance::ProtocolInvariants {
        (**self).invariants()
    }
    fn legitimate(&self, counts: &[u64]) -> Option<bool> {
        (**self).legitimate(counts)
    }
    fn dynamic(&self) -> bool {
        (**self).dynamic()
    }
    fn discovered_states(&self) -> Option<usize> {
        (**self).discovered_states()
    }
    fn agent_stint(
        &self,
        counts: &[u64],
        seed: u64,
    ) -> Option<crate::stint::BoxedAgentStint<Self::Output>> {
        (**self).agent_stint(counts, seed)
    }
    fn save_protocol_state(&self) -> Vec<u8> {
        (**self).save_protocol_state()
    }
    fn restore_protocol_state(&self, bytes: &[u8]) -> Result<(), crate::SimError> {
        (**self).restore_protocol_state(bytes)
    }
    fn restore_agent_stint(
        &self,
        bytes: &[u8],
    ) -> Option<Result<crate::stint::BoxedAgentStint<Self::Output>, crate::SimError>> {
        (**self).restore_agent_stint(bytes)
    }
}

/// Adapter running a [`DenseProtocol`] on the sequential per-agent engine.
///
/// The agent state is the dense index itself (`u32`), so a
/// `Simulator<DenseAdapter<P>>` executes exactly the same transition system as
/// a `BatchedSimulator<P>` — the two engines then differ only in how they
/// sample the schedule, which is what the equivalence tests exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseAdapter<P>(pub P);

impl<P: DenseProtocol> Protocol for DenseAdapter<P> {
    type State = u32;
    type Output = P::Output;

    fn initial_state(&self) -> u32 {
        // Dense index spaces are bounded well below u32::MAX. ppcheck: allow(no-unwrap)
        u32::try_from(self.0.initial_state()).expect("dense state spaces fit in u32")
    }

    fn interact(&self, initiator: &mut u32, responder: &mut u32, _rng: &mut SmallRng) {
        let (a, b) = self.0.transition(*initiator as usize, *responder as usize);
        *initiator = a as u32;
        *responder = b as u32;
    }

    fn output(&self, state: &u32) -> Self::Output {
        self.0.output(*state as usize)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::simulator::Simulator;

    /// Two-state one-way epidemic on dense indices.
    struct Rumor;

    impl DenseProtocol for Rumor {
        type Output = bool;
        fn num_states(&self) -> usize {
            2
        }
        fn initial_state(&self) -> usize {
            0
        }
        fn transition(&self, initiator: usize, responder: usize) -> (usize, usize) {
            (initiator.max(responder), responder)
        }
        fn output(&self, state: usize) -> bool {
            state == 1
        }
        fn name(&self) -> &'static str {
            "rumor"
        }
    }

    #[test]
    fn adapter_runs_dense_transitions_on_the_sequential_engine() {
        let mut sim = Simulator::new(DenseAdapter(Rumor), 100, 3).unwrap();
        sim.states_mut()[0] = 1;
        let outcome = sim.run_until(|s| s.states().iter().all(|&x| x == 1), 100, 10_000_000);
        assert!(outcome.converged());
        assert!(sim.outputs().iter().all(|&o| o));
    }

    #[test]
    fn reference_delegation_preserves_dense_behaviour() {
        let p = Rumor;
        let r = &p;
        assert_eq!(r.num_states(), 2);
        assert_eq!(r.initial_state(), 0);
        assert_eq!(r.transition(0, 1), (1, 1));
        assert!(r.output(1));
        assert_eq!(r.name(), "rumor");
    }

    #[test]
    fn adapter_interact_applies_delta_in_place() {
        let adapter = DenseAdapter(Rumor);
        let mut rng = seeded_rng(0);
        let mut u = 0u32;
        let mut v = 1u32;
        adapter.interact(&mut u, &mut v, &mut rng);
        assert_eq!((u, v), (1, 1));
    }
}
